"""Unit tests for the MiniC lexer and parser."""

import pytest

from repro.minic import ast_nodes as ast
from repro.minic.lexer import tokenize
from repro.minic.parser import parse
from repro.minic.types import MiniCError


class TestLexer:
    def test_numbers(self):
        tokens = tokenize('12 0x1f 0')
        assert [t.value for t in tokens[:-1]] == [12, 31, 0]

    def test_identifiers_and_keywords(self):
        tokens = tokenize('int foo while whilefoo')
        kinds = [(t.kind, t.value) for t in tokens[:-1]]
        assert kinds == [('kw', 'int'), ('id', 'foo'), ('kw', 'while'),
                         ('id', 'whilefoo')]

    def test_char_literals(self):
        tokens = tokenize(r"'a' '\n' '\\' '\0'")
        assert [t.value for t in tokens[:-1]] == [97, 10, 92, 0]

    def test_string_literal_with_escapes(self):
        tokens = tokenize(r'"a\tb"')
        assert tokens[0].kind == 'str'
        assert tokens[0].value == 'a\tb'

    def test_two_char_operators_win(self):
        tokens = tokenize('a<=b == c->d')
        ops = [t.value for t in tokens if t.kind == 'op']
        assert ops == ['<=', '==', '->']

    def test_line_comments_skipped(self):
        tokens = tokenize('a // comment\n b')
        assert [t.value for t in tokens[:-1]] == ['a', 'b']

    def test_block_comments_track_lines(self):
        tokens = tokenize('/* one\ntwo */ x')
        assert tokens[0].line == 2

    def test_unterminated_comment_rejected(self):
        with pytest.raises(MiniCError):
            tokenize('/* never closed')

    def test_unterminated_string_rejected(self):
        with pytest.raises(MiniCError):
            tokenize('"oops')

    def test_unexpected_character_rejected(self):
        with pytest.raises(MiniCError):
            tokenize('a @ b')

    def test_line_numbers(self):
        tokens = tokenize('a\nb\n\nc')
        assert [t.line for t in tokens[:-1]] == [1, 2, 4]


class TestParser:
    def test_function_with_params(self):
        unit = parse('int add(int a, int b) { return a + b; }')
        func = unit.functions[0]
        assert func.name == 'add'
        assert [name for _spec, name in func.params] == ['a', 'b']
        assert isinstance(func.body.stmts[0], ast.Return)

    def test_void_param_list(self):
        unit = parse('int main(void) { return 0; }')
        assert unit.functions[0].params == []

    def test_global_scalar_and_array(self):
        unit = parse('int x = 5; int a[10]; int main() { return 0; }')
        scalar, array = unit.globals
        assert scalar.init == 5
        assert array.array_size == 10

    def test_global_array_initialiser(self):
        unit = parse('int a[3] = {1, -2, 3}; int main() { return 0; }')
        assert unit.globals[0].init == [1, -2, 3]

    def test_global_string_initialiser(self):
        unit = parse('char s[6] = "hi"; int main() { return 0; }')
        assert unit.globals[0].init == 'hi'

    def test_struct_declaration(self):
        unit = parse('struct point { int x; int y; };'
                     'int main() { return 0; }')
        struct = unit.structs[0]
        assert struct.name == 'point'
        assert [name for _spec, name in struct.fields] == ['x', 'y']

    def test_struct_field_array(self):
        unit = parse('struct buf { int data[8]; int len; };'
                     'int main() { return 0; }')
        (spec, name), _ = unit.structs[0].fields
        assert name == 'data'
        assert spec == ('int', 0, 8)

    def test_pointer_types(self):
        unit = parse('int **pp; int main() { return 0; }')
        assert unit.globals[0].type_spec == ('int', 2)

    def test_precedence_mul_over_add(self):
        unit = parse('int main() { return 1 + 2 * 3; }')
        expr = unit.functions[0].body.stmts[0].expr
        assert expr.op == '+'
        assert expr.right.op == '*'

    def test_assignment_right_associative(self):
        unit = parse('int main() { int a; int b; a = b = 1; return a; }')
        assign = unit.functions[0].body.stmts[2].expr
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.value, ast.Assign)

    def test_logical_operators_lowest(self):
        unit = parse('int main() { return 1 < 2 && 3 == 3; }')
        expr = unit.functions[0].body.stmts[0].expr
        assert expr.op == '&&'

    def test_unary_and_postfix(self):
        unit = parse('int main() { int a[4]; return -a[1]; }')
        expr = unit.functions[0].body.stmts[1].expr
        assert isinstance(expr, ast.Unary)
        assert isinstance(expr.operand, ast.Index)

    def test_member_and_arrow(self):
        unit = parse('struct p { int x; };'
                     'int main() { struct p v; struct p *q; '
                     'q = &v; v.x = 1; return q->x; }')
        stmts = unit.functions[0].body.stmts
        member = stmts[3].expr.target
        assert isinstance(member, ast.Member) and not member.arrow
        arrow = stmts[4].expr
        assert isinstance(arrow, ast.Member) and arrow.arrow

    def test_for_with_decl_initializer(self):
        unit = parse('int main() { for (int i = 0; i < 3; i = i + 1) { } '
                     'return 0; }')
        loop = unit.functions[0].body.stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.Decl)

    def test_for_with_empty_clauses(self):
        unit = parse('int main() { for (;;) { break; } return 0; }')
        loop = unit.functions[0].body.stmts[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_assert_statement(self):
        unit = parse('int main() { assert(1 == 1, "OK"); return 0; }')
        stmt = unit.functions[0].body.stmts[0]
        assert isinstance(stmt, ast.Assert)
        assert stmt.label == 'OK'

    def test_sizeof(self):
        unit = parse('struct p { int x; int y; };'
                     'int main() { return sizeof(struct p); }')
        expr = unit.functions[0].body.stmts[0].expr
        assert isinstance(expr, ast.SizeOf)

    def test_call_on_non_name_rejected(self):
        with pytest.raises(MiniCError):
            parse('int main() { int a[2]; a[0](); return 0; }')

    def test_missing_semicolon_rejected(self):
        with pytest.raises(MiniCError):
            parse('int main() { return 0 }')
