"""Unit tests for the BTB exercise counters and the NT-path selector."""

from repro.btb.btb import COUNTER_MAX, BranchTargetBuffer
from repro.core.config import PathExpanderConfig
from repro.core.selector import NTPathSelector


class TestBTB:
    def test_miss_reads_zero(self):
        btb = BranchTargetBuffer()
        assert btb.edge_count(1234, True) == 0
        assert btb.edge_count(1234, False) == 0

    def test_edges_counted_independently(self):
        btb = BranchTargetBuffer()
        btb.record_edge(10, True)
        btb.record_edge(10, True)
        btb.record_edge(10, False)
        assert btb.edge_count(10, True) == 2
        assert btb.edge_count(10, False) == 1

    def test_counters_saturate_at_four_bits(self):
        btb = BranchTargetBuffer()
        for _ in range(100):
            btb.record_edge(7, True)
        assert btb.edge_count(7, True) == COUNTER_MAX == 15

    def test_reset_clears_all(self):
        btb = BranchTargetBuffer()
        btb.record_edge(3, True)
        btb.record_edge(9, False)
        btb.reset_counters()
        assert btb.edge_count(3, True) == 0
        assert btb.edge_count(9, False) == 0
        # entries survive the reset, only counts clear
        assert btb.occupancy() == 2

    def test_lru_eviction_loses_counts(self):
        # 2 entries, 1 way -> 2 sets; addresses 0 and 2 collide in set 0
        btb = BranchTargetBuffer(entries=2, ways=1)
        btb.record_edge(0, True)
        btb.record_edge(2, True)      # evicts address 0
        assert btb.evictions == 1
        assert btb.edge_count(0, True) == 0
        assert btb.edge_count(2, True) == 1

    def test_set_mapping(self):
        btb = BranchTargetBuffer(entries=8, ways=2)
        # different sets never interfere
        for addr in range(4):
            btb.record_edge(addr, False)
        assert all(btb.edge_count(addr, False) == 1 for addr in range(4))


class TestSelector:
    def _selector(self, **overrides):
        config = PathExpanderConfig(**overrides)
        btb = BranchTargetBuffer()
        return NTPathSelector(btb, config), btb

    def test_spawns_until_threshold(self):
        selector, _btb = self._selector(nt_counter_threshold=3)
        decisions = [selector.should_spawn(42, True) for _ in range(6)]
        assert decisions == [True, True, True, False, False, False]

    def test_entry_counts_toward_threshold(self):
        selector, btb = self._selector(nt_counter_threshold=5)
        btb.record_edge(42, True)     # taken-path exercise
        btb.record_edge(42, True)
        spawns = sum(selector.should_spawn(42, True) for _ in range(10))
        assert spawns == 3            # 2 exercises + 3 entries = 5

    def test_periodic_reset(self):
        selector, btb = self._selector(nt_counter_threshold=1,
                                       counter_reset_interval=1000)
        assert selector.should_spawn(7, False)
        assert not selector.should_spawn(7, False)
        selector.observe_retired(1500)
        assert selector.resets == 1
        assert selector.should_spawn(7, False)

    def test_reset_schedule_advances(self):
        selector, _btb = self._selector(counter_reset_interval=100)
        selector.observe_retired(150)
        selector.observe_retired(200)      # before next boundary (250)
        assert selector.resets == 1
        selector.observe_retired(260)
        assert selector.resets == 2

    def test_random_rate_zero_never_overrides(self):
        selector, _btb = self._selector(nt_counter_threshold=1)
        assert selector.should_spawn(9, True)
        assert not any(selector.should_spawn(9, True)
                       for _ in range(200))

    def test_random_rate_one_always_spawns(self):
        selector, _btb = self._selector(nt_counter_threshold=1,
                                        selection_random_rate=1.0)
        assert all(selector.should_spawn(9, True) for _ in range(50))
        assert selector.random_selected == 49

    def test_random_rate_is_probabilistic(self):
        selector, _btb = self._selector(nt_counter_threshold=1,
                                        selection_random_rate=0.25)
        selector.should_spawn(9, True)      # saturate
        spawns = sum(selector.should_spawn(9, True)
                     for _ in range(2000))
        assert 350 < spawns < 650            # ~25% of 2000

    def test_random_sequence_deterministic(self):
        first, _ = self._selector(nt_counter_threshold=1,
                                  selection_random_rate=0.5,
                                  selection_random_seed=77)
        second, _ = self._selector(nt_counter_threshold=1,
                                   selection_random_rate=0.5,
                                   selection_random_seed=77)
        seq_a = [first.should_spawn(3, True) for _ in range(100)]
        seq_b = [second.should_spawn(3, True) for _ in range(100)]
        assert seq_a == seq_b
