"""Unit tests for the three dynamic bug detection tools."""

from repro.core.config import Mode
from repro.detectors.base import BugReport, Detector, ReportKind
from tests.conftest import run_minic


def _memory_run(src, detector, **kwargs):
    return run_minic(src, detector=detector, mode=Mode.BASELINE,
                     **kwargs)


class TestCCuredDetection:
    def test_heap_overrun_store(self):
        result = _memory_run('''
            int main() {
              int *p = malloc(4);
              p[4] = 1;             /* first red-zone word */
              free(p);
              return 0;
            }''', 'ccured')
        assert [r.kind for r in result.reports] == [ReportKind.OVERRUN]

    def test_heap_underrun_load(self):
        result = _memory_run('''
            int main() {
              int *p = malloc(4);
              int v = p[-1];
              free(p);
              return v;
            }''', 'ccured')
        assert [r.kind for r in result.reports] == [ReportKind.OVERRUN]

    def test_dangling_access(self):
        result = _memory_run('''
            int main() {
              int *p = malloc(4);
              free(p);
              p[0] = 7;
              return 0;
            }''', 'ccured')
        assert [r.kind for r in result.reports] == [ReportKind.DANGLING]

    def test_wild_heap_access(self):
        result = _memory_run('''
            int main() {
              int *p = malloc(4);
              p[400] = 1;
              free(p);
              return 0;
            }''', 'ccured')
        assert [r.kind for r in result.reports] == [ReportKind.WILD]

    def test_double_free(self):
        result = _memory_run('''
            int main() {
              int *p = malloc(4);
              free(p);
              free(p);
              return 0;
            }''', 'ccured')
        assert [r.kind for r in result.reports] == \
            [ReportKind.INVALID_FREE]

    def test_global_overrun_into_gap(self):
        result = _memory_run('''
            int a[4];
            int b[4];
            int main() {
              a[4] = 9;             /* gap between a and b */
              return b[0];
            }''', 'ccured')
        assert [r.kind for r in result.reports] == [ReportKind.OVERRUN]

    def test_legal_program_is_clean(self):
        result = _memory_run('''
            int table[8];
            int main() {
              int *p = malloc(8);
              for (int i = 0; i < 8; i = i + 1) {
                p[i] = i;
                table[i] = p[i];
              }
              free(p);
              print_int(table[7]);
              return 0;
            }''', 'ccured')
        assert result.reports == []

    def test_reports_deduplicated_per_site(self):
        result = _memory_run('''
            int main() {
              int *p = malloc(4);
              for (int i = 0; i < 10; i = i + 1) {
                p[4] = i;           /* same bad site, 10 times */
              }
              free(p);
              return 0;
            }''', 'ccured')
        assert len(result.reports) == 1

    def test_checks_cost_cycles(self):
        plain = _memory_run('int main() { int a[8]; a[3] = 1; '
                            'return a[3]; }', 'none')
        checked = _memory_run('int main() { int a[8]; a[3] = 1; '
                              'return a[3]; }', 'ccured')
        assert checked.cycles > plain.cycles


class TestIWatcherDetection:
    def test_same_bugs_as_ccured(self):
        src = '''
            int main() {
              int *p = malloc(4);
              p[4] = 1;
              free(p);
              p[0] = 2;
              return 0;
            }'''
        ccured = _memory_run(src, 'ccured')
        iwatcher = _memory_run(src, 'iwatcher')
        assert [r.kind for r in ccured.reports] == \
            [r.kind for r in iwatcher.reports]

    def test_hardware_cost_lower_than_software(self):
        src = '''
            int total;
            int main() {
              int a[32];
              for (int i = 0; i < 32; i = i + 1) { a[i] = i; }
              for (int r = 0; r < 50; r = r + 1) {
                for (int i = 0; i < 32; i = i + 1) {
                  total = total + a[i];
                }
              }
              print_int(total);
              return 0;
            }'''
        iwatcher = _memory_run(src, 'iwatcher')
        ccured = _memory_run(src, 'ccured')
        assert iwatcher.cycles < ccured.cycles

    def test_trigger_counter(self):
        from repro.detectors.iwatcher import IWatcherDetector
        from repro.core.runner import run_program
        from repro.minic.codegen import compile_minic
        from repro.core.config import PathExpanderConfig
        detector = IWatcherDetector()
        program = compile_minic('''
            int main() {
              int *p = malloc(2);
              p[2] = 1;
              free(p);
              return 0;
            }''')
        run_program(program, detector=detector,
                    config=PathExpanderConfig(mode=Mode.BASELINE))
        assert detector.triggers == 1


class TestAssertions:
    def test_failure_recorded_with_id(self):
        result = run_minic('''
            int main() {
              int x = 5;
              assert(x == 5, "GOOD");
              assert(x == 6, "BAD");
              return 0;
            }''', detector='assertions')
        assert [r.assert_id for r in result.reports] == ['BAD']

    def test_execution_continues_after_failure(self):
        result = run_minic('''
            int main() {
              assert(0 == 1, "FAIL");
              print_int(99);
              return 0;
            }''', detector='assertions')
        assert result.output.strip() == '99'
        assert len(result.reports) == 1

    def test_failed_ids_property(self):
        from repro.detectors.assertions import AssertionDetector
        from repro.core.runner import run_program
        from repro.minic.codegen import compile_minic
        from repro.core.config import PathExpanderConfig
        detector = AssertionDetector()
        program = compile_minic('''
            int main() {
              assert(1 == 2, "A");
              assert(2 == 3, "B");
              return 0;
            }''')
        run_program(program, detector=detector,
                    config=PathExpanderConfig(mode=Mode.BASELINE))
        assert detector.failed_ids == {'A', 'B'}


class TestDetectorBase:
    def test_reset_clears_reports(self):
        detector = Detector()
        detector.reports.append('sentinel')
        detector._seen_sites.add(('x', 1))
        detector.reset()
        assert detector.reports == []
        assert detector._seen_sites == set()

    def test_default_hooks_cost_nothing(self):
        detector = Detector()
        assert detector.on_load(0, 0, None) == 0
        assert detector.on_store(0, 0, None) == 0
        assert detector.on_assert_fail('x', 0, None) == 0
        assert detector.on_alloc(0, 0, None) == 0
        assert detector.on_free(0, True, None) == 0

    def test_report_repr_mentions_nt_path(self):
        report = BugReport('buffer_overrun', location='f+3',
                           in_nt_path=True)
        assert 'NT-path' in repr(report)

    def test_site_key_prefers_assert_id(self):
        with_id = BugReport('assertion_failure', code_addr=5,
                            assert_id='X')
        without = BugReport('assertion_failure', code_addr=5)
        assert with_id.site_key == ('assertion_failure', 'X')
        assert without.site_key == ('assertion_failure', 5)


class TestMonitorAreaSemantics:
    def test_nt_reports_survive_many_rollbacks(self):
        src = '''
            int main() {
              for (int i = 0; i < 30; i = i + 1) {
                int *p = malloc(2);
                if (i > 900) { p[2] = 1; }
                free(p);
              }
              return 0;
            }'''
        result = run_minic(src, detector='ccured', mode=Mode.STANDARD)
        assert result.nt_spawned >= 1
        assert len(result.reports) == 1
        assert result.reports[0].in_nt_path
