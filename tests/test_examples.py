"""Smoke tests: every shipped example must run clean end to end."""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / 'examples'
EXAMPLE_FILES = sorted(path.name for path in EXAMPLES_DIR.glob('*.py'))


def test_at_least_four_examples_ship():
    assert len(EXAMPLE_FILES) >= 4
    assert 'quickstart.py' in EXAMPLE_FILES


@pytest.mark.parametrize('filename', EXAMPLE_FILES)
def test_example_runs_clean(filename, capsys):
    runpy.run_path(str(EXAMPLES_DIR / filename), run_name='__main__')
    out = capsys.readouterr().out
    assert out.strip(), '%s produced no output' % filename


def test_quickstart_reports_the_bug(capsys):
    runpy.run_path(str(EXAMPLES_DIR / 'quickstart.py'),
                   run_name='__main__')
    out = capsys.readouterr().out
    assert 'FOUND: buffer_overrun' in out
    assert 'NT-path' in out


def test_walkthrough_explains_the_miss(capsys):
    runpy.run_path(str(EXAMPLES_DIR / 'debugging_walkthrough.py'),
                   run_name='__main__')
    out = capsys.readouterr().out
    assert 'exercised_edge' in out
    assert "detected ['bc_flush', 'bc_grow']" in out
