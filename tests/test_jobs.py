"""Tests for the parallel job subsystem (``repro.jobs``)."""

import json
import time

import pytest

from repro.core.runner import run_job
from repro.jobs import (JobExecutionError, JobPool, JobSpec,
                        ResultStore, RunMetrics)
from repro.jobs import pool as pool_module

TINY_SRC = '''
int main() {
  int n = read_int();
  if (n > 2) { print_int(n); } else { print_int(0); }
  return 0;
}
'''


def tiny_spec(n=5):
    return JobSpec.for_source(TINY_SRC, name='tiny', detector='none',
                              int_input=[n])


def app_spec(**overrides):
    overrides.setdefault('detector', 'ccured')
    return JobSpec.for_app('schedule', **overrides)


# Module-level runners so the process pool can pickle them.

_FLAKY_STATE = {'failures_left': 0}


def _flaky_runner(spec_dict):
    if _FLAKY_STATE['failures_left'] > 0:
        _FLAKY_STATE['failures_left'] -= 1
        raise RuntimeError('transient failure')
    return pool_module.execute_spec(spec_dict)


def _sleepy_runner(spec_dict):
    time.sleep(1.0)
    return pool_module.execute_spec(spec_dict)


# ---------------------------------------------------------------------


class TestJobSpec:
    def test_same_spec_same_key(self):
        assert tiny_spec().key == tiny_spec().key
        assert app_spec().key == app_spec().key
        assert tiny_spec() == tiny_spec()

    def test_changed_input_changes_key(self):
        assert tiny_spec(5).key != tiny_spec(6).key
        base = app_spec()
        assert base.key != app_spec(text_input='x').key
        assert base.key != app_spec(mode='cmp').key
        assert base.key != app_spec(detector='iwatcher').key
        assert base.key != app_spec(version=1).key
        assert base.key != app_spec(
            config_overrides={'max_nt_path_length': 10}).key

    def test_override_order_is_canonicalised(self):
        first = app_spec(config_overrides={'spawn_overhead': 25,
                                           'num_cores': 2})
        second = app_spec(config_overrides={'num_cores': 2,
                                            'spawn_overhead': 25})
        assert first.key == second.key

    def test_app_and_source_specs_differ(self):
        assert tiny_spec().key != app_spec().key

    def test_dict_round_trip_preserves_key(self):
        spec = app_spec(config_overrides={'num_cores': 2},
                        int_input=[1, 2, 3])
        clone = JobSpec.from_dict(json.loads(json.dumps(
            spec.to_dict())))
        assert clone.key == spec.key
        assert clone == spec

    def test_frozen(self):
        spec = tiny_spec()
        with pytest.raises(AttributeError):
            spec.detector = 'ccured'
        with pytest.raises(AttributeError):
            del spec.detector

    def test_validation(self):
        with pytest.raises(ValueError, match='exactly one'):
            JobSpec(app='schedule', source=TINY_SRC)
        with pytest.raises(ValueError, match='exactly one'):
            JobSpec()
        with pytest.raises(ValueError, match='bad mode'):
            JobSpec(app='schedule', mode='warp')
        with pytest.raises(TypeError, match='JSON scalar'):
            JobSpec(app='schedule',
                    config_overrides={'max_nt_path_length': [1]})


# ---------------------------------------------------------------------


class TestResultStore:
    def test_miss_returns_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get('00' + 'a' * 62) is None
        assert store.corrupt_evictions == 0

    def test_put_get_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        result = run_job(spec).to_dict()
        store.put(spec.key, spec.to_dict(), result, 0.25)
        record = store.get(spec.key)
        assert record['result'] == result
        assert record['spec'] == spec.to_dict()
        assert record['elapsed_seconds'] == 0.25
        assert spec.key in store
        assert list(store.keys()) == [spec.key]
        assert len(store) == 1

    def test_corrupt_record_is_evicted(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        result = run_job(spec).to_dict()
        path = store.put(spec.key, spec.to_dict(), result, 0.0)
        with open(path, 'w') as handle:
            handle.write('{"key": truncated garbage')
        assert store.get(spec.key) is None
        assert store.corrupt_evictions == 1
        assert spec.key not in store
        # the evicted slot is reusable
        store.put(spec.key, spec.to_dict(), result, 0.0)
        assert store.get(spec.key)['result'] == result

    def test_mismatched_key_is_evicted(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        result = run_job(spec).to_dict()
        path = store.put(spec.key, spec.to_dict(), result, 0.0)
        with open(path, 'w') as handle:
            json.dump({'key': 'f' * 64, 'result': result}, handle)
        assert store.get(spec.key) is None
        assert store.corrupt_evictions == 1

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        store.put(spec.key, spec.to_dict(), run_job(spec).to_dict(),
                  0.0)
        store.clear()
        assert len(store) == 0


# ---------------------------------------------------------------------


class TestJobPool:
    def test_serial_matches_in_process(self):
        spec = app_spec()
        direct = run_job(spec)
        pooled = JobPool(jobs=1).run_one(spec)
        assert pooled.to_dict() == direct.to_dict()

    def test_process_pool_matches_in_process(self):
        specs = [app_spec(), app_spec(detector='iwatcher')]
        direct = [run_job(spec) for spec in specs]
        pool = JobPool(jobs=2)
        pooled = pool.run(specs)
        assert [r.to_dict() for r in pooled] == \
            [r.to_dict() for r in direct]
        assert pool.metrics.jobs_run == 2

    def test_cache_hit_skips_execution(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        cold = JobPool(jobs=1, store=store)
        first = cold.run_one(spec)
        assert cold.metrics.jobs_run == 1
        assert cold.metrics.cache_misses == 1
        warm = JobPool(jobs=1, store=store)
        second = warm.run_one(spec)
        assert warm.metrics.jobs_run == 0
        assert warm.metrics.cache_hits == 1
        assert second.to_dict() == first.to_dict()

    def test_corrupt_cache_record_reruns_job(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = tiny_spec()
        first = JobPool(jobs=1, store=store)
        expected = first.run_one(spec).to_dict()
        with open(store._path(spec.key), 'w') as handle:
            handle.write('not json at all')
        recover = JobPool(jobs=1, store=store)
        result = recover.run_one(spec)
        assert result.to_dict() == expected
        assert recover.metrics.cache_hits == 0
        assert recover.metrics.jobs_run == 1
        assert recover.metrics.corrupt_evictions == 1
        # the rerun repaired the cache
        assert store.get(spec.key)['result'] == expected

    def test_retry_accounting_and_recovery(self):
        _FLAKY_STATE['failures_left'] = 2
        pool = JobPool(jobs=1, runner=_flaky_runner, retries=3,
                       backoff=0.001)
        result = pool.run_one(tiny_spec())
        assert result.output.strip() == '5'
        assert pool.metrics.failures == 2
        assert pool.metrics.retries == 2
        assert pool.metrics.jobs_run == 1

    def test_retries_exhausted_raises(self):
        _FLAKY_STATE['failures_left'] = 10
        pool = JobPool(jobs=1, runner=_flaky_runner, retries=1,
                       backoff=0.001)
        with pytest.raises(JobExecutionError, match='transient'):
            pool.run_one(tiny_spec())
        assert pool.metrics.failures == 2
        assert pool.metrics.retries == 1
        assert pool.metrics.jobs_run == 0
        _FLAKY_STATE['failures_left'] = 0

    def test_timeout_accounting(self):
        pool = JobPool(jobs=2, runner=_sleepy_runner, timeout=0.05,
                       retries=1, backoff=0.001)
        with pytest.raises(JobExecutionError, match='timed out'):
            pool.run([tiny_spec()])
        assert pool.metrics.timeouts == 2
        assert pool.metrics.retries == 1
        assert pool.metrics.jobs_run == 0

    def test_spawn_failure_falls_back_to_serial(self, monkeypatch):
        def broken_executor(*_args, **_kwargs):
            raise OSError('no processes for you')
        monkeypatch.setattr(pool_module, 'ProcessPoolExecutor',
                            broken_executor)
        spec = app_spec()
        pool = JobPool(jobs=4)
        result = pool.run_one(spec)
        assert result.to_dict() == run_job(spec).to_dict()
        assert pool.metrics.serial_fallbacks == 1
        assert pool.metrics.jobs_run == 1

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match='jobs'):
            JobPool(jobs=0)


# ---------------------------------------------------------------------


class TestRunMetrics:
    def test_summary_contains_all_counters(self):
        metrics = RunMetrics()
        metrics.incr('jobs_run', 3)
        metrics.add_wall_time(2.0)
        metrics.add_sim_time(6.0)
        text = metrics.format_summary()
        assert 'jobs_run' in text and 'cache_hits' in text
        assert 'parallel_speedup' in text
        assert metrics.to_dict()['jobs_run'] == 3

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            RunMetrics().incr('warp_factor')

    def test_event_log_is_jsonl(self, tmp_path):
        log = tmp_path / 'events.jsonl'
        metrics = RunMetrics(log_path=str(log))
        metrics.event('job_done', key='abc', seconds=0.5)
        metrics.event('cache_hit', key='def')
        lines = log.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]['event'] == 'job_done'
        assert parsed[1]['key'] == 'def'
        assert metrics.events[0]['seconds'] == 0.5
