"""Property-based tests (hypothesis) on core invariants.

* the MiniC compiler's expression evaluation agrees with a Python
  oracle on randomly generated expressions;
* the memory journal rollback is an exact inverse of any write
  sequence;
* the allocator never hands out overlapping objects and survives
  snapshot/restore round trips;
* the cache's volatile accounting is consistent under random access
  streams;
* BTB counters saturate and never exceed 4 bits;
* PathExpander never changes a program's observable output, for
  arbitrary inputs.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.btb.btb import COUNTER_MAX, BranchTargetBuffer
from repro.core.config import Mode, PathExpanderConfig
from repro.core.runner import run_program
from repro.memory.allocator import HeapAllocator
from repro.memory.cache import Cache
from repro.memory.main_memory import MainMemory
from repro.minic.codegen import compile_minic
from tests.conftest import run_minic

_SETTINGS = settings(max_examples=40, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])


# ---------------------------------------------------------------------
# expression oracle

_INT = st.integers(min_value=-50, max_value=50)
_NONZERO = st.integers(min_value=1, max_value=20)


def _expr_strategy(depth=0):
    leaves = st.one_of(
        _INT.map(lambda v: (str(v) if v >= 0 else '(0 - %d)' % -v, v)),
    )
    if depth >= 3:
        return leaves

    def combine(children):
        (ltext, lval), op, (rtext, rval) = children
        if op == '+':
            return ('(%s + %s)' % (ltext, rtext), lval + rval)
        if op == '-':
            return ('(%s - %s)' % (ltext, rtext), lval - rval)
        if op == '*':
            return ('(%s * %s)' % (ltext, rtext), lval * rval)
        if op == '<':
            return ('(%s < %s)' % (ltext, rtext), int(lval < rval))
        if op == '==':
            return ('(%s == %s)' % (ltext, rtext), int(lval == rval))
        return ('(%s & %s)' % (ltext, rtext), lval & rval)

    inner = _expr_strategy(depth + 1)
    composite = st.tuples(inner,
                          st.sampled_from(['+', '-', '*', '<', '==',
                                           '&']),
                          inner).map(combine)
    return st.one_of(leaves, composite)


class TestExpressionOracle:
    @_SETTINGS
    @given(_expr_strategy())
    def test_codegen_matches_python(self, pair):
        text, expected = pair
        result = run_minic('int main() { print_int(%s); return 0; }'
                           % text)
        assert not result.crashed
        assert int(result.output.strip()) == expected

    @_SETTINGS
    @given(_INT, _NONZERO)
    def test_c_division_semantics(self, numerator, divisor):
        result = run_minic(
            'int main() { print_int((%s) / %d); '
            'print_int((%s) %% %d); return 0; }'
            % ('0 - %d' % -numerator if numerator < 0 else numerator,
               divisor,
               '0 - %d' % -numerator if numerator < 0 else numerator,
               divisor))
        quotient, remainder = map(int, result.output.split())
        # C truncates toward zero
        expected_q = abs(numerator) // divisor
        if numerator < 0:
            expected_q = -expected_q
        assert quotient == expected_q
        assert remainder == numerator - expected_q * divisor


# ---------------------------------------------------------------------
# journal rollback

class TestJournalProperties:
    @_SETTINGS
    @given(st.lists(st.tuples(st.integers(min_value=400, max_value=500),
                              st.integers(-1000, 1000)),
                    min_size=1, max_size=60))
    def test_rollback_is_exact_inverse(self, writes):
        # note: addresses must sit outside the monitor memory area,
        # which by design survives rollback
        mem = MainMemory(size=4096, globals_size=64)
        assert all(not mem.in_monitor_area(a) for a, _v in writes)
        for addr in range(400, 501):
            mem.write(addr, addr * 7)
        before = list(mem.cells)
        mem.begin_journal()
        for addr, value in writes:
            mem.write(addr, value)
        mem.rollback()
        assert mem.cells == before

    @_SETTINGS
    @given(st.lists(st.tuples(st.integers(min_value=400, max_value=500),
                              st.integers(-1000, 1000)),
                    min_size=1, max_size=60))
    def test_commit_keeps_final_values(self, writes):
        mem = MainMemory(size=4096, globals_size=64)
        mem.begin_journal()
        final = {}
        for addr, value in writes:
            mem.write(addr, value)
            final[addr] = value
        mem.commit_journal()
        for addr, value in final.items():
            assert mem.read(addr) == value


# ---------------------------------------------------------------------
# allocator

class TestAllocatorProperties:
    @_SETTINGS
    @given(st.lists(st.integers(min_value=1, max_value=32),
                    min_size=1, max_size=40))
    def test_live_objects_never_overlap(self, sizes):
        alloc = HeapAllocator(1000, 100_000)
        intervals = []
        for size in sizes:
            base = alloc.malloc(size)
            intervals.append((base, base + size))
        intervals.sort()
        for (a_start, a_end), (b_start, _b_end) in zip(intervals,
                                                       intervals[1:]):
            assert a_end <= b_start
        # every word of every object classifies as 'object'
        for start, end in intervals:
            assert alloc.classify(start) == 'object'
            assert alloc.classify(end - 1) == 'object'

    @_SETTINGS
    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=16),
                              st.booleans()),
                    min_size=1, max_size=30))
    def test_snapshot_restore_round_trip(self, script):
        alloc = HeapAllocator(1000, 100_000)
        live = []
        for size, do_free in script:
            base = alloc.malloc(size)
            live.append(base)
            if do_free and live:
                alloc.free(live.pop(0))
        snap = alloc.snapshot()
        classes = {base: alloc.classify(base) for base in live}
        # arbitrary churn after the snapshot
        for _ in range(10):
            alloc.malloc(8)
        for base in list(live):
            alloc.free(base)
        alloc.restore(snap)
        for base, kind in classes.items():
            assert alloc.classify(base) == kind


# ---------------------------------------------------------------------
# cache

class TestCacheProperties:
    @_SETTINGS
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=511),
                              st.booleans(),
                              st.integers(min_value=0, max_value=3)),
                    min_size=1, max_size=100))
    def test_volatile_accounting(self, accesses):
        cache = Cache(size_bytes=256, ways=2, line_bytes=16)
        for addr, is_write, version in accesses:
            cache.access(addr, is_write, version)
        total_volatile = cache.volatile_lines()
        per_version = sum(cache.volatile_lines(v) for v in range(1, 4))
        assert total_volatile == per_version
        for version in range(1, 4):
            cache.gang_invalidate(version)
        assert cache.volatile_lines() == 0

    @_SETTINGS
    @given(st.lists(st.integers(min_value=0, max_value=255),
                    min_size=1, max_size=80))
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = Cache(size_bytes=256, ways=2, line_bytes=16)
        for addr in addresses:
            cache.access(addr, False)
        assert cache.hits + cache.misses == len(addresses)


# ---------------------------------------------------------------------
# BTB

class TestBTBProperties:
    @_SETTINGS
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=63),
                              st.booleans()),
                    min_size=1, max_size=200))
    def test_counters_bounded(self, edges):
        btb = BranchTargetBuffer(entries=32, ways=2)
        for addr, taken in edges:
            btb.record_edge(addr, taken)
        for addr, taken in edges:
            count = btb.edge_count(addr, taken)
            assert 0 <= count <= COUNTER_MAX


# ---------------------------------------------------------------------
# end-to-end transparency

_TRANSPARENCY_SRC = '''
int log[16];
int main() {
  int a = read_int();
  int b = read_int();
  int total = 0;
  for (int i = 0; i < 24; i = i + 1) {
    if ((i + a) % 3 == 0) { total = total + i; }
    else if ((i + b) % 5 == 0) { total = total - 1; }
    if (total > 40) { total = total / 2; }
    log[i & 15] = total;
  }
  print_int(total);
  print_int(log[7]);
  return 0;
}
'''


class TestTransparencyProperty:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=1000),
           st.integers(min_value=0, max_value=1000))
    def test_pathexpander_never_changes_output(self, a, b):
        program = compile_minic(_TRANSPARENCY_SRC, name='transparency')
        baseline = run_program(
            program, config=PathExpanderConfig(mode=Mode.BASELINE),
            int_input=[a, b])
        for mode in (Mode.STANDARD, Mode.CMP):
            expanded = run_program(
                program, config=PathExpanderConfig(mode=mode),
                int_input=[a, b])
            assert expanded.output == baseline.output
            assert expanded.exit_code == baseline.exit_code
            assert not expanded.crashed
