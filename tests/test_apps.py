"""Integration tests over the benchmark applications and all 38 bugs.

Every seeded bug is checked against its paper-mandated outcome: missed
at baseline, and with PathExpander either detected or missed for the
documented mechanism (value coverage / exercised edge / inconsistency /
special input).
"""

import pytest

from repro.apps.bugs import BugSpec, MissReason, classify_reports
from repro.apps.registry import (ALL_APPS, BUGGY_APP_NAMES,
                                 WORKLOAD_APP_NAMES, get_app,
                                 total_tested_bugs)
from repro.core.config import Mode
from repro.core.runner import make_detector, run_program

# ---------------------------------------------------------------------
# enumeration of (app, version, tool) cases covering all 38 bugs

_MEMORY_CASES = [
    ('go_app', 0, 'ccured'), ('go_app', 0, 'iwatcher'),
    ('bc_calc', 0, 'ccured'), ('bc_calc', 0, 'iwatcher'),
    ('man_fmt', 0, 'ccured'), ('man_fmt', 0, 'iwatcher'),
    ('print_tokens2', 10, 'ccured'), ('print_tokens2', 10, 'iwatcher'),
]

_ASSERTION_CASES = [
    (name, version, 'assertions')
    for name in BUGGY_APP_NAMES
    for version in get_app(name).assertion_versions
]

ALL_CASES = _MEMORY_CASES + _ASSERTION_CASES


def _run_case(app, program, tool, mode):
    text, ints = app.default_input()
    return run_program(program, detector=make_detector(tool),
                       config=app.make_config(mode=mode),
                       text_input=text, int_input=ints)


@pytest.fixture(scope='module')
def case_results():
    """Run every case once (baseline + PathExpander) and cache."""
    results = {}
    for app_name, version, tool in ALL_CASES:
        app = get_app(app_name)
        program = app.compile(version)
        baseline = _run_case(app, program, tool, Mode.BASELINE)
        expanded = _run_case(app, program, tool, Mode.STANDARD)
        results[(app_name, version, tool)] = (app.bugs(version),
                                              baseline, expanded)
    return results


class TestBugInventory:
    def test_total_is_38(self):
        assert total_tested_bugs() == 38

    def test_case_enumeration_covers_38(self):
        total = 0
        for app_name, version, _tool in ALL_CASES:
            total += len(get_app(app_name).bugs(version))
        assert total == 38

    def test_every_bug_well_formed(self):
        for name in BUGGY_APP_NAMES:
            app = get_app(name)
            for bugs in app.versions.values():
                for bug in bugs:
                    assert bug.expected_detected or \
                        bug.miss_reason in MissReason.ALL
                    assert bug.assert_id or bug.site_func

    def test_missed_bug_requires_reason(self):
        with pytest.raises(ValueError):
            BugSpec('x', 'app', False)

    def test_miss_reasons_cover_all_four_mechanisms(self):
        reasons = set()
        for name in BUGGY_APP_NAMES:
            for bugs in get_app(name).versions.values():
                for bug in bugs:
                    if not bug.expected_detected:
                        reasons.add(bug.miss_reason)
        assert reasons == set(MissReason.ALL)


@pytest.mark.parametrize('app_name,version,tool', ALL_CASES)
class TestPerBugOutcome:
    def test_baseline_misses_everything(self, case_results, app_name,
                                        version, tool):
        bugs, baseline, _expanded = case_results[(app_name, version,
                                                  tool)]
        found, _ = classify_reports(baseline.reports, bugs)
        assert not found, \
            '%s v%s: common input must not expose the bug at baseline' \
            % (app_name, version)

    def test_pathexpander_outcome_matches_paper(self, case_results,
                                                app_name, version,
                                                tool):
        bugs, _baseline, expanded = case_results[(app_name, version,
                                                  tool)]
        found, _ = classify_reports(expanded.reports, bugs)
        for bug in bugs:
            if bug.expected_detected:
                assert bug.bug_id in found, \
                    '%s should be detected via an NT-path' % bug.bug_id
            else:
                assert bug.bug_id not in found, \
                    '%s should stay hidden (%s)' % (bug.bug_id,
                                                    bug.miss_reason)

    def test_sandbox_preserves_program_output(self, case_results,
                                              app_name, version, tool):
        _bugs, baseline, expanded = case_results[(app_name, version,
                                                  tool)]
        assert expanded.output == baseline.output
        assert expanded.exit_code == baseline.exit_code
        assert not expanded.crashed

    def test_nt_paths_were_explored(self, case_results, app_name,
                                    version, tool):
        _bugs, _baseline, expanded = case_results[(app_name, version,
                                                   tool)]
        assert expanded.nt_spawned > 0
        assert expanded.total_covered >= expanded.baseline_covered


class TestDetectionsHappenOnNTPaths:
    def test_all_true_detections_are_nt(self, case_results):
        for (app_name, version, tool), (bugs, _base, expanded) \
                in case_results.items():
            for report in expanded.reports:
                if any(bug.matches(report) for bug in bugs):
                    assert report.in_nt_path, \
                        '%s v%s: %r' % (app_name, version, report)


class TestWorkloadApps:
    @pytest.mark.parametrize('app_name', WORKLOAD_APP_NAMES)
    def test_runs_clean_at_baseline(self, app_name):
        app = get_app(app_name)
        # version 0 of pure workloads; buggy apps still must not crash
        program = app.compile(0)
        text, ints = app.default_input()
        result = run_program(program, detector=None,
                             config=app.make_config(mode=Mode.BASELINE),
                             text_input=text, int_input=ints)
        assert not result.crashed
        assert not result.truncated
        assert result.instret_taken > 1000

    @pytest.mark.parametrize('app_name', WORKLOAD_APP_NAMES)
    def test_random_inputs_run_clean(self, app_name):
        app = get_app(app_name)
        program = app.compile(0)
        for seed in (1, 2, 3):
            text, ints = app.random_input(seed)
            result = run_program(
                program, detector=None,
                config=app.make_config(mode=Mode.BASELINE),
                text_input=text, int_input=ints)
            assert not result.crashed, '%s seed %d' % (app_name, seed)

    @pytest.mark.parametrize('app_name', WORKLOAD_APP_NAMES)
    def test_random_inputs_deterministic(self, app_name):
        app = get_app(app_name)
        assert app.random_input(5) == app.random_input(5)
        assert app.random_input(5) != app.random_input(6)

    def test_registry_lookup(self):
        assert get_app('go_app').name == 'go_app'
        with pytest.raises(KeyError):
            get_app('quake')

    def test_registry_metadata(self):
        for name, app in ALL_APPS.items():
            assert app.name == name
            source = app.source(0)
            assert 'int main(' in source
            config = app.make_config()
            if app.is_siemens:
                assert config.max_nt_path_length == 100
            else:
                assert config.max_nt_path_length == 1000


class TestMissMechanisms:
    """Each miss category must be *mechanistically* what it claims:
    relaxing the blocking mechanism makes the bug detectable."""

    def test_exercised_edge_bugs_found_with_huge_threshold(self):
        for app_name, version, tool, bug_id in (
                ('bc_calc', 0, 'ccured', 'bc_flush'),
                ('schedule2', 5, 'assertions', 'sch2_v5')):
            app = get_app(app_name)
            program = app.compile(version)
            bugs = [b for b in app.bugs(version) if b.bug_id == bug_id]
            text, ints = app.default_input()
            result = run_program(
                program, detector=make_detector(tool),
                config=app.make_config(nt_counter_threshold=1000),
                text_input=text, int_input=ints)
            found, _ = classify_reports(result.reports, bugs)
            assert bug_id in found

    def test_special_input_bug_found_with_special_input(self):
        # print_tokens v6 needs a long unterminated string token
        app = get_app('print_tokens')
        program = app.compile(6)
        special = '"' + 'x' * 60 + '\n'
        result = run_program(program, detector=make_detector('assertions'),
                             config=app.make_config(mode=Mode.BASELINE),
                             text_input=special)
        found, _ = classify_reports(result.reports, app.bugs(6))
        assert 'pt_v6' in found

    def test_value_coverage_bug_found_with_magic_value(self):
        # print_tokens v4 fires only for the literal 777
        app = get_app('print_tokens')
        program = app.compile(4)
        result = run_program(program, detector=make_detector('assertions'),
                             config=app.make_config(mode=Mode.BASELINE),
                             text_input='aaa 777 bbb\n')
        found, _ = classify_reports(result.reports, app.bugs(4))
        assert 'pt_v4' in found

    def test_inconsistency_bug_found_with_real_string(self):
        # print_tokens2 v3 is a real bug: it fires when a long string
        # token flows through the *consistent* scanning path.  The
        # NT-path misses it only because the kind==3 fix leaves
        # str_len stale (the paper's inconsistency mechanism).
        app = get_app('print_tokens2')
        program = app.compile(3)
        result = run_program(program, detector=make_detector('assertions'),
                             config=app.make_config(mode=Mode.BASELINE),
                             text_input='"averylongstringhere" foo\n')
        found, _ = classify_reports(result.reports, app.bugs(3))
        assert 'pt2_v3' in found

    def test_man_bug_needs_variable_fixing(self):
        app = get_app('man_fmt')
        program = app.compile(0)
        text, ints = app.default_input()
        unfixed = run_program(program, detector=make_detector('ccured'),
                              config=app.make_config(
                                  variable_fixing=False),
                              text_input=text, int_input=ints)
        found, _ = classify_reports(unfixed.reports, app.bugs(0))
        assert 'man_section' not in found


class TestGzipRoundTrip:
    """gzip's self-check mode: inflate(compress(x)) == x, across every
    compression level and preprocessor combination -- including under
    PathExpander, whose NT-paths must not corrupt the stream."""

    @pytest.mark.parametrize('level', [1, 2, 3])
    @pytest.mark.parametrize('rle', [0, 1])
    def test_round_trip(self, level, rle):
        app = get_app('gzip_app')
        program = app.compile(0)
        text, _ints = app.default_input()
        result = run_program(program,
                             config=app.make_config(mode=Mode.BASELINE),
                             text_input=text, int_input=[level, rle, 1])
        assert result.int_output[0] == 1, 'verify_ok flag'

    def test_round_trip_under_pathexpander(self):
        app = get_app('gzip_app')
        program = app.compile(0)
        text, ints = app.default_input()
        result = run_program(program, config=app.make_config(),
                             text_input=text, int_input=ints)
        assert result.int_output[0] == 1

    def test_round_trip_random_inputs(self):
        app = get_app('gzip_app')
        program = app.compile(0)
        for seed in range(1, 6):
            text, ints = app.random_input(seed)
            result = run_program(
                program, config=app.make_config(mode=Mode.BASELINE),
                text_input=text, int_input=ints)
            assert result.int_output[0] == 1, 'seed %d' % seed
