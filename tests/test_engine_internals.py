"""Deeper engine tests: cache-capacity squash, counter resets, state
restoration, truncation, monitor-area realism and CMP/standard parity
across the full application suite."""

import pytest

from repro.apps.registry import get_app
from repro.core.config import Mode, PathExpanderConfig
from repro.core.engine import PathExpanderEngine
from repro.core.result import NTPathTermination
from repro.core.runner import run_program
from repro.cpu.syscalls import IOContext
from repro.minic.codegen import compile_minic
from tests.conftest import run_minic


class TestCacheOverflowTermination:
    def test_nt_path_squashed_on_volatile_overflow(self):
        # the NT-path writes a huge stride so each store claims a new
        # cache set way; a tiny L1 forces volatile overflow
        src = '''
            int big[4096];
            int main() {
              int n = read_int();
              if (n > 900) {
                for (int i = 0; i < 4000; i = i + 1) { big[i] = i; }
              }
              print_int(big[0]);
              return 0;
            }'''
        result = run_minic(src, mode=Mode.STANDARD, int_input=[1],
                           l1_size_bytes=512, l1_ways=2,
                           max_nt_path_length=100_000)
        assert result.nt_terminations.get(
            NTPathTermination.OVERFLOW, 0) >= 1

    def test_large_l1_avoids_overflow(self):
        src = '''
            int big[64];
            int main() {
              int n = read_int();
              if (n > 900) {
                for (int i = 0; i < 64; i = i + 1) { big[i] = i; }
              }
              print_int(big[0]);
              return 0;
            }'''
        result = run_minic(src, mode=Mode.STANDARD, int_input=[1])
        assert result.nt_terminations.get(
            NTPathTermination.OVERFLOW, 0) == 0


class TestStateRestoration:
    def test_registers_and_rand_state_restored(self):
        # the NT-path consumes LCG randomness; the taken path's random
        # sequence must be unaffected
        src = '''
            int main() {
              int n = read_int();
              if (n > 900) {
                int burn = rand();
                print_int(burn);
              }
              print_int(rand() % 1000);
              return 0;
            }'''
        base = run_minic(src, mode=Mode.BASELINE, int_input=[1])
        # note: rand is a syscall (unsafe) -- with OS sandboxing the
        # NT-path actually executes it, which is the interesting case
        expanded = run_minic(src, mode=Mode.STANDARD, int_input=[1],
                             sandbox_unsafe_events=True)
        assert expanded.output == base.output

    def test_allocator_bump_restored_across_many_paths(self):
        src = '''
            int main() {
              int keep = 0;
              for (int i = 0; i < 25; i = i + 1) {
                if (i > 900) {
                  int *leak = malloc(100);
                  leak[0] = i;
                }
                int *p = malloc(3);
                keep = keep + p[0];
                free(p);
              }
              print_int(keep);
              return 0;
            }'''
        base = run_minic(src, mode=Mode.BASELINE)
        expanded = run_minic(src, mode=Mode.STANDARD)
        assert expanded.output == base.output
        assert expanded.nt_spawned >= 5


class TestTruncation:
    def test_max_instructions_flag(self):
        src = '''
            int main() {
              int i = 0;
              while (i >= 0) { i = i + 1; }
              return 0;
            }'''
        result = run_minic(src, mode=Mode.BASELINE,
                           max_instructions=5000)
        assert result.truncated
        assert result.instret_taken <= 5100


class TestCounterReset:
    def test_reset_counter_visible_in_selector(self):
        program = compile_minic('''
            int main() {
              for (int i = 0; i < 5000; i = i + 1) {
                if (i == 123456) { print_int(i); }
              }
              return 0;
            }''', name='reset_test')
        config = PathExpanderConfig(counter_reset_interval=20_000)
        engine = PathExpanderEngine(program, config=config,
                                    io=IOContext())
        engine.run()
        assert engine.selector.resets >= 1


class TestResultAccounting:
    def _result(self):
        src = '''
            int main() {
              int n = read_int();
              for (int i = 0; i < 30; i = i + 1) {
                if (i % 4 == n) { print_int(i); }
              }
              return 0;
            }'''
        return run_minic(src, mode=Mode.STANDARD, int_input=[2],
                         collect_nt_details=True)

    def test_instret_split(self):
        result = self._result()
        assert result.instret_taken > 0
        assert result.instret_nt == sum(r.length
                                        for r in result.nt_details)

    def test_termination_counts_match_details(self):
        result = self._result()
        assert sum(result.nt_terminations.values()) == result.nt_spawned
        assert len(result.nt_details) == result.nt_spawned

    def test_details_off_by_default(self):
        src = 'int main() { return 0; }'
        result = run_minic(src, mode=Mode.STANDARD)
        assert result.nt_details == []

    def test_repr_mentions_key_numbers(self):
        result = self._result()
        text = repr(result)
        assert 'NT-paths' in text and 'coverage' in text

    def test_overhead_vs_zero_baseline(self):
        result = self._result()

        class Zero:
            cycles = 0
        assert result.overhead_vs(Zero()) == 0.0


class TestModeParityAcrossApps:
    """Standard and CMP must be functionally identical everywhere."""

    @pytest.mark.parametrize('app_name', ['print_tokens', 'schedule',
                                          'bc_calc', 'man_fmt',
                                          'gzip_app'])
    def test_parity(self, app_name):
        app = get_app(app_name)
        program = app.compile(0)
        text, ints = app.default_input()
        runs = {}
        for mode in (Mode.STANDARD, Mode.CMP):
            runs[mode] = run_program(
                program, detector='ccured',
                config=app.make_config(mode=mode),
                text_input=text, int_input=ints)
        standard, cmp_run = runs[Mode.STANDARD], runs[Mode.CMP]
        assert cmp_run.output == standard.output
        assert cmp_run.total_covered <= standard.total_covered
        # CMP may skip spawns when all slots are busy, never add
        assert cmp_run.nt_spawned <= standard.nt_spawned
