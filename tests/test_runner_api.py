"""Tests for the public runner API and the memcheck classification."""

import pytest

from repro.core.config import Mode, PathExpanderConfig
from repro.core.runner import (DETECTOR_FACTORIES, make_detector,
                               run_program, run_source,
                               run_with_and_without)
from repro.detectors.base import ReportKind
from repro.detectors.memcheck import MemoryCheckLogic
from repro.memory.allocator import HeapAllocator
from repro.memory.main_memory import MainMemory
from repro.minic.codegen import compile_minic

SRC = '''
int main() {
  int n = read_int();
  int *p = malloc(2);
  if (n > 800) { p[3] = 1; }
  free(p);
  print_int(n);
  return 0;
}
'''


class TestRunnerAPI:
    def test_detector_by_name(self):
        for name in DETECTOR_FACTORIES:
            detector = make_detector(name)
            if name == 'none':
                assert detector is None
            else:
                assert detector.name == name

    def test_unknown_detector_rejected(self):
        with pytest.raises(ValueError, match='unknown detector'):
            make_detector('valgrind')

    def test_run_source_convenience(self):
        result = run_source(SRC, detector='ccured', int_input=[5],
                            name='api')
        assert result.program_name == 'api'
        assert result.output.strip() == '5'

    def test_run_with_and_without_fresh_detectors(self):
        program = compile_minic(SRC, name='api')
        base, expanded = run_with_and_without(program, 'ccured',
                                              int_input=[5])
        # reports must not leak between the two runs
        assert base.reports == []
        assert len(expanded.reports) == 1
        assert base.mode == Mode.BASELINE
        assert expanded.mode == Mode.STANDARD

    def test_software_mode_costs_applied_by_runner(self):
        program = compile_minic(SRC, name='api')
        hw = run_program(program, detector='ccured',
                         config=PathExpanderConfig(mode=Mode.STANDARD),
                         int_input=[5])
        sw = run_program(program, detector='ccured',
                         config=PathExpanderConfig(mode=Mode.SOFTWARE),
                         int_input=[5])
        assert sw.cycles > hw.cycles

    def test_config_replace_copies(self):
        config = PathExpanderConfig()
        other = config.replace(mode=Mode.CMP, nt_counter_threshold=9)
        assert config.mode == Mode.STANDARD
        assert other.mode == Mode.CMP
        assert other.nt_counter_threshold == 9
        assert other.spawn_overhead == config.spawn_overhead

    def test_siemens_factory(self):
        config = PathExpanderConfig.siemens()
        assert config.max_nt_path_length == 100
        config = PathExpanderConfig.baseline()
        assert config.mode == Mode.BASELINE
        assert not config.spawning_enabled


class TestMemoryCheckLogic:
    def _logic(self):
        program = compile_minic('''
            int first[4];
            int second[4];
            int main() { return 0; }''', name='logic')
        memory = MainMemory(size=1 << 16,
                            globals_size=program.globals_size)
        allocator = HeapAllocator(memory.heap_base, memory.stack_limit)
        logic = MemoryCheckLogic(program, memory, allocator)
        objs = {name: base for name, base, _size
                in program.global_objects}
        return logic, memory, allocator, objs

    def test_globals_legal(self):
        logic, _m, _a, objs = self._logic()
        assert logic.classify(objs['first']) is None
        assert logic.classify(objs['first'] + 3) is None

    def test_gap_between_globals_is_overrun(self):
        logic, _m, _a, objs = self._logic()
        assert logic.classify(objs['first'] + 4) == ReportKind.OVERRUN

    def test_stack_unchecked(self):
        logic, memory, _a, _objs = self._logic()
        assert logic.classify(memory.stack_limit + 5) is None
        assert logic.classify(memory.size - 1) is None

    def test_monitor_area_legal(self):
        logic, memory, _a, _objs = self._logic()
        assert logic.classify(memory.monitor_base) is None

    def test_heap_classification(self):
        logic, _m, allocator, _objs = self._logic()
        base = allocator.malloc(4)
        assert logic.classify(base) is None
        assert logic.classify(base + 4) == ReportKind.OVERRUN
        allocator.free(base)
        assert logic.classify(base) == ReportKind.DANGLING

    def test_untouched_heap_is_wild(self):
        logic, _m, allocator, _objs = self._logic()
        assert logic.classify(allocator.heap_base + 500) == \
            ReportKind.WILD


class TestModeConstants:
    def test_all_modes_enumerated(self):
        assert set(Mode.ALL) == {'baseline', 'standard', 'cmp',
                                 'software'}

    def test_spawning_enabled(self):
        assert not PathExpanderConfig(mode=Mode.BASELINE).spawning_enabled
        for mode in (Mode.STANDARD, Mode.CMP, Mode.SOFTWARE):
            assert PathExpanderConfig(mode=mode).spawning_enabled
