"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.core.config import Mode, PathExpanderConfig
from repro.core.runner import run_source
from repro.minic.codegen import compile_minic


def run_minic(source, detector=None, mode=Mode.BASELINE, text_input='',
              int_input=None, name='test', **config_overrides):
    """Compile + run MiniC under a given mode; returns the RunResult."""
    config = PathExpanderConfig(mode=mode, **config_overrides)
    return run_source(source, detector=detector, config=config,
                      text_input=text_input, int_input=int_input,
                      name=name)


def run_output(source, text_input='', int_input=None):
    """Run in baseline mode and return the program's text output."""
    result = run_minic(source, text_input=text_input, int_input=int_input)
    assert not result.crashed, 'program crashed: %s' % result.crash_kind
    return result.output


@pytest.fixture
def compile_src():
    return lambda src, **kw: compile_minic(src, **kw)
