"""Unit tests for the coverage tracker and the MiniC semantic tables."""

import pytest

from repro.coverage.tracker import CoverageTracker, CumulativeCoverage
from repro.minic.codegen import compile_minic
from repro.minic.sema import LocalSym, Scope, TypeTable
from repro.minic.types import (INT, ArrayType, MiniCError, PtrType,
                               StructType)


def _program():
    return compile_minic('''
        int main() {
          int x = read_int();
          if (x > 0) { print_int(1); }
          if (x > 10) { print_int(2); }
          return 0;
        }''', name='cov')


class TestCoverageTracker:
    def test_denominator_is_static_edges(self):
        program = _program()
        tracker = CoverageTracker(program)
        assert tracker.total_edges == program.num_edges == 4

    def test_taken_vs_nt_accounting(self):
        tracker = CoverageTracker(_program())
        edges = list(tracker.program.branch_edges)
        tracker.record(edges[0].branch_addr, edges[0].taken, False)
        tracker.record(edges[1].branch_addr, edges[1].taken, True)
        assert tracker.baseline_covered == 1
        assert tracker.total_covered == 2
        assert tracker.baseline_coverage == 0.25
        assert tracker.total_coverage == 0.5

    def test_duplicate_records_count_once(self):
        tracker = CoverageTracker(_program())
        for _ in range(10):
            tracker.record(5, True, False)
        assert tracker.baseline_covered == 1

    def test_same_edge_in_both_sets_counts_once_total(self):
        tracker = CoverageTracker(_program())
        tracker.record(5, True, False)
        tracker.record(5, True, True)
        assert tracker.total_covered == 1
        assert tracker.baseline_covered == 1

    def test_empty_program_coverage_zero(self):
        program = compile_minic('int main() { return 0; }', name='nobr')
        tracker = CoverageTracker(program)
        assert tracker.total_edges == 0
        assert tracker.baseline_coverage == 0.0
        assert tracker.total_coverage == 0.0

    def test_edge_key_sets_are_copies(self):
        tracker = CoverageTracker(_program())
        tracker.record(5, True, False)
        keys = tracker.taken_edge_keys
        keys.add(('bogus', True))
        assert tracker.baseline_covered == 1


class TestCumulativeCoverage:
    def test_union_over_runs(self):
        program = _program()
        cumulative = CumulativeCoverage(program)
        cumulative.add({(5, True)}, {(5, False)})
        cumulative.add({(9, True)}, set())
        assert cumulative.runs == 2
        assert cumulative.baseline_coverage == 2 / 4
        assert cumulative.total_coverage == 3 / 4

    def test_merge_into(self):
        program = _program()
        tracker = CoverageTracker(program)
        tracker.record(5, True, False)
        tracker.record(9, False, True)
        cumulative = CumulativeCoverage(program)
        tracker.merge_into(cumulative)
        assert cumulative.baseline_coverage == 1 / 4
        assert cumulative.total_coverage == 2 / 4


class TestTypeSystem:
    def test_sizes(self):
        assert INT.size == 1
        assert PtrType(INT).size == 1
        assert ArrayType(INT, 7).size == 7

    def test_struct_layout_offsets(self):
        struct = StructType('s')
        struct.add_field('a', INT)
        struct.add_field('arr', ArrayType(INT, 3))
        struct.add_field('b', PtrType(INT))
        assert struct.size == 5
        assert struct.field('a') == (0, INT)
        offset, ftype = struct.field('arr')
        assert offset == 1 and ftype.size == 3
        assert struct.field('b')[0] == 4

    def test_duplicate_field_rejected(self):
        struct = StructType('s')
        struct.add_field('a', INT)
        with pytest.raises(MiniCError):
            struct.add_field('a', INT)

    def test_unknown_field_rejected(self):
        struct = StructType('s')
        struct.add_field('a', INT)
        with pytest.raises(MiniCError):
            struct.field('ghost')

    def test_type_equality(self):
        assert PtrType(INT) == PtrType(INT)
        assert PtrType(PtrType(INT)) != PtrType(INT)
        assert StructType('a') == StructType('a')
        assert StructType('a') != StructType('b')

    def test_array_decay(self):
        arr = ArrayType(PtrType(INT), 4)
        assert arr.decay() == PtrType(PtrType(INT))


class TestTypeTable:
    def test_resolve_basic(self):
        table = TypeTable()
        assert table.resolve(('int', 0)) == INT
        assert table.resolve(('int', 2)) == PtrType(PtrType(INT))

    def test_void_pointer_is_int_pointer(self):
        table = TypeTable()
        assert table.resolve(('void', 1)) == PtrType(INT)

    def test_void_return(self):
        table = TypeTable()
        assert table.resolve(('void', 0)) is None

    def test_self_referential_struct(self):
        from repro.minic.parser import parse
        unit = parse('struct node { int v; struct node *next; };'
                     'int main() { return 0; }')
        table = TypeTable()
        struct = table.declare_struct(unit.structs[0])
        assert struct.size == 2
        _offset, next_type = struct.field('next')
        assert next_type.pointee is struct

    def test_unknown_struct_rejected(self):
        table = TypeTable()
        with pytest.raises(MiniCError):
            table.resolve(('ghost', 0))

    def test_field_array_spec(self):
        table = TypeTable()
        resolved = table.resolve(('int', 1, 4))
        assert isinstance(resolved, ArrayType)
        assert resolved.elem == PtrType(INT)


class TestScopes:
    def test_nested_lookup(self):
        outer = Scope()
        outer.define(LocalSym('x', INT, -1))
        inner = Scope(outer)
        inner.define(LocalSym('y', INT, -2))
        assert inner.lookup('x').offset == -1
        assert inner.lookup('y').offset == -2
        assert outer.lookup('y') is None

    def test_shadowing(self):
        outer = Scope()
        outer.define(LocalSym('x', INT, -1))
        inner = Scope(outer)
        inner.define(LocalSym('x', INT, -5))
        assert inner.lookup('x').offset == -5
        assert outer.lookup('x').offset == -1

    def test_duplicate_in_same_scope_rejected(self):
        scope = Scope()
        scope.define(LocalSym('x', INT, -1))
        with pytest.raises(MiniCError):
            scope.define(LocalSym('x', INT, -2))
