"""Code-generator edge cases: deep expressions, pointer gymnastics,
nested control flow, temp-register discipline, and fix-block layout."""

import pytest

from repro.isa.instructions import Reg
from repro.minic.codegen import compile_minic
from repro.minic.types import MiniCError
from tests.conftest import run_minic, run_output


class TestDeepExpressions:
    def test_deeply_parenthesised(self):
        expr = '1'
        for i in range(2, 12):
            expr = '(%s + %d)' % (expr, i)
        assert run_output('int main() { print_int(%s); return 0; }'
                          % expr).strip() == str(sum(range(1, 12)))

    def test_temps_exhausted_raises(self):
        # right-nested additions pin one temp per level
        expr = '1'
        for i in range(2, 30):
            expr = '%d + (%s)' % (i, expr)
        src = 'int main() { return %s; }' % expr
        with pytest.raises(MiniCError, match='too complex'):
            run_minic(src)

    def test_right_nesting_within_limit_works(self):
        expr = '1'
        for i in range(2, 16):
            expr = '%d + (%s)' % (i, expr)
        out = run_output('int main() { print_int(%s); return 0; }'
                         % expr)
        assert out.strip() == str(sum(range(1, 16)))

    def test_call_args_evaluated_left_to_right(self):
        src = '''
            int order[4];
            int pos = 0;
            int mark(int v) { order[pos] = v; pos = pos + 1; return v; }
            int three(int a, int b, int c) { return a * 100 + b * 10 + c; }
            int main() {
              print_int(three(mark(1), mark(2), mark(3)));
              print_int(order[0] * 100 + order[1] * 10 + order[2]);
              return 0;
            }'''
        assert run_output(src).split() == ['123', '123']

    def test_nested_calls_preserve_temps(self):
        src = '''
            int add(int a, int b) { return a + b; }
            int main() {
              print_int(add(add(1, 2), add(3, add(4, 5))) * 10 + 7);
              return 0;
            }'''
        assert run_output(src).strip() == '157'


class TestPointerGymnastics:
    def test_pointer_to_pointer(self):
        src = '''
            int main() {
              int x = 5;
              int *p = &x;
              int **pp = &p;
              **pp = 9;
              print_int(x);
              return 0;
            }'''
        assert run_output(src).strip() == '9'

    def test_pointer_walk_of_string(self):
        src = '''
            int main() {
              int *s = "walk";
              int n = 0;
              while (*s != 0) { n = n + 1; s = s + 1; }
              print_int(n);
              return 0;
            }'''
        assert run_output(src).strip() == '4'

    def test_struct_pointer_scaling(self):
        src = '''
            struct pair { int a; int b; };
            struct pair items[4];
            int main() {
              struct pair *p = items;
              p = p + 2;             /* advances 2 * sizeof(pair) */
              p->b = 77;
              print_int(items[2].b);
              return 0;
            }'''
        assert run_output(src).strip() == '77'

    def test_address_of_array_element(self):
        src = '''
            int a[6];
            int main() {
              int *p = &a[3];
              *p = 5;
              print_int(a[3]);
              return 0;
            }'''
        assert run_output(src).strip() == '5'

    def test_nested_struct_access(self):
        src = '''
            struct inner { int v; };
            struct outer { int tag; struct inner in; };
            int main() {
              struct outer o;
              o.in.v = 31;
              print_int(o.in.v);
              return 0;
            }'''
        assert run_output(src).strip() == '31'

    def test_linked_list_reversal(self):
        src = '''
            struct node { int v; struct node *next; };
            int main() {
              struct node *head = 0;
              for (int i = 1; i <= 5; i = i + 1) {
                struct node *n = malloc(sizeof(struct node));
                n->v = i;
                n->next = head;
                head = n;
              }
              /* reverse */
              struct node *prev = 0;
              while (head != 0) {
                struct node *next = head->next;
                head->next = prev;
                prev = head;
                head = next;
              }
              int digits = 0;
              while (prev != 0) {
                digits = digits * 10 + prev->v;
                prev = prev->next;
              }
              print_int(digits);
              return 0;
            }'''
        assert run_output(src).strip() == '12345'


class TestControlFlowEdges:
    def test_break_in_nested_loop_breaks_inner(self):
        src = '''
            int main() {
              int count = 0;
              for (int i = 0; i < 3; i = i + 1) {
                for (int j = 0; j < 10; j = j + 1) {
                  if (j == 2) { break; }
                  count = count + 1;
                }
              }
              print_int(count);
              return 0;
            }'''
        assert run_output(src).strip() == '6'

    def test_continue_in_while(self):
        src = '''
            int main() {
              int i = 0;
              int total = 0;
              while (i < 10) {
                i = i + 1;
                if (i % 2 == 0) { continue; }
                total = total + i;
              }
              print_int(total);
              return 0;
            }'''
        assert run_output(src).strip() == '25'

    def test_dangling_else_binds_inner(self):
        src = '''
            int pick(int a, int b) {
              if (a)
                if (b) { return 1; }
                else { return 2; }
              return 3;
            }
            int main() {
              print_int(pick(1, 1));
              print_int(pick(1, 0));
              print_int(pick(0, 0));
              return 0;
            }'''
        assert run_output(src).split() == ['1', '2', '3']

    def test_chained_logical_mix(self):
        src = '''
            int f(int a, int b, int c) {
              return (a && b) || (!a && c);
            }
            int main() {
              print_int(f(1, 1, 0));
              print_int(f(1, 0, 1));
              print_int(f(0, 1, 1));
              print_int(f(0, 0, 0));
              return 0;
            }'''
        assert run_output(src).split() == ['1', '0', '1', '0']

    def test_ternary_absent_use_if(self):
        # MiniC has no ?: -- document via a parse failure
        with pytest.raises(MiniCError):
            run_minic('int main() { return 1 ? 2 : 3; }')


class TestFixBlockLayout:
    def _branch_edges_with_fix(self, src):
        program = compile_minic(src, name='layout')
        fixed_edges = 0
        for edge in program.branch_edges:
            if edge.target < len(program.code) \
                    and program.code[edge.target].pred:
                fixed_edges += 1
        return program, fixed_edges

    def test_both_edges_get_fix_blocks(self):
        program, fixed = self._branch_edges_with_fix('''
            int main() {
              int x = read_int();
              if (x < 5) { print_int(1); } else { print_int(2); }
              return 0;
            }''')
        # the x<5 branch contributes two fixed edge heads
        assert fixed >= 2

    def test_unfixable_condition_has_no_fix_block(self):
        program, fixed = self._branch_edges_with_fix('''
            int f() { return 1; }
            int main() {
              if (f()) { print_int(1); }
              return 0;
            }''')
        assert fixed == 0

    def test_fix_uses_reserved_register_only(self):
        program = compile_minic('''
            int main() {
              int x = read_int();
              if (x == 3) { print_int(x); }
              while (x > 0) { x = x - 1; }
              return 0;
            }''', name='fixregs')
        for instr in program.code:
            if instr.pred:
                assert instr.a == Reg.FIX

    def test_fix_count_matches_fixable_branches(self):
        program = compile_minic('''
            int g;
            int main() {
              int x = read_int();
              if (x < 10) { g = 1; }        /* fixable */
              if (g == 2) { g = 3; }        /* fixable (global) */
              int a[2];
              if (a[0]) { g = 4; }          /* not fixable */
              return 0;
            }''', name='fixcount')
        predicated = sum(1 for instr in program.code if instr.pred)
        # two fixable branches, two edges each, 2 instrs per fix block
        assert predicated == 2 * 2 * 2


class TestGlobalsLayout:
    def test_guard_gaps_between_globals(self):
        program = compile_minic('''
            int a[4];
            int b[4];
            int main() { return 0; }''', name='gaps')
        objs = {name: (base, size)
                for name, base, size in program.global_objects}
        a_base, a_size = objs['a']
        b_base, _ = objs['b']
        assert b_base >= a_base + a_size + 2

    def test_blank_structs_emitted_for_all_types(self):
        program = compile_minic('''
            struct one { int x; };
            struct two { int y; int z; };
            int main() { return 0; }''', name='blanks')
        assert 'int' in program.blank_structs
        assert 'struct one' in program.blank_structs
        assert 'struct two' in program.blank_structs

    def test_blank_struct_padded(self):
        program = compile_minic('struct s { int x; };'
                                'int main() { return 0; }',
                                name='blankpad')
        info = program.blank_structs['struct s']
        assert info.size >= 32

    def test_string_literals_pooled(self):
        program = compile_minic('''
            int main() {
              int *a = "same";
              int *b = "same";
              print_int(a == b);
              return 0;
            }''', name='pool')
        from repro.core.runner import run_program
        from repro.core.config import Mode, PathExpanderConfig
        result = run_program(program,
                             config=PathExpanderConfig(mode=Mode.BASELINE))
        assert result.output.strip() == '1'
