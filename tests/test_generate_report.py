"""Tests for the EXPERIMENTS.md generator."""

import io

from repro.harness import experiments
from repro.harness.generate_report import (_PAPER_NOTES, default_steps,
                                           generate)


class TestGenerateReport:
    def test_every_step_has_a_paper_note(self):
        for exp_id, _runner in default_steps():
            assert exp_id in _PAPER_NOTES

    def test_generate_writes_markdown(self):
        stream = io.StringIO()
        steps = [('table2', experiments.run_table2),
                 ('table3', experiments.run_table3)]
        generate(stream, steps=steps)
        text = stream.getvalue()
        assert text.startswith('# EXPERIMENTS')
        assert '## table2' in text
        assert '## table3' in text
        assert '```' in text
        assert 'regenerated in' in text

    def test_step_ids_cover_all_paper_artifacts(self):
        ids = {exp_id for exp_id, _ in default_steps()}
        assert {'table2', 'table3', 'table4', 'table5', 'table6',
                'fig3', 'fig7', 'fig8', 'fig9', 'fig10',
                'abl1', 'ext1', 'ext2'} <= ids
