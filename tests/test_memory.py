"""Unit tests for memory, allocator, cache and checkpointing."""

import pytest

from repro.cpu.exceptions import FaultKind, SimFault
from repro.memory.allocator import RED_ZONE, HeapAllocator
from repro.memory.cache import COMMITTED, Cache
from repro.memory.main_memory import NULL_GUARD, MainMemory


class TestMainMemory:
    def test_read_write(self):
        mem = MainMemory(size=4096, globals_size=64)
        mem.write(100, 42)
        assert mem.read(100) == 42

    def test_null_guard_faults(self):
        mem = MainMemory(size=4096, globals_size=64)
        for addr in (0, 1, NULL_GUARD - 1):
            with pytest.raises(SimFault) as excinfo:
                mem.read(addr)
            assert excinfo.value.kind == FaultKind.NULL_ACCESS

    def test_out_of_bounds_faults(self):
        mem = MainMemory(size=4096, globals_size=64)
        with pytest.raises(SimFault) as excinfo:
            mem.write(4096, 1)
        assert excinfo.value.kind == FaultKind.MEM_OOB
        with pytest.raises(SimFault):
            mem.read(-100)

    def test_layout_regions_ordered(self):
        mem = MainMemory(size=1 << 16, globals_size=256)
        assert NULL_GUARD <= mem.monitor_base < mem.monitor_limit
        assert mem.monitor_limit == mem.heap_base
        assert mem.heap_base < mem.stack_limit < mem.stack_top == mem.size

    def test_journal_rollback_restores(self):
        mem = MainMemory(size=4096, globals_size=64)
        mem.write(500, 7)
        mem.begin_journal()
        mem.write(500, 99)
        mem.write(501, 1)
        assert mem.read(500) == 99
        undone = mem.rollback()
        assert undone == 2
        assert mem.read(500) == 7
        assert mem.read(501) == 0

    def test_journal_keeps_first_old_value(self):
        mem = MainMemory(size=4096, globals_size=64)
        mem.write(500, 7)
        mem.begin_journal()
        mem.write(500, 8)
        mem.write(500, 9)
        mem.rollback()
        assert mem.read(500) == 7

    def test_monitor_area_survives_rollback(self):
        mem = MainMemory(size=4096, globals_size=64)
        report_addr = mem.monitor_base + 3
        mem.begin_journal()
        mem.write(report_addr, 1234)
        mem.rollback()
        assert mem.read(report_addr) == 1234

    def test_commit_journal_keeps_values(self):
        mem = MainMemory(size=4096, globals_size=64)
        mem.begin_journal()
        mem.write(600, 5)
        mem.commit_journal()
        assert mem.read(600) == 5

    def test_nested_journal_rejected(self):
        mem = MainMemory(size=4096, globals_size=64)
        mem.begin_journal()
        with pytest.raises(RuntimeError):
            mem.begin_journal()

    def test_rollback_without_journal_rejected(self):
        mem = MainMemory(size=4096, globals_size=64)
        with pytest.raises(RuntimeError):
            mem.rollback()

    def test_string_round_trip(self):
        mem = MainMemory(size=4096, globals_size=64)
        mem.store_string(200, 'hello')
        assert mem.load_string(200) == 'hello'


class TestAllocator:
    def _alloc(self):
        return HeapAllocator(1000, 5000)

    def test_malloc_returns_object_base(self):
        alloc = self._alloc()
        base = alloc.malloc(10)
        assert base == 1000 + RED_ZONE
        assert alloc.classify(base) == 'object'
        assert alloc.classify(base + 9) == 'object'

    def test_red_zones_flank_objects(self):
        alloc = self._alloc()
        base = alloc.malloc(10)
        assert alloc.classify(base - 1) == 'redzone'
        assert alloc.classify(base + 10) == 'redzone'

    def test_free_marks_dangling(self):
        alloc = self._alloc()
        base = alloc.malloc(4)
        assert alloc.free(base)
        assert alloc.classify(base) == 'freed'

    def test_double_free_rejected(self):
        alloc = self._alloc()
        base = alloc.malloc(4)
        assert alloc.free(base)
        assert not alloc.free(base)

    def test_free_wild_pointer_rejected(self):
        alloc = self._alloc()
        assert not alloc.free(1234)

    def test_freed_block_reused(self):
        alloc = self._alloc()
        first = alloc.malloc(8)
        alloc.free(first)
        second = alloc.malloc(8)
        assert second == first
        assert alloc.classify(second) == 'object'

    def test_wild_beyond_bump(self):
        alloc = self._alloc()
        alloc.malloc(4)
        assert alloc.classify(4000) == 'wild'

    def test_heap_exhaustion_faults(self):
        alloc = HeapAllocator(1000, 1020)
        with pytest.raises(SimFault):
            alloc.malloc(100)

    def test_zero_size_allocates_one_word(self):
        alloc = self._alloc()
        base = alloc.malloc(0)
        assert alloc.classify(base) == 'object'

    def test_snapshot_restore_round_trip(self):
        alloc = self._alloc()
        first = alloc.malloc(4)
        snap = alloc.snapshot()
        second = alloc.malloc(4)
        alloc.free(first)
        alloc.restore(snap)
        assert alloc.classify(first) == 'object'
        assert alloc.classify(second) in ('redzone', 'wild')
        assert alloc.alloc_count == 1

    def test_clone_is_independent(self):
        alloc = self._alloc()
        base = alloc.malloc(4)
        twin = alloc.clone()
        twin.free(base)
        assert alloc.classify(base) == 'object'
        assert twin.classify(base) == 'freed'


class TestCache:
    def _cache(self):
        # tiny cache: 2 sets, 2 ways, 4-word lines
        return Cache(size_bytes=64, ways=2, line_bytes=16,
                     hit_latency=3, miss_latency=10)

    def test_miss_then_hit(self):
        cache = self._cache()
        first = cache.access(0, False)
        second = cache.access(1, False)      # same line
        assert not first.hit and first.cycles == 10
        assert second.hit and second.cycles == 3

    def test_lru_eviction(self):
        cache = self._cache()
        # set 0 holds lines with line_no % 2 == 0: line 0, 2, 4 ...
        cache.access(0, False)     # line 0
        cache.access(8, False)     # line 2
        cache.access(16, False)    # line 4 -> evicts line 0
        assert not cache.access(0, False).hit

    def test_volatile_overflow_when_all_ways_speculative(self):
        cache = self._cache()
        cache.access(0, True, version=1)    # line 0, volatile
        cache.access(8, True, version=1)    # line 2, volatile
        result = cache.access(16, True, version=1)
        assert result.volatile_overflow

    def test_committed_line_preferred_victim(self):
        cache = self._cache()
        cache.access(0, False)              # committed line 0
        cache.access(8, True, version=1)    # volatile line 2
        result = cache.access(16, True, version=1)
        assert not result.volatile_overflow   # committed line evicted
        assert cache.volatile_lines(1) == 2

    def test_gang_invalidate_drops_version_only(self):
        cache = self._cache()
        cache.access(0, False)
        cache.access(8, True, version=1)
        dropped = cache.gang_invalidate(1)
        assert dropped == 1
        assert cache.volatile_lines() == 0
        assert cache.access(0, False).hit

    def test_commit_version_retags(self):
        cache = self._cache()
        cache.access(8, True, version=3)
        assert cache.commit_version(3) == 1
        assert cache.volatile_lines() == 0
        assert cache.access(8, False, COMMITTED).hit

    def test_write_to_committed_line_takes_version(self):
        cache = self._cache()
        cache.access(0, False)
        cache.access(0, True, version=2)
        assert cache.volatile_lines(2) == 1

    def test_reset_clears_stats(self):
        cache = self._cache()
        cache.access(0, False)
        cache.reset()
        assert cache.hits == 0 and cache.misses == 0
        assert not cache.access(0, False).hit
