"""Unit tests for the interpreter core: semantics, faults, predication,
syscalls, timing."""

import pytest

from repro.cpu.exceptions import FaultKind, ProgramExit, SimFault
from repro.cpu.interpreter import Interpreter
from repro.cpu.state import Core
from repro.cpu.syscalls import IOContext
from repro.cpu.timing import CostModel
from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Reg, Syscall
from repro.memory.allocator import HeapAllocator
from repro.memory.main_memory import MainMemory


def make_machine(build, text_input='', int_input=None):
    """Builds a program via ``build(builder)`` and wires a machine."""
    builder = ProgramBuilder('t')
    builder.func('main')
    build(builder)
    program = builder.build()
    memory = MainMemory(size=1 << 16,
                        globals_size=max(program.globals_size, 64),
                        stack_words=1 << 10)
    allocator = HeapAllocator(memory.heap_base, memory.stack_limit)
    core = Core()
    core.reset(program.entry, memory.stack_top)
    io = IOContext(text_input=text_input, int_input=int_input)
    interp = Interpreter(program, memory, allocator, core, io,
                         CostModel())
    return interp, core, memory, allocator, io


def run_to_halt(interp, limit=10_000):
    for _ in range(limit):
        try:
            interp.step()
        except ProgramExit:
            return
    raise AssertionError('program did not halt')


class TestALUSemantics:
    def test_register_arithmetic(self):
        def build(b):
            b.emit('li', 8, 6)
            b.emit('li', 9, 7)
            b.emit('mul', 10, 8, 9)
            b.emit('halt')
        interp, core, _m, _a, _io = make_machine(build)
        with pytest.raises(ProgramExit):
            for _ in range(10):
                interp.step()
        assert core.regs[10] == 42

    def test_division_by_zero_faults(self):
        def build(b):
            b.emit('li', 8, 1)
            b.emit('li', 9, 0)
            b.emit('div', 10, 8, 9)
        interp, _c, _m, _a, _io = make_machine(build)
        interp.step()
        interp.step()
        with pytest.raises(SimFault) as excinfo:
            interp.step()
        assert excinfo.value.kind == FaultKind.DIV_ZERO

    def test_mod_by_zero_faults(self):
        def build(b):
            b.emit('li', 8, 1)
            b.emit('li', 9, 0)
            b.emit('mod', 10, 8, 9)
        interp, _c, _m, _a, _io = make_machine(build)
        interp.step()
        interp.step()
        with pytest.raises(SimFault):
            interp.step()

    def test_shift_amount_masked(self):
        def build(b):
            b.emit('li', 8, 1)
            b.emit('li', 9, 1 << 20)      # enormous shift count
            b.emit('shl', 10, 8, 9)
            b.emit('halt')
        interp, core, _m, _a, _io = make_machine(build)
        with pytest.raises(ProgramExit):
            for _ in range(10):
                interp.step()
        assert core.regs[10] == 1 << ((1 << 20) & 63)


class TestMemoryInstructions:
    def test_load_store_round_trip(self):
        def build(b):
            base = b.alloc_global('g', 4)
            b.emit('li', 8, 1234)
            b.emit('st', 8, 0, base + 2)
            b.emit('ld', 9, 0, base + 2)
            b.emit('halt')
            build.base = base
        interp, core, _m, _a, _io = make_machine(build)
        with pytest.raises(ProgramExit):
            for _ in range(10):
                interp.step()
        assert core.regs[9] == 1234

    def test_null_access_faults(self):
        def build(b):
            b.emit('ld', 8, 0, 2)          # address 2: null guard
        interp, _c, _m, _a, _io = make_machine(build)
        with pytest.raises(SimFault) as excinfo:
            interp.step()
        assert excinfo.value.kind == FaultKind.NULL_ACCESS

    def test_store_counts(self):
        def build(b):
            base = b.alloc_global('g', 2)
            b.emit('li', 8, 1)
            b.emit('st', 8, 0, base)
            b.emit('st', 8, 0, base + 1)
            b.emit('halt')
        interp, _c, _m, _a, _io = make_machine(build)
        with pytest.raises(ProgramExit):
            for _ in range(10):
                interp.step()
        assert interp.store_count == 2


class TestControlFlow:
    def test_branch_taken_and_not(self):
        def build(b):
            target = b.new_label()
            b.emit('li', 8, 1)
            b.br(8, target)
            b.emit('li', 9, 111)           # skipped
            b.bind(target)
            b.emit('li', 10, 222)
            b.emit('halt')
        interp, core, _m, _a, _io = make_machine(build)
        with pytest.raises(ProgramExit):
            for _ in range(10):
                interp.step()
        assert core.regs[9] == 0
        assert core.regs[10] == 222

    def test_branch_callback(self):
        seen = []

        def build(b):
            label = b.new_label()
            b.emit('li', 8, 0)
            b.br(8, label)
            b.bind(label)
            b.emit('halt')
        interp, _c, _m, _a, _io = make_machine(build)
        interp.on_branch = lambda addr, taken, instr: \
            seen.append((addr, taken))
        with pytest.raises(ProgramExit):
            for _ in range(10):
                interp.step()
        assert seen == [(1, False)]

    def test_call_ret(self):
        def build(b):
            b.call('helper')
            b.emit('halt')
            b.func('helper')
            b.emit('li', 8, 5)
            b.emit('ret')
        interp, core, _m, _a, _io = make_machine(build)
        with pytest.raises(ProgramExit):
            for _ in range(10):
                interp.step()
        assert core.regs[8] == 5
        assert core.call_depth == 0

    def test_call_depth_limit(self):
        def build(b):
            b.call('main')                 # infinite recursion
        interp, _c, _m, _a, _io = make_machine(build)
        with pytest.raises(SimFault) as excinfo:
            for _ in range(10_000):
                interp.step()
        assert excinfo.value.kind in (FaultKind.CALL_DEPTH,
                                      FaultKind.STACK_OVERFLOW)

    def test_stack_overflow_on_push(self):
        def build(b):
            loop = b.new_label()
            b.bind(loop)
            b.emit('push', 8)
            b.jmp(loop)
        interp, _c, _m, _a, _io = make_machine(build)
        with pytest.raises(SimFault) as excinfo:
            for _ in range(10_000):
                interp.step()
        assert excinfo.value.kind == FaultKind.STACK_OVERFLOW

    def test_pc_out_of_range(self):
        def build(b):
            b.emit('nop')
        interp, _c, _m, _a, _io = make_machine(build)
        interp.step()
        with pytest.raises(SimFault) as excinfo:
            interp.step()
        assert excinfo.value.kind == FaultKind.BAD_JUMP


class TestPredication:
    def _build(self, b):
        b.emit('li', 8, 1, pred=True)      # fix block
        b.emit('li', 9, 2, pred=True)
        b.emit('li', 10, 3)                # clears the predicate
        b.emit('li', 11, 4, pred=True)     # after the window: NOP
        b.emit('halt')

    def test_predicated_skipped_when_clear(self):
        interp, core, _m, _a, _io = make_machine(self._build)
        with pytest.raises(ProgramExit):
            for _ in range(10):
                interp.step()
        assert core.regs[8] == 0
        assert core.regs[9] == 0
        assert core.regs[10] == 3

    def test_predicated_executes_at_entry_then_clears(self):
        interp, core, _m, _a, _io = make_machine(self._build)
        core.pred = True                   # as set at NT-path entry
        with pytest.raises(ProgramExit):
            for _ in range(10):
                interp.step()
        assert core.regs[8] == 1
        assert core.regs[9] == 2
        assert core.regs[10] == 3
        assert core.regs[11] == 0          # window closed
        assert not core.pred


class TestSyscalls:
    def test_io_round_trip(self):
        def build(b):
            b.emit('syscall', Syscall.GETC)
            b.emit('mov', Reg.A1, Reg.RV)
            b.emit('syscall', Syscall.PUTC)
            b.emit('syscall', Syscall.READ_INT)
            b.emit('mov', Reg.A1, Reg.RV)
            b.emit('syscall', Syscall.PRINT_INT)
            b.emit('halt')
        interp, _c, _m, _a, io = make_machine(build, text_input='Q',
                                              int_input=[55])
        with pytest.raises(ProgramExit):
            for _ in range(10):
                interp.step()
        assert io.output_text == 'Q55\n'

    def test_exit_code(self):
        def build(b):
            b.emit('li', Reg.A1, 9)
            b.emit('syscall', Syscall.EXIT)
        interp, _c, _m, _a, _io = make_machine(build)
        interp.step()
        with pytest.raises(ProgramExit) as excinfo:
            interp.step()
        assert excinfo.value.code == 9

    def test_unknown_syscall_faults(self):
        def build(b):
            b.emit('syscall', 999)
        interp, _c, _m, _a, _io = make_machine(build)
        with pytest.raises(SimFault):
            interp.step()

    def test_unsafe_in_nt_mode(self):
        def build(b):
            b.emit('syscall', Syscall.PUTC)
        interp, _c, _m, _a, io = make_machine(build)
        interp.in_nt_path = True
        assert interp.step() == 'unsafe'
        assert io.output_text == ''

    def test_rand_uses_core_state(self):
        def build(b):
            b.emit('syscall', Syscall.RAND)
            b.emit('mov', 8, Reg.RV)
            b.emit('syscall', Syscall.RAND)
            b.emit('mov', 9, Reg.RV)
            b.emit('halt')
        interp, core, _m, _a, _io = make_machine(build)
        with pytest.raises(ProgramExit):
            for _ in range(10):
                interp.step()
        assert core.regs[8] != core.regs[9]


class TestTiming:
    def test_expensive_ops_cost_more(self):
        costs = CostModel()
        assert costs.cost('div') > costs.cost('add')
        assert costs.cost('malloc') > costs.cost('li')

    def test_memory_latency(self):
        costs = CostModel(l1_hit=3, l2_hit=10)
        assert costs.memory_latency(True) == 3
        assert costs.memory_latency(False) == 10

    def test_cycles_accumulate(self):
        def build(b):
            b.emit('li', 8, 1)
            b.emit('li', 9, 2)
            b.emit('div', 10, 9, 8)
            b.emit('halt')
        interp, core, _m, _a, _io = make_machine(build)
        with pytest.raises(ProgramExit):
            for _ in range(10):
                interp.step()
        assert core.cycles >= 1 + 1 + 12
        assert core.instret == 3


class TestCoreState:
    def test_reset(self):
        core = Core()
        core.regs[5] = 99
        core.cycles = 1000
        core.reset(entry=7, sp=500)
        assert core.pc == 7
        assert core.regs[Reg.SP] == 500
        assert core.regs[5] == 0
        assert core.cycles == 0

    def test_lcg_deterministic(self):
        a = Core(rand_seed=42)
        b = Core(rand_seed=42)
        assert [a.next_rand() for _ in range(5)] == \
            [b.next_rand() for _ in range(5)]
