"""Tests for the ASCII plotting helpers."""

from repro.core.result import NTPathRecord, NTPathTermination
from repro.harness.plots import (ascii_curve, cdf_points, coverage_bars,
                                 fig3_plot)


def _record(length, reason):
    return NTPathRecord(0, True, length, reason, 0)


class TestCDFPoints:
    def test_empty_records(self):
        points = cdf_points([], steps=4)
        assert points == [(0, 0.0), (250, 0.0), (500, 0.0),
                          (750, 0.0), (1000, 0.0)]

    def test_monotone_nondecreasing(self):
        records = [_record(10, NTPathTermination.CRASH),
                   _record(600, NTPathTermination.UNSAFE),
                   _record(1000, NTPathTermination.LENGTH)]
        points = cdf_points(records, steps=20)
        values = [value for _x, value in points]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_only_stops_counted(self):
        records = [_record(10, NTPathTermination.LENGTH),
                   _record(10, NTPathTermination.PROGRAM_END),
                   _record(10, NTPathTermination.CRASH)]
        points = cdf_points(records, steps=2)
        assert points[-1][1] == 1 / 3

    def test_final_ratio_matches_stop_fraction(self):
        records = [_record(i, NTPathTermination.UNSAFE)
                   for i in range(0, 1000, 100)]
        records += [_record(1000, NTPathTermination.LENGTH)] * 10
        points = cdf_points(records, steps=10)
        assert abs(points[-1][1] - 0.5) < 1e-9


class TestAsciiCharts:
    def test_curve_contains_axis_and_stars(self):
        points = [(i * 100, i / 10) for i in range(11)]
        chart = ascii_curve(points, title='demo', width=30)
        assert 'demo' in chart
        assert '*' in chart
        assert '+' + '-' * 30 in chart

    def test_fig3_plot_per_app(self):
        details = {
            'appA': [_record(5, NTPathTermination.CRASH),
                     _record(1000, NTPathTermination.LENGTH)],
            'appB': [_record(1000, NTPathTermination.LENGTH)],
        }
        chart = fig3_plot(details, width=20)
        assert 'appA' in chart and 'appB' in chart
        assert '1 of 2 stop early' in chart

    def test_coverage_bars(self):
        rows = [('app1', 10, '40.0%', '65.0%', 3),
                ('app2', 10, '50.0%', '80.0%', 4)]
        text = coverage_bars(rows, width=20)
        assert 'app1' in text
        assert '#' in text and '+' in text
        assert '40.0% ->  65.0%' in text

    def test_coverage_bars_skip_malformed(self):
        rows = [('broken', None), ('ok', 1, '10.0%', '20.0%', 0)]
        text = coverage_bars(rows, width=10)
        assert 'ok' in text
