"""End-to-end MiniC semantics tests: compile, run, check output."""

import pytest

from repro.minic.types import MiniCError
from tests.conftest import run_minic, run_output


class TestArithmetic:
    def test_basic_ops(self):
        out = run_output('''
            int main() {
              print_int(7 + 3); print_int(7 - 3); print_int(7 * 3);
              print_int(7 / 3); print_int(7 % 3);
              return 0;
            }''')
        assert out.split() == ['10', '4', '21', '2', '1']

    def test_c_style_negative_division(self):
        out = run_output('''
            int main() {
              print_int(-7 / 2); print_int(-7 % 2);
              print_int(7 / -2); print_int(7 % -2);
              return 0;
            }''')
        assert out.split() == ['-3', '-1', '-3', '1']

    def test_bitwise_and_shifts(self):
        out = run_output('''
            int main() {
              print_int(12 & 10); print_int(12 | 10); print_int(12 ^ 10);
              print_int(1 << 5); print_int(40 >> 2); print_int(~0);
              return 0;
            }''')
        assert out.split() == ['8', '14', '6', '32', '10', '-1']

    def test_comparisons(self):
        out = run_output('''
            int main() {
              print_int(3 < 5); print_int(5 < 3); print_int(3 <= 3);
              print_int(3 == 3); print_int(3 != 3); print_int(5 >= 6);
              return 0;
            }''')
        assert out.split() == ['1', '0', '1', '1', '0', '0']

    def test_unary(self):
        out = run_output('''
            int main() {
              print_int(-(3 + 4)); print_int(!0); print_int(!7);
              return 0;
            }''')
        assert out.split() == ['-7', '1', '0']

    def test_precedence_and_parens(self):
        assert run_output('''
            int main() { print_int((1 + 2) * (3 + 4) - 10 / 5); return 0; }
            ''').strip() == '19'


class TestControlFlow:
    def test_if_else_chains(self):
        src = '''
            int classify(int x) {
              if (x < 0) { return -1; }
              else if (x == 0) { return 0; }
              else { return 1; }
            }
            int main() {
              print_int(classify(-5));
              print_int(classify(0));
              print_int(classify(9));
              return 0;
            }'''
        assert run_output(src).split() == ['-1', '0', '1']

    def test_while_loop(self):
        src = '''
            int main() {
              int total = 0; int i = 1;
              while (i <= 10) { total = total + i; i = i + 1; }
              print_int(total);
              return 0;
            }'''
        assert run_output(src).strip() == '55'

    def test_for_with_break_continue(self):
        src = '''
            int main() {
              int total = 0;
              for (int i = 0; i < 100; i = i + 1) {
                if (i % 2 == 0) { continue; }
                if (i > 10) { break; }
                total = total + i;
              }
              print_int(total);
              return 0;
            }'''
        assert run_output(src).strip() == str(1 + 3 + 5 + 7 + 9)

    def test_nested_loops(self):
        src = '''
            int main() {
              int count = 0;
              for (int i = 0; i < 4; i = i + 1) {
                for (int j = 0; j < i; j = j + 1) { count = count + 1; }
              }
              print_int(count);
              return 0;
            }'''
        assert run_output(src).strip() == '6'

    def test_short_circuit_and(self):
        src = '''
            int g = 0;
            int touch() { g = g + 1; return 1; }
            int main() {
              if (0 && touch()) { }
              print_int(g);
              if (1 && touch()) { }
              print_int(g);
              return 0;
            }'''
        assert run_output(src).split() == ['0', '1']

    def test_short_circuit_or(self):
        src = '''
            int g = 0;
            int touch() { g = g + 1; return 0; }
            int main() {
              if (1 || touch()) { }
              print_int(g);
              if (0 || touch()) { }
              print_int(g);
              return 0;
            }'''
        assert run_output(src).split() == ['0', '1']


class TestFunctions:
    def test_recursion(self):
        src = '''
            int fib(int n) {
              if (n < 2) { return n; }
              return fib(n - 1) + fib(n - 2);
            }
            int main() { print_int(fib(12)); return 0; }'''
        assert run_output(src).strip() == '144'

    def test_six_arguments(self):
        src = '''
            int sum6(int a, int b, int c, int d, int e, int f) {
              return a + b + c + d + e + f;
            }
            int main() { print_int(sum6(1, 2, 3, 4, 5, 6)); return 0; }'''
        assert run_output(src).strip() == '21'

    def test_temps_preserved_across_calls(self):
        # the call result is combined with values computed before it
        src = '''
            int id(int x) { return x; }
            int main() {
              print_int(10 * 100 + id(7) * id(3) + 1);
              return 0;
            }'''
        assert run_output(src).strip() == '1022'

    def test_void_function(self):
        src = '''
            int g;
            void set(int v) { g = v; }
            int main() { set(42); print_int(g); return 0; }'''
        assert run_output(src).strip() == '42'

    def test_mutual_recursion(self):
        src = '''
            int is_odd(int n);
            int is_even(int n) {
              if (n == 0) { return 1; }
              return is_odd(n - 1);
            }
            int is_odd(int n) {
              if (n == 0) { return 0; }
              return is_even(n - 1);
            }
            int main() { print_int(is_even(10)); print_int(is_odd(10));
                         return 0; }'''
        # forward declarations are not supported: declare via definition
        # order instead
        src = '''
            int is_even(int n);
            int main() { return 0; }'''
        with pytest.raises(MiniCError):
            run_minic(src)

    def test_wrong_arity_rejected(self):
        with pytest.raises(MiniCError):
            run_minic('int f(int a) { return a; }'
                      'int main() { return f(1, 2); }')

    def test_unknown_function_rejected(self):
        with pytest.raises(MiniCError):
            run_minic('int main() { return mystery(); }')


class TestPointersArrays:
    def test_local_array(self):
        src = '''
            int main() {
              int a[5];
              for (int i = 0; i < 5; i = i + 1) { a[i] = i * i; }
              print_int(a[0] + a[4]);
              return 0;
            }'''
        assert run_output(src).strip() == '16'

    def test_global_array_init(self):
        src = '''
            int table[4] = {10, 20, 30, 40};
            int main() { print_int(table[1] + table[3]); return 0; }'''
        assert run_output(src).strip() == '60'

    def test_pointer_deref_and_addrof(self):
        src = '''
            int main() {
              int x = 5;
              int *p = &x;
              *p = 9;
              print_int(x);
              print_int(*p);
              return 0;
            }'''
        assert run_output(src).split() == ['9', '9']

    def test_pointer_arithmetic(self):
        src = '''
            int main() {
              int a[4];
              int *p = a;
              *(p + 2) = 7;
              print_int(a[2]);
              return 0;
            }'''
        assert run_output(src).strip() == '7'

    def test_malloc_free(self):
        src = '''
            int main() {
              int *p = malloc(8);
              for (int i = 0; i < 8; i = i + 1) { p[i] = i; }
              int total = 0;
              for (int i = 0; i < 8; i = i + 1) { total = total + p[i]; }
              free(p);
              print_int(total);
              return 0;
            }'''
        assert run_output(src).strip() == '28'

    def test_string_literal(self):
        src = '''
            int main() {
              int *s = "ab";
              putc(s[0]); putc(s[1]);
              print_int(s[2]);
              return 0;
            }'''
        out = run_output(src)
        assert out.startswith('ab')
        assert out[2:].strip() == '0'

    def test_pass_array_to_function(self):
        src = '''
            int total(int *a, int n) {
              int sum = 0;
              for (int i = 0; i < n; i = i + 1) { sum = sum + a[i]; }
              return sum;
            }
            int g[3] = {5, 6, 7};
            int main() { print_int(total(g, 3)); return 0; }'''
        assert run_output(src).strip() == '18'


class TestStructs:
    def test_struct_fields(self):
        src = '''
            struct point { int x; int y; };
            int main() {
              struct point p;
              p.x = 3; p.y = 4;
              print_int(p.x * p.x + p.y * p.y);
              return 0;
            }'''
        assert run_output(src).strip() == '25'

    def test_struct_pointer_arrow(self):
        src = '''
            struct node { int value; struct node *next; };
            int main() {
              struct node *a = malloc(sizeof(struct node));
              struct node *b = malloc(sizeof(struct node));
              a->value = 1; a->next = b;
              b->value = 2; b->next = 0;
              int total = 0;
              struct node *cur = a;
              while (cur != 0) {
                total = total + cur->value;
                cur = cur->next;
              }
              print_int(total);
              return 0;
            }'''
        assert run_output(src).strip() == '3'

    def test_struct_array_field(self):
        src = '''
            struct buf { int data[4]; int len; };
            int main() {
              struct buf b;
              b.len = 0;
              for (int i = 0; i < 4; i = i + 1) {
                b.data[i] = i + 1;
                b.len = b.len + 1;
              }
              print_int(b.data[3] + b.len);
              return 0;
            }'''
        assert run_output(src).strip() == '8'

    def test_sizeof_struct(self):
        src = '''
            struct wide { int a; int b[6]; int c; };
            int main() { print_int(sizeof(struct wide)); return 0; }'''
        assert run_output(src).strip() == '8'

    def test_array_of_structs(self):
        src = '''
            struct item { int key; int value; };
            struct item items[3];
            int main() {
              for (int i = 0; i < 3; i = i + 1) {
                items[i].key = i;
                items[i].value = i * 10;
              }
              print_int(items[2].value + items[1].key);
              return 0;
            }'''
        assert run_output(src).strip() == '21'


class TestIO:
    def test_getc_eof(self):
        src = '''
            int main() {
              int c = getc();
              int count = 0;
              while (c != -1) { count = count + 1; c = getc(); }
              print_int(count);
              return 0;
            }'''
        result = run_minic(src, text_input='hello')
        assert result.output.strip() == '5'

    def test_read_int_stream(self):
        src = '''
            int main() {
              int total = 0;
              int v = read_int();
              while (v != -1) { total = total + v; v = read_int(); }
              print_int(total);
              return 0;
            }'''
        result = run_minic(src, int_input=[5, 10, 15])
        assert result.output.strip() == '30'

    def test_exit_code(self):
        result = run_minic('int main() { exit(3); return 0; }')
        assert result.exit_code == 3

    def test_rand_deterministic(self):
        src = '''
            int main() { print_int(rand() % 100); return 0; }'''
        first = run_minic(src).output
        second = run_minic(src).output
        assert first == second


class TestCompileErrors:
    def test_undeclared_variable(self):
        with pytest.raises(MiniCError):
            run_minic('int main() { return nothere; }')

    def test_duplicate_local(self):
        with pytest.raises(MiniCError):
            run_minic('int main() { int a; int a; return 0; }')

    def test_shadowing_in_inner_block_allowed(self):
        src = '''
            int main() {
              int a = 1;
              { int a = 2; print_int(a); }
              print_int(a);
              return 0;
            }'''
        assert run_output(src).split() == ['2', '1']

    def test_missing_main(self):
        with pytest.raises(MiniCError):
            run_minic('int helper() { return 0; }')

    def test_deref_non_pointer(self):
        with pytest.raises(MiniCError):
            run_minic('int main() { int x; return *x; }')

    def test_break_outside_loop(self):
        with pytest.raises(MiniCError):
            run_minic('int main() { break; return 0; }')

    def test_unknown_struct(self):
        with pytest.raises(MiniCError):
            run_minic('int main() { struct ghost g; return 0; }')
