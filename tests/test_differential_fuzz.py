"""Differential fuzzing: the sandbox must be invisible.

Generates random (but crash-free) MiniC programs and asserts that the
observable behaviour -- output, exit code -- is bit-identical across
the baseline, the standard configuration, the CMP scheduling engine and
the detailed Fig. 6 engine, and that coverage accounting stays
consistent.  This is the strongest form of the paper's transparency
requirement.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import Mode, PathExpanderConfig
from repro.core.runner import run_detailed_cmp, run_program
from repro.minic.codegen import compile_minic

_SETTINGS = settings(max_examples=25, deadline=None,
                     suppress_health_check=[HealthCheck.too_slow])

_VARS = ('a', 'b', 'c')


def _expr(depth):
    leaf = st.one_of(
        st.integers(min_value=-40, max_value=40).map(
            lambda v: '(0 - %d)' % -v if v < 0 else str(v)),
        st.sampled_from(_VARS),
        st.integers(min_value=0, max_value=7).map(
            lambda i: 'arr[%d]' % i),
    )
    if depth >= 2:
        return leaf
    inner = _expr(depth + 1)
    composite = st.tuples(inner, st.sampled_from(['+', '-', '*', '&',
                                                  '<', '==']),
                          inner).map(lambda t: '(%s %s %s)' % t)
    return st.one_of(leaf, composite)


def _statement(depth):
    assign = st.tuples(st.sampled_from(_VARS), _expr(depth)).map(
        lambda t: '%s = %s;' % t)
    array_store = st.tuples(_expr(depth), _expr(depth)).map(
        lambda t: 'arr[(%s) & 7] = %s;' % t)
    emit = _expr(depth).map(lambda e: 'print_int(%s);' % e)
    if depth >= 2:
        return st.one_of(assign, array_store, emit)
    body = _statement(depth + 1)
    conditional = st.tuples(_expr(depth + 1), body, body).map(
        lambda t: 'if (%s) { %s } else { %s }' % t)
    loop = st.tuples(st.integers(min_value=1, max_value=6), body).map(
        lambda t: ('for (int i%d = 0; i%d < %d; i%d = i%d + 1) { %s }'
                   % (t[0], t[0], t[0], t[0], t[0], t[1])))
    return st.one_of(assign, array_store, emit, conditional, loop)


_PROGRAM = st.lists(_statement(0), min_size=3, max_size=10).map(
    lambda stmts: '''
int arr[8];
int main() {
  int a = read_int();
  int b = read_int();
  int c = 0;
  %s
  print_int(a); print_int(b); print_int(c);
  print_int(arr[0] + arr[3] + arr[7]);
  return 0;
}''' % '\n  '.join(stmts))


class TestDifferentialFuzz:
    @_SETTINGS
    @given(_PROGRAM, st.integers(0, 100), st.integers(0, 100))
    def test_all_engines_agree(self, source, a, b):
        program = compile_minic(source, name='fuzz')
        inputs = [a, b]
        results = {}
        baseline = run_program(
            program, config=PathExpanderConfig(mode=Mode.BASELINE),
            int_input=inputs)
        assert not baseline.crashed, 'generator must be crash-free'
        for mode in (Mode.STANDARD, Mode.CMP):
            results[mode] = run_program(
                program, config=PathExpanderConfig(mode=mode),
                int_input=inputs)
        results['detailed'] = run_detailed_cmp(
            program, config=PathExpanderConfig(mode=Mode.CMP),
            int_input=inputs)
        for label, result in results.items():
            assert result.output == baseline.output, label
            assert result.exit_code == baseline.exit_code, label
            assert not result.crashed, label
            assert result.baseline_covered <= result.total_covered \
                <= result.total_edges, label

    @_SETTINGS
    @given(_PROGRAM, st.integers(0, 100))
    def test_standard_and_detailed_find_same_edges(self, source, seed):
        program = compile_minic(source, name='fuzz_cov')
        standard = run_program(
            program, config=PathExpanderConfig(mode=Mode.STANDARD),
            int_input=[seed, seed + 1])
        detailed = run_detailed_cmp(
            program,
            config=PathExpanderConfig(mode=Mode.CMP,
                                      max_num_nt_paths=64),
            int_input=[seed, seed + 1])
        # The detailed engine may skip spawns only through the
        # outstanding-path cap; with a high cap, covered edges match.
        assert detailed.covered_edges == standard.covered_edges


class TestBackendFuzz:
    """Property form of the dual-backend equivalence invariant
    (DESIGN.md): for random programs, the fast backend's RunResult is
    byte-identical to the reference backend's in every mode."""

    @_SETTINGS
    @given(_PROGRAM, st.integers(0, 100), st.integers(0, 100))
    def test_backends_identical_in_every_mode(self, source, a, b):
        program = compile_minic(source, name='fuzz_backend')
        for mode in Mode.ALL:
            payloads = {}
            for backend in ('reference', 'fast'):
                result = run_program(
                    program, detector='ccured',
                    config=PathExpanderConfig(mode=mode,
                                              backend=backend),
                    int_input=[a, b])
                payloads[backend] = result.to_dict()
            assert payloads['fast'] == payloads['reference'], mode
