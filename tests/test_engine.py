"""Tests for the PathExpander engine: sandboxing, NT-path lifecycle,
selection policy, variable fixing, and the execution modes."""

import pytest

from repro.core.config import Mode, PathExpanderConfig
from repro.core.result import NTPathTermination
from repro.core.runner import run_program, run_with_and_without
from repro.minic.codegen import compile_minic
from tests.conftest import run_minic

HIDDEN_BUG_SRC = '''
int buf[8];

int main() {
  int n = read_int();
  int *p = malloc(4);
  for (int i = 0; i < n; i = i + 1) { buf[i & 7] = i; }
  if (n > 1000) {
    for (int i = 0; i <= 4; i = i + 1) { p[i] = i; }
  }
  free(p);
  print_int(buf[3]);
  return 0;
}
'''


class TestSandboxing:
    def test_nt_paths_do_not_change_output(self):
        src = '''
            int main() {
              int total = 0;
              for (int i = 0; i < 20; i = i + 1) {
                if (i % 3 == 0) { total = total + i; }
                else { total = total + 1; }
              }
              print_int(total);
              return 0;
            }'''
        base = run_minic(src, mode=Mode.BASELINE)
        std = run_minic(src, mode=Mode.STANDARD)
        assert std.nt_spawned > 0
        assert std.output == base.output
        assert std.exit_code == base.exit_code

    def test_nt_path_memory_writes_rolled_back(self):
        # The NT-path writes a sentinel global; the taken path must
        # never observe it.
        src = '''
            int sentinel = 0;
            int main() {
              int x = read_int();
              if (x > 100) { sentinel = 1; }
              print_int(sentinel);
              return 0;
            }'''
        result = run_minic(src, mode=Mode.STANDARD, int_input=[5])
        assert result.nt_spawned >= 1
        assert result.output.strip() == '0'

    def test_nt_path_heap_allocations_rolled_back(self):
        src = '''
            int main() {
              int x = read_int();
              if (x > 100) {
                int *leak = malloc(64);
                leak[0] = 1;
              }
              int *p = malloc(4);
              print_int(p[0]);
              return 0;
            }'''
        base = run_minic(src, mode=Mode.BASELINE, int_input=[1])
        std = run_minic(src, mode=Mode.STANDARD, int_input=[1])
        # The survivor allocation lands at the same heap address, so
        # the NT-path's allocation really was rolled back.
        assert std.output == base.output
        assert std.nt_spawned >= 1

    def test_io_not_performed_on_nt_path(self):
        src = '''
            int main() {
              int x = read_int();
              if (x > 100) { print_int(777); }
              print_int(1);
              return 0;
            }'''
        result = run_minic(src, mode=Mode.STANDARD, int_input=[5])
        assert '777' not in result.output
        assert result.nt_terminations.get(NTPathTermination.UNSAFE, 0) >= 1

    def test_program_end_inside_nt_path_rolled_back(self):
        src = '''
            int main() {
              int x = read_int();
              if (x == 0) { return 0; }
              print_int(x);
              return 0;
            }'''
        result = run_minic(src, mode=Mode.STANDARD, int_input=[9])
        assert result.output.strip() == '9'
        assert result.nt_terminations.get(
            NTPathTermination.PROGRAM_END, 0) >= 1


class TestTermination:
    def test_length_cap(self):
        src = '''
            int main() {
              int x = read_int();
              if (x > 100) {
                int i = 0;
                while (i >= 0) { i = i + 1; }
              }
              return 0;
            }'''
        result = run_minic(src, mode=Mode.STANDARD, int_input=[1],
                           max_nt_path_length=200)
        assert result.nt_terminations.get(NTPathTermination.LENGTH, 0) >= 1
        assert result.instret_nt <= 200 * max(result.nt_spawned, 1)

    def test_crash_swallowed(self):
        # The NT-path divides by a value fixed to zero range; the taken
        # path is unaffected.
        src = '''
            int main() {
              int x = read_int();
              int y = 0;
              if (x == 0) { print_int(100 / y); }
              print_int(5);
              return 0;
            }'''
        result = run_minic(src, mode=Mode.STANDARD, int_input=[3])
        assert not result.crashed
        assert result.output.strip() == '5'
        assert result.nt_terminations.get(NTPathTermination.CRASH, 0) >= 1

    def test_taken_path_crash_reported(self):
        result = run_minic('int main() { int y = 0; return 1 / y; }',
                           mode=Mode.STANDARD)
        assert result.crashed
        assert result.crash_kind == 'div_zero'


class TestSelection:
    def test_counter_threshold_limits_spawns(self):
        src = '''
            int main() {
              for (int i = 0; i < 200; i = i + 1) {
                if (i == 999) { print_int(0); }
              }
              return 0;
            }'''
        one = run_minic(src, mode=Mode.STANDARD, nt_counter_threshold=1)
        five = run_minic(src, mode=Mode.STANDARD, nt_counter_threshold=5)
        assert one.nt_spawned < five.nt_spawned
        # the never-taken edge is explored at most threshold times
        assert five.nt_spawned <= 5 * one.nt_spawned

    def test_counter_reset_re_explores(self):
        src = '''
            int main() {
              for (int i = 0; i < 3000; i = i + 1) {
                if (i == 999999) { print_int(0); }
              }
              return 0;
            }'''
        no_reset = run_minic(src, mode=Mode.STANDARD,
                             counter_reset_interval=100_000_000)
        with_reset = run_minic(src, mode=Mode.STANDARD,
                               counter_reset_interval=10_000)
        assert with_reset.nt_spawned > no_reset.nt_spawned

    def test_baseline_never_spawns(self):
        result = run_minic(HIDDEN_BUG_SRC, mode=Mode.BASELINE,
                           int_input=[10])
        assert result.nt_spawned == 0


class TestBugDetection:
    def test_hidden_bug_found_only_with_pathexpander(self):
        program = compile_minic(HIDDEN_BUG_SRC, name='hidden')
        base, expanded = run_with_and_without(program, 'ccured',
                                              int_input=[10])
        assert base.reports == []
        kinds = {r.kind for r in expanded.reports}
        assert 'buffer_overrun' in kinds
        assert all(r.in_nt_path for r in expanded.reports)

    def test_iwatcher_also_finds_it(self):
        program = compile_minic(HIDDEN_BUG_SRC, name='hidden')
        _base, expanded = run_with_and_without(program, 'iwatcher',
                                               int_input=[10])
        assert any(r.kind == 'buffer_overrun' for r in expanded.reports)

    def test_assertion_bug_on_nt_path(self):
        src = '''
            int main() {
              int mode = read_int();
              int total = 0;
              for (int i = 0; i < 10; i = i + 1) { total = total + i; }
              if (mode == 7) {
                /* buggy handler: violates the invariant */
                total = total - 100;
                assert(total >= 0, "TOTAL_NON_NEGATIVE");
              }
              print_int(total);
              return 0;
            }'''
        base = run_minic(src, detector='assertions', mode=Mode.BASELINE,
                         int_input=[1])
        std = run_minic(src, detector='assertions', mode=Mode.STANDARD,
                        int_input=[1])
        assert base.reports == []
        assert any(r.assert_id == 'TOTAL_NON_NEGATIVE'
                   for r in std.reports)

    def test_reports_survive_rollback(self):
        result = run_minic(HIDDEN_BUG_SRC, detector='ccured',
                           mode=Mode.STANDARD, int_input=[10])
        assert len(result.reports) >= 1
        assert all(r.in_nt_path for r in result.reports)


class TestVariableFixing:
    # A null-pointer branch: without fixing, the NT-path dereferences
    # null and crashes; with fixing it reaches the blank structure.
    NULL_SRC = '''
        struct item { int weight; int tag; };
        int main() {
          struct item *p = 0;
          int x = read_int();
          if (p != 0) {
            print_int(p->weight);
          }
          print_int(x);
          return 0;
        }'''

    def test_pointer_fix_avoids_crash(self):
        fixed = run_minic(self.NULL_SRC, mode=Mode.STANDARD, int_input=[1],
                          variable_fixing=True)
        unfixed = run_minic(self.NULL_SRC, mode=Mode.STANDARD,
                            int_input=[1], variable_fixing=False)
        crashes_fixed = fixed.nt_terminations.get(
            NTPathTermination.CRASH, 0)
        crashes_unfixed = unfixed.nt_terminations.get(
            NTPathTermination.CRASH, 0)
        assert crashes_unfixed > crashes_fixed

    def test_fix_reduces_false_positives(self):
        fixed = run_minic(self.NULL_SRC, detector='ccured',
                          mode=Mode.STANDARD, int_input=[1],
                          variable_fixing=True)
        assert fixed.reports == []

    def test_fix_makes_condition_hold(self):
        # NT-path takes the x == 42 edge; the fix must set x to 42 so
        # the assert inside agrees with the branch direction.
        src = '''
            int main() {
              int x = read_int();
              if (x == 42) {
                assert(x == 42, "CONSISTENT");
              }
              return 0;
            }'''
        result = run_minic(src, detector='assertions', mode=Mode.STANDARD,
                           int_input=[7], variable_fixing=True)
        assert result.nt_spawned >= 1
        assert result.reports == []

    def test_without_fix_condition_contradicts(self):
        src = '''
            int main() {
              int x = read_int();
              if (x == 42) {
                assert(x == 42, "CONSISTENT");
              }
              return 0;
            }'''
        result = run_minic(src, detector='assertions', mode=Mode.STANDARD,
                           int_input=[7], variable_fixing=False)
        assert any(r.assert_id == 'CONSISTENT' for r in result.reports)


class TestCoverage:
    def test_coverage_increases(self):
        result = run_minic(HIDDEN_BUG_SRC, mode=Mode.STANDARD,
                           int_input=[10])
        assert result.total_coverage > result.baseline_coverage

    def test_coverage_bounded_by_one(self):
        result = run_minic(HIDDEN_BUG_SRC, mode=Mode.STANDARD,
                           int_input=[10])
        assert 0.0 <= result.baseline_coverage <= result.total_coverage <= 1.0


class TestModes:
    def test_cmp_same_detection_lower_overhead(self):
        program = compile_minic(HIDDEN_BUG_SRC, name='hidden')
        config = PathExpanderConfig()
        base = run_program(program, detector='ccured',
                           config=config.replace(mode=Mode.BASELINE),
                           int_input=[500])
        std = run_program(program, detector='ccured',
                          config=config.replace(mode=Mode.STANDARD),
                          int_input=[500])
        cmp_ = run_program(program, detector='ccured',
                           config=config.replace(mode=Mode.CMP),
                           int_input=[500])
        assert {r.kind for r in cmp_.reports} == \
            {r.kind for r in std.reports}
        assert cmp_.total_covered == std.total_covered
        assert cmp_.cycles < std.cycles
        assert cmp_.overhead_vs(base) < std.overhead_vs(base)

    def test_software_mode_most_expensive(self):
        program = compile_minic(HIDDEN_BUG_SRC, name='hidden')
        config = PathExpanderConfig()
        std = run_program(program, detector='ccured',
                          config=config.replace(mode=Mode.STANDARD),
                          int_input=[500])
        sw = run_program(program, detector='ccured',
                         config=config.replace(mode=Mode.SOFTWARE),
                         int_input=[500])
        assert sw.cycles > std.cycles
        assert {r.kind for r in sw.reports} == {r.kind for r in std.reports}

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            PathExpanderConfig(mode='warp-speed')


class TestAblation:
    def test_nt_from_nt_increases_crashes(self):
        src = '''
            int main() {
              int data[16];
              for (int i = 0; i < 16; i = i + 1) { data[i] = i; }
              int total = 0;
              for (int i = 0; i < 50; i = i + 1) {
                int v = data[i % 16];
                if (v > 100) { total = total + data[v]; }
                if (total > 1000) { total = 0; }
                total = total + v;
              }
              print_int(total);
              return 0;
            }'''
        plain = run_minic(src, mode=Mode.STANDARD, variable_fixing=False)
        forced = run_minic(src, mode=Mode.STANDARD, variable_fixing=False,
                           explore_nt_from_nt=True)
        assert forced.total_covered >= plain.total_covered
