"""Unit tests for the ISA layer: instructions, programs, builder."""

import pytest

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Instr, Reg, Syscall
from repro.isa.program import BranchEdge


class TestInstr:
    def test_valid_opcode(self):
        instr = Instr('add', 1, 2, 3)
        assert instr.op == 'add'
        assert (instr.a, instr.b, instr.c) == (1, 2, 3)
        assert not instr.pred

    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instr('frobnicate', 1)

    def test_predicated_repr(self):
        instr = Instr('li', Reg.FIX, 5, pred=True)
        assert '<p>' in repr(instr)

    def test_register_conventions(self):
        assert Reg.ZERO == 0
        assert Reg.RV == Reg.A0
        assert Reg.T_FIRST > Reg.A5
        assert Reg.FIX > Reg.T_LAST
        assert Reg.COUNT == 32

    def test_syscall_codes_unique(self):
        assert len(Syscall.ALL) == 7


class TestBuilder:
    def test_labels_resolve(self):
        builder = ProgramBuilder('t')
        builder.func('main')
        label = builder.new_label()
        builder.jmp(label)
        builder.emit('nop')
        builder.bind(label)
        builder.emit('halt')
        program = builder.build()
        assert program.code[0].a == 2      # jmp target resolved

    def test_unbound_label_rejected(self):
        builder = ProgramBuilder('t')
        builder.func('main')
        label = builder.new_label()
        builder.jmp(label)
        with pytest.raises(ValueError, match='unbound label'):
            builder.build()

    def test_double_bind_rejected(self):
        builder = ProgramBuilder('t')
        builder.func('main')
        label = builder.new_label()
        builder.bind(label)
        with pytest.raises(ValueError):
            builder.bind(label)

    def test_call_resolution(self):
        builder = ProgramBuilder('t')
        builder.func('main')
        builder.call('helper')
        builder.emit('halt')
        builder.func('helper')
        builder.emit('ret')
        program = builder.build()
        assert program.code[0].a == program.functions['helper']

    def test_call_unknown_function_rejected(self):
        builder = ProgramBuilder('t')
        builder.func('main')
        builder.call('nowhere')
        with pytest.raises(ValueError, match='unknown function'):
            builder.build()

    def test_duplicate_function_rejected(self):
        builder = ProgramBuilder('t')
        builder.func('main')
        with pytest.raises(ValueError):
            builder.func('main')

    def test_missing_entry_rejected(self):
        builder = ProgramBuilder('t')
        builder.func('helper')
        builder.emit('ret')
        with pytest.raises(ValueError, match='no entry'):
            builder.build()

    def test_global_allocation_advances(self):
        builder = ProgramBuilder('t')
        first = builder.alloc_global('a', 4)
        gap = builder.alloc_gap(2)
        second = builder.alloc_global('b', 1)
        assert gap == first + 4
        assert second == first + 6
        assert builder.globals_size == second + 1

    def test_string_in_data_image(self):
        builder = ProgramBuilder('t')
        base = builder.alloc_string('hi')
        builder.func('main')
        builder.emit('halt')
        program = builder.build()
        assert program.data_image[base] == ord('h')
        assert program.data_image[base + 1] == ord('i')
        assert program.data_image[base + 2] == 0


class TestProgram:
    def _program_with_branch(self):
        builder = ProgramBuilder('t')
        builder.func('main')
        label = builder.new_label()
        builder.emit('li', 8, 1)
        builder.br(8, label)
        builder.emit('nop')
        builder.bind(label)
        builder.emit('halt')
        return builder.build()

    def test_branch_edges_collected(self):
        program = self._program_with_branch()
        assert program.num_branches == 1
        assert program.num_edges == 2
        taken = [e for e in program.branch_edges if e.taken][0]
        fallthrough = [e for e in program.branch_edges if not e.taken][0]
        assert taken.branch_addr == fallthrough.branch_addr == 1
        assert taken.target == 3
        assert fallthrough.target == 2

    def test_edge_keys_distinct(self):
        program = self._program_with_branch()
        keys = {edge.key for edge in program.branch_edges}
        assert keys == {(1, True), (1, False)}

    def test_location_fallback(self):
        program = self._program_with_branch()
        assert program.location(2).startswith('main+')

    def test_branch_edge_repr(self):
        edge = BranchEdge(5, True, 9)
        assert 'T' in repr(edge)
