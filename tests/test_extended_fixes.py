"""Tests for the extended consistency-fixing pass (future work):
branch conditions over struct fields and constant array indices."""

from repro.core.config import PathExpanderConfig
from repro.core.runner import run_program
from repro.minic.codegen import compile_minic


def _run(source, extended, detector='assertions', int_input=None,
         variable_fixing=True):
    program = compile_minic(source, name='extfix',
                            extended_fixes=extended)
    return run_program(
        program, detector=detector,
        config=PathExpanderConfig(variable_fixing=variable_fixing),
        int_input=int_input or [])


STRUCT_FIELD_SRC = '''
struct config { int limit; int mode; };
struct config cfg;

int main() {
  cfg.limit = read_int();
  if (cfg.limit == 42) {
    /* with the fix, the branch direction is consistent */
    assert(cfg.limit == 42, "FIELD_CONSISTENT");
  }
  return 0;
}
'''

ARRAY_ELEM_SRC = '''
int flags[8];

int main() {
  flags[3] = read_int();
  if (flags[3] > 100) {
    assert(flags[3] > 100, "ELEM_CONSISTENT");
  }
  return 0;
}
'''

FIELD_POINTER_SRC = '''
struct node { int value; struct node *next; };
struct node head;

int main() {
  head.value = read_int();
  head.next = 0;
  if (head.next != 0) {
    /* without a fix this dereferences null and the NT-path crashes */
    print_int(head.next->value);
  }
  return 0;
}
'''


class TestStructFieldFix:
    def test_baseline_prototype_cannot_fix(self):
        result = _run(STRUCT_FIELD_SRC, extended=False, int_input=[7])
        assert any(r.assert_id == 'FIELD_CONSISTENT'
                   for r in result.reports)

    def test_extended_fix_makes_consistent(self):
        result = _run(STRUCT_FIELD_SRC, extended=True, int_input=[7])
        assert result.nt_spawned >= 1
        assert result.reports == []


class TestArrayElementFix:
    def test_baseline_prototype_cannot_fix(self):
        result = _run(ARRAY_ELEM_SRC, extended=False, int_input=[5])
        assert any(r.assert_id == 'ELEM_CONSISTENT'
                   for r in result.reports)

    def test_extended_fix_makes_consistent(self):
        result = _run(ARRAY_ELEM_SRC, extended=True, int_input=[5])
        assert result.reports == []

    def test_out_of_range_constant_index_not_fixed(self):
        src = ARRAY_ELEM_SRC.replace('flags[3]', 'flags[9]')
        # flags[9] is itself out of bounds; the analysis must refuse
        program = compile_minic(src, name='oob', extended_fixes=True)
        # no predicated store to a bad address may exist
        for instr in program.code:
            if instr.pred and instr.op == 'st':
                base = [name for name, base, size
                        in program.global_objects if name == 'flags']
                assert instr.c != 0 or not base


class TestFieldPointerFix:
    def test_null_field_crashes_without_extended_fix(self):
        result = _run(FIELD_POINTER_SRC, extended=False,
                      detector='ccured', int_input=[1])
        assert result.nt_terminations.get('crash', 0) >= 1

    def test_extended_fix_points_at_blank(self):
        result = _run(FIELD_POINTER_SRC, extended=True,
                      detector='ccured', int_input=[1])
        assert result.nt_terminations.get('crash', 0) == 0
        assert result.reports == []


class TestPrototypeBehaviourUnchanged:
    def test_simple_variables_still_fixed_identically(self):
        src = '''
            int main() {
              int x = read_int();
              if (x == 9) { assert(x == 9, "SIMPLE"); }
              return 0;
            }'''
        for extended in (False, True):
            result = _run(src, extended=extended, int_input=[1])
            assert result.reports == []

    def test_disabled_fixing_disables_extended_too(self):
        result = _run(STRUCT_FIELD_SRC, extended=True, int_input=[7],
                      variable_fixing=False)
        assert any(r.assert_id == 'FIELD_CONSISTENT'
                   for r in result.reports)
