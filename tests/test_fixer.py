"""Unit tests for the variable-fixing analysis (Section 4.4)."""

import pytest

from repro.minic import ast_nodes as ast
from repro.minic.fixer import analyze_condition
from repro.minic.types import INT, PtrType, StructType


def _lookup(types):
    return lambda name: types.get(name)


INT_VARS = _lookup({'x': INT, 'y': INT})
PTR_VARS = _lookup({'p': PtrType(INT), 'x': INT})


def _cond(op, left, right):
    return ast.Binary(op, left, right)


class TestConstComparisons:
    @pytest.mark.parametrize('op,true_value,false_value', [
        ('<', 4, 5),
        ('<=', 5, 6),
        ('>', 6, 5),
        ('>=', 5, 4),
        ('==', 5, 6),
        ('!=', 6, 5),
    ])
    def test_boundary_values(self, op, true_value, false_value):
        fix = analyze_condition(_cond(op, ast.Var('x'), ast.Num(5)),
                                INT_VARS)
        assert fix.kind == 'const'
        assert fix.var_name == 'x'
        assert fix.const_value + fix.delta(True) == true_value
        assert fix.const_value + fix.delta(False) == false_value

    def test_mirrored_operands(self):
        # 5 < x  is  x > 5
        fix = analyze_condition(_cond('<', ast.Num(5), ast.Var('x')),
                                INT_VARS)
        assert fix.var_name == 'x'
        assert fix.op == '>'
        assert fix.const_value + fix.delta(True) == 6

    def test_bare_int_variable(self):
        fix = analyze_condition(ast.Var('x'), INT_VARS)
        assert fix.kind == 'const'
        assert fix.const_value + fix.delta(True) == 1
        assert fix.const_value + fix.delta(False) == 0

    def test_negated_variable(self):
        fix = analyze_condition(ast.Unary('!', ast.Var('x')), INT_VARS)
        # !x true means x == 0
        assert fix.const_value + fix.delta(True) == 0
        assert fix.const_value + fix.delta(False) == 1

    def test_negated_comparison(self):
        fix = analyze_condition(
            ast.Unary('!', _cond('<', ast.Var('x'), ast.Num(5))),
            INT_VARS)
        # !(x < 5) true means x >= 5
        assert fix.op == '>='
        assert fix.const_value + fix.delta(True) == 5


class TestVarVsVar:
    def test_two_variables(self):
        fix = analyze_condition(_cond('<', ast.Var('x'), ast.Var('y')),
                                INT_VARS)
        assert fix.kind == 'var'
        assert fix.var_name == 'x'
        assert fix.other_name == 'y'
        assert fix.delta(True) == -1
        assert fix.delta(False) == 0

    def test_pointer_vs_var_rejected(self):
        fix = analyze_condition(_cond('<', ast.Var('p'), ast.Var('x')),
                                PTR_VARS)
        assert fix is None


class TestPointerTests:
    def test_null_equality(self):
        fix = analyze_condition(_cond('==', ast.Var('p'), ast.Num(0)),
                                PTR_VARS)
        assert fix.kind == 'pointer'
        assert fix.pointer_is_null(True)
        assert not fix.pointer_is_null(False)

    def test_null_inequality(self):
        fix = analyze_condition(_cond('!=', ast.Var('p'), ast.Num(0)),
                                PTR_VARS)
        assert not fix.pointer_is_null(True)
        assert fix.pointer_is_null(False)

    def test_bare_pointer(self):
        fix = analyze_condition(ast.Var('p'), PTR_VARS)
        assert fix.kind == 'pointer'
        assert not fix.pointer_is_null(True)

    def test_negated_pointer(self):
        fix = analyze_condition(ast.Unary('!', ast.Var('p')), PTR_VARS)
        # !p true means p == null
        assert fix.pointer_is_null(True)

    def test_pointee_type_carried(self):
        node = StructType('node')
        node.add_field('v', INT)
        lookup = _lookup({'p': PtrType(node)})
        fix = analyze_condition(ast.Var('p'), lookup)
        assert fix.pointee_type is node

    def test_pointer_vs_nonzero_constant_rejected(self):
        fix = analyze_condition(_cond('==', ast.Var('p'), ast.Num(4)),
                                PTR_VARS)
        assert fix is None


class TestUnfixable:
    def test_unknown_variable(self):
        assert analyze_condition(ast.Var('ghost'), INT_VARS) is None

    def test_call_result(self):
        cond = _cond('<', ast.Call('f', []), ast.Num(5))
        assert analyze_condition(cond, INT_VARS) is None

    def test_array_element(self):
        cond = _cond('==', ast.Index(ast.Var('x'), ast.Num(0)),
                     ast.Num(5))
        assert analyze_condition(cond, INT_VARS) is None

    def test_compound_expression(self):
        cond = _cond('<', ast.Binary('+', ast.Var('x'), ast.Num(1)),
                     ast.Num(5))
        assert analyze_condition(cond, INT_VARS) is None

    def test_logical_and_not_directly_fixable(self):
        cond = ast.Binary('&&', ast.Var('x'), ast.Var('y'))
        assert analyze_condition(cond, INT_VARS) is None
