"""Chaos suite: fault injection, degradation, watchdog, recovery.

The core invariant under test (ISSUE: robustness): with any *single*
fault from the default plan matrix injected, a batch either completes
with results byte-identical to a fault-free run, or fails with one
structured, spec-attributed error — never a hang, a silent wrong
result, or an unhandled internal traceback.

``REPRO_CHAOS_SEED`` (CI matrix) varies the injection points.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.apps.registry import get_app
from repro.core.config import PathExpanderConfig
from repro.core.errors import (EngineError, InjectedFault,
                               JobExecutionError, WatchdogTimeout,
                               classify)
from repro.core.runner import make_detector, run_job, run_program
from repro.jobs import JobPool, JobSpec, ResultStore
from repro.jobs import pool as pool_module
from repro.resilience import (SITES, FaultInjector, FaultPlan,
                              FaultSpec, clear_plan, events,
                              install_plan)

SEED = int(os.environ.get('REPRO_CHAOS_SEED', '0'))

TINY_SRC = '''
int main() {
  int n = read_int();
  if (n > 2) { print_int(n); } else { print_int(0); }
  return 0;
}
'''

# Long enough that a generous max_instructions cap cannot finish
# within a tight wall-clock deadline (serial-timeout parity tests).
SLOW_SRC = '''
int main() {
  int i = 0;
  int acc = 0;
  while (i < 10000000) {
    acc = acc + i;
    i = i + 1;
  }
  print_int(acc);
  return 0;
}
'''

FAIL_MARKER = 13


def tiny_spec(n=5):
    return JobSpec.for_source(TINY_SRC, name='tiny', detector='none',
                              int_input=[n])


def slow_spec():
    return JobSpec.for_source(
        SLOW_SRC, name='slow', detector='none',
        config_overrides={'max_instructions': 500_000_000,
                          'watchdog_interval': 2_000})


def app_spec(**overrides):
    overrides.setdefault('detector', 'ccured')
    overrides.setdefault('config_overrides',
                         {'max_instructions': 25_000})
    return JobSpec.for_app('schedule', **overrides)


# Module-level runners so the process pool can pickle them.

def _marker(spec_dict):
    int_input = spec_dict.get('int_input') or []
    return int_input[0] if int_input else None


def _failing_runner(spec_dict):
    raise RuntimeError('persistent failure')


def _poison_runner(spec_dict):
    """Fails only the job whose first int input is FAIL_MARKER."""
    if _marker(spec_dict) == FAIL_MARKER:
        raise RuntimeError('poison job')
    return pool_module.execute_spec(spec_dict)


def _hang_runner(spec_dict):
    """Hangs (uninterruptibly for the pool) on the poison job."""
    if _marker(spec_dict) == FAIL_MARKER:
        time.sleep(30.0)
    return pool_module.execute_spec(spec_dict)


@pytest.fixture(autouse=True)
def _clean_slate():
    clear_plan()
    events.clear()
    yield
    clear_plan()
    events.clear()


def _app_run(backend, **overrides):
    app = get_app('schedule')
    text, ints = app.default_input()
    config = app.make_config('standard', backend=backend,
                             max_instructions=25_000, **overrides)
    return run_program(get_app('schedule').compile(),
                       detector=make_detector('ccured'),
                       config=config, text_input=text, int_input=ints)


# =====================================================================
# fault-plan machinery


class TestFaultPlan:
    def test_default_matrix_covers_every_site(self):
        plans = FaultPlan.default_matrix(SEED)
        assert sorted(site for plan in plans
                      for site in plan.specs) == sorted(SITES)

    def test_matrix_is_deterministic(self):
        first = [plan.to_json() for plan in
                 FaultPlan.default_matrix(SEED)]
        second = [plan.to_json() for plan in
                  FaultPlan.default_matrix(SEED)]
        assert first == second

    def test_json_round_trip(self):
        plan = FaultPlan.single('pool.worker_hang', seed=7,
                                fires=(1, 3), mode='exit',
                                duration=0.5, match_key='abc')
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.to_json() == plan.to_json()
        spec = clone.for_site('pool.worker_hang')
        assert spec.fires == (1, 3)
        assert spec.mode == 'exit'
        assert spec.match_key == 'abc'

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match='unknown fault site'):
            FaultSpec('warp.core')

    def test_fires_and_max_fires(self):
        injector = FaultInjector(FaultPlan.single(
            'fastinterp.block', fires=(1, 3), max_fires=1))
        hits = [injector.poll('fastinterp.block') is not None
                for _ in range(5)]
        assert hits == [False, True, False, False, False]

    def test_rate_is_seeded_and_reproducible(self):
        plan = FaultPlan.single('fastinterp.block', seed=SEED,
                                fires=None, rate=0.3, max_fires=None)
        def draw():
            injector = FaultInjector(FaultPlan.from_json(plan.to_json()))
            return [injector.poll('fastinterp.block') is not None
                    for _ in range(50)]

        pattern = [draw(), draw()]
        assert pattern[0] == pattern[1]
        assert any(pattern[0])

    def test_match_key_gates_without_counting(self):
        injector = FaultInjector(FaultPlan.single(
            'pool.worker_crash', fires=(0,), match_key='right'))
        assert injector.poll('pool.worker_crash', key='wrong') is None
        # The miss above must not have consumed invocation index 0.
        assert injector.poll('pool.worker_crash',
                             key='right') is not None

    def test_injected_fault_classifies(self):
        injector = install_plan(FaultPlan.single('detector.hook'))
        with pytest.raises(InjectedFault) as info:
            injector.check('detector.hook')
        assert classify(info.value) == 'injected_fault'
        assert events.counts().get('fault_injected') == 1


# =====================================================================
# graceful degradation (fast -> reference)


class TestDegradation:
    def test_block_fault_degrades_byte_identically(self):
        expected = _app_run('fast').to_dict()
        events.clear()
        install_plan(FaultPlan.single('fastinterp.block', seed=SEED,
                                      fires=(SEED % 3,)))
        degraded = _app_run('fast')
        assert degraded.to_dict() == expected
        assert events.counts().get('degraded_to_reference') == 1

    def test_detector_fault_degrades_byte_identically(self):
        expected = _app_run('fast').to_dict()
        events.clear()
        install_plan(FaultPlan.single('detector.hook', seed=SEED,
                                      fires=(SEED % 3,)))
        degraded = _app_run('fast')
        assert degraded.to_dict() == expected
        assert events.counts().get('degraded_to_reference') == 1

    def test_checkpoint_corruption_degrades_byte_identically(self):
        expected = _app_run('fast').to_dict()
        events.clear()
        install_plan(FaultPlan.single('checkpoint.corrupt', seed=SEED,
                                      fires=(SEED % 3,)))
        degraded = _app_run('fast')
        assert degraded.to_dict() == expected
        assert events.counts().get('degraded_to_reference') == 1

    def test_reference_backend_failure_is_structured(self):
        install_plan(FaultPlan.single('detector.hook'))
        with pytest.raises(EngineError) as info:
            _app_run('reference')
        assert info.value.kind == 'engine_internal'

    def test_watchdog_timeout_is_not_swallowed(self):
        """Degradation must not re-execute a job that timed out."""
        from repro.minic.codegen import compile_minic
        from repro.resilience.watchdog import deadline
        program = compile_minic(SLOW_SRC, name='slow')
        config = PathExpanderConfig(max_instructions=500_000_000,
                                    watchdog_interval=2_000,
                                    backend='fast')
        with pytest.raises(WatchdogTimeout):
            with deadline(0.05):
                run_program(program, detector=None, config=config)


# =====================================================================
# watchdog budgets


class TestWatchdog:
    def _slow_program(self):
        from repro.minic.codegen import compile_minic
        return compile_minic(SLOW_SRC, name='slow')

    def test_cycle_budget_truncates(self):
        config = PathExpanderConfig(max_instructions=500_000_000,
                                    max_cycles=50_000,
                                    watchdog_interval=1_000)
        result = run_program(self._slow_program(), config=config)
        assert result.truncated
        assert result.truncation_reason == 'cycles'
        assert result.exit_code is None
        assert events.counts().get('watchdog_truncated') == 1

    def test_wall_clock_budget_truncates(self):
        config = PathExpanderConfig(max_instructions=500_000_000,
                                    max_wall_seconds=0.02,
                                    watchdog_interval=1_000)
        result = run_program(self._slow_program(), config=config)
        assert result.truncated
        assert result.truncation_reason == 'wall_clock'

    def test_instruction_cap_reason(self):
        config = PathExpanderConfig(max_instructions=5_000,
                                    max_cycles=10 ** 12)
        result = run_program(self._slow_program(), config=config)
        assert result.truncated
        assert result.truncation_reason == 'instructions'

    def test_truncation_survives_round_trip(self):
        from repro.core.result import RunResult
        config = PathExpanderConfig(max_instructions=500_000_000,
                                    max_cycles=50_000,
                                    watchdog_interval=1_000)
        result = run_program(self._slow_program(), config=config)
        data = json.loads(json.dumps(result.to_dict()))
        restored = RunResult.from_dict(data)
        assert restored.truncated
        assert restored.truncation_reason == 'cycles'
        assert restored.to_dict() == data

    def test_unarmed_run_matches_armed_run_that_finishes(self):
        spec = tiny_spec()
        plain = run_job(spec).to_dict()
        armed = JobPool(jobs=1, timeout=30.0).run_one(spec).to_dict()
        assert armed == plain


# =====================================================================
# job pool robustness


class TestSerialTimeoutParity:
    def test_serial_timeout_matches_pooled_accounting(self):
        pool = JobPool(jobs=1, timeout=0.1, retries=1, backoff=0.001)
        with pytest.raises(JobExecutionError, match='timed out'):
            pool.run([slow_spec()])
        # Identical counters to the pooled timeout contract
        # (tests/test_jobs.py::test_timeout_accounting).
        assert pool.metrics.timeouts == 2
        assert pool.metrics.retries == 1
        assert pool.metrics.jobs_run == 0

    def test_serial_timeout_quarantines_when_asked(self):
        pool = JobPool(jobs=1, timeout=0.1, retries=0, backoff=0.001,
                       on_error='quarantine')
        results = pool.run([slow_spec(), tiny_spec()])
        assert results[0] is None
        assert results[1] is not None
        assert results[1].output.strip() == '5'
        assert len(pool.quarantined) == 1
        spec, error = pool.quarantined[0]
        assert spec.key == slow_spec().key
        assert error.key == spec.key
        assert pool.metrics.quarantined == 1


class TestStructuredErrors:
    def test_job_error_attribution(self):
        spec = tiny_spec()
        pool = JobPool(jobs=1, runner=_failing_runner, retries=1,
                       backoff=0.001)
        with pytest.raises(JobExecutionError) as info:
            pool.run_one(spec)
        error = info.value
        assert error.key == spec.key
        assert error.spec == spec
        assert error.attempts == 2
        assert 'persistent failure' in error.reason
        assert classify(error) == 'job_failed'
        assert error.to_dict()['kind'] == 'job_failed'

    def test_failure_events_carry_error_kind(self):
        pool = JobPool(jobs=1, runner=_failing_runner, retries=0,
                       backoff=0.001, on_error='quarantine')
        pool.run([tiny_spec()])
        failed = [entry for entry in pool.metrics.events
                  if entry['event'] == 'job_failed']
        assert failed
        assert failed[0]['error_kind'] == 'unclassified'

    def test_attempt_carry_preserved_through_recovery(self):
        """Serial fallback must not grant a fresh retry budget."""
        spec = tiny_spec()
        pool = JobPool(jobs=1, runner=_failing_runner, retries=2,
                       backoff=0.001)
        with pytest.raises(JobExecutionError) as info:
            # Two attempts already burned inside a (simulated) broken
            # pool; the serial path gets only the one remaining.
            pool._run_serial([(0, spec)], attempt_carry={0: 2})
        assert info.value.attempts == 3
        assert pool.metrics.failures == 1


class TestQuarantine:
    def test_poison_job_is_quarantined_batch_completes(self):
        specs = [tiny_spec(5), tiny_spec(FAIL_MARKER), tiny_spec(7)]
        pool = JobPool(jobs=1, runner=_poison_runner, retries=1,
                       backoff=0.001, on_error='quarantine')
        results = pool.run(specs)
        assert results[0].output.strip() == '5'
        assert results[1] is None
        assert results[2].output.strip() == '7'
        assert pool.metrics.quarantined == 1
        assert len(pool.quarantined) == 1
        assert pool.quarantined[0][0].key == specs[1].key

    def test_bad_on_error_rejected(self):
        with pytest.raises(ValueError, match='on_error'):
            JobPool(on_error='explode')


class TestHungWorkerRecovery:
    def test_hung_worker_killed_batch_completes(self):
        specs = [tiny_spec(5), tiny_spec(FAIL_MARKER)]
        pool = JobPool(jobs=2, runner=_hang_runner, timeout=2.0,
                       retries=0, backoff=0.001,
                       on_error='quarantine', heartbeat_interval=0.2)
        start = time.monotonic()
        results = pool.run(specs)
        elapsed = time.monotonic() - start
        assert elapsed < 15.0          # never waits out the 30s hang
        assert results[0] is not None
        assert results[0].output.strip() == '5'
        assert results[1] is None
        assert pool.metrics.timeouts >= 1
        assert pool.metrics.hung_worker_kills >= 1
        assert len(pool.quarantined) == 1
        heartbeats = [entry for entry in pool.metrics.events
                      if entry['event'] == 'heartbeat']
        assert heartbeats


class TestWorkerCrashInjection:
    def test_injected_worker_crash_recovers_serially(self):
        spec = tiny_spec()
        expected = run_job(spec).to_dict()
        install_plan(FaultPlan.single('pool.worker_crash', seed=SEED,
                                      fires=(0,)))
        pool = JobPool(jobs=1, retries=2, backoff=0.001)
        result = pool.run_one(spec)
        assert result.to_dict() == expected
        assert pool.metrics.failures == 1
        failed = [entry for entry in pool.metrics.events
                  if entry['event'] == 'job_failed']
        assert failed[0]['error_kind'] == 'worker_crash'

    def test_injected_hard_exit_falls_back_to_serial(self):
        spec = tiny_spec()
        expected = run_job(spec).to_dict()
        clear_plan()
        install_plan(FaultPlan.single('pool.worker_crash', seed=SEED,
                                      fires=(0,), mode='exit',
                                      match_key=spec.key),
                     propagate=True)
        pool = JobPool(jobs=2, retries=2, backoff=0.001)
        results = pool.run([spec, tiny_spec(7)])
        assert results[0].to_dict() == expected
        assert results[1].output.strip() == '7'
        assert pool.metrics.serial_fallbacks == 1


# =====================================================================
# result-store integrity


class TestStoreIntegrity:
    def _seed_store(self, root, spec):
        store = ResultStore(root)
        result = run_job(spec).to_dict()
        path = store.put(spec.key, spec.to_dict(), result, 0.0)
        return store, result, path

    def test_silent_corruption_caught_by_checksum(self, tmp_path):
        spec = tiny_spec()
        store, _result, path = self._seed_store(tmp_path, spec)
        with open(path, encoding='utf-8') as handle:
            record = json.load(handle)
        record['result']['cycles'] += 1    # checksum left stale
        with open(path, 'w', encoding='utf-8') as handle:
            json.dump(record, handle)
        assert store.get(spec.key) is None
        assert store.corrupt_evictions == 1

    def test_version1_records_still_readable(self, tmp_path):
        spec = tiny_spec()
        store, result, path = self._seed_store(tmp_path, spec)
        with open(path, encoding='utf-8') as handle:
            record = json.load(handle)
        del record['checksum']
        record['record_version'] = 1
        with open(path, 'w', encoding='utf-8') as handle:
            json.dump(record, handle)
        assert store.get(spec.key)['result'] == result

    def test_fsck_reports_and_repairs(self, tmp_path):
        good = tiny_spec(5)
        bad = tiny_spec(7)
        store, _result, _path = self._seed_store(tmp_path, good)
        bad_path = store.put(bad.key, bad.to_dict(),
                             run_job(bad).to_dict(), 0.0)
        with open(bad_path, encoding='utf-8') as handle:
            record = json.load(handle)
        record['result']['cycles'] += 1
        with open(bad_path, 'w', encoding='utf-8') as handle:
            json.dump(record, handle)
        report = store.fsck()
        assert report['checked'] == 2
        assert report['corrupt'] == [(bad.key, 'checksum mismatch')]
        assert report['repaired'] == []
        report = store.fsck(repair=True)
        assert report['repaired'] == [bad.key]
        assert store.fsck()['corrupt'] == []
        assert store.get(good.key) is not None

    def test_stale_tmp_files_collected_on_open(self, tmp_path):
        spec = tiny_spec()
        store, _result, path = self._seed_store(tmp_path, spec)
        stale = os.path.join(os.path.dirname(path), 'orphan123.tmp')
        with open(stale, 'w', encoding='utf-8') as handle:
            handle.write('half a record')
        reopened = ResultStore(tmp_path)
        assert not os.path.exists(stale)
        assert reopened.get(spec.key) is not None
        assert list(reopened.keys()) == [spec.key]

    def test_cache_fsck_cli(self, tmp_path, capsys):
        from repro.cli import main
        spec = tiny_spec()
        store, _result, path = self._seed_store(tmp_path, spec)
        assert main(['cache', 'fsck', str(tmp_path)]) == 0
        with open(path, 'w', encoding='utf-8') as handle:
            handle.write('{"key": garbage')
        assert main(['cache', 'fsck', str(tmp_path)]) == 1
        capsys.readouterr()      # drain text output before the JSON run
        assert main(['cache', 'fsck', str(tmp_path),
                     '--repair', '--json']) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload['repaired'] == [spec.key]
        assert main(['cache', 'fsck', str(tmp_path)]) == 0

    def test_unrehydratable_record_evicted_by_pool(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path)
        first = JobPool(jobs=1, store=store)
        expected = first.run_one(spec).to_dict()
        # Shape-valid record (passes the store's checks) whose result
        # payload cannot rehydrate: drop a required field and reseal
        # the checksum so only from_dict can notice.
        path = store._path(spec.key)
        with open(path, encoding='utf-8') as handle:
            record = json.load(handle)
        del record['result']['int_output']
        from repro.jobs.store import _record_checksum
        record['checksum'] = _record_checksum(record)
        with open(path, 'w', encoding='utf-8') as handle:
            json.dump(record, handle)
        recover = JobPool(jobs=1, store=store)
        result = recover.run_one(spec)
        assert result.to_dict() == expected
        assert recover.metrics.cache_hits == 0
        assert recover.metrics.jobs_run == 1
        assert recover.metrics.corrupt_evictions == 1


# =====================================================================
# the headline invariant: single-fault chaos matrix


def _plan_id(plan):
    return ','.join(sorted(plan.specs))


@pytest.mark.parametrize('plan', FaultPlan.default_matrix(SEED),
                         ids=_plan_id)
def test_single_fault_leaves_batch_correct(plan, tmp_path):
    """Any single default-matrix fault: the batch completes and its
    results (including a warm-cache replay) are byte-identical to a
    fault-free run."""
    specs = [app_spec(), tiny_spec()]
    expected = [run_job(spec).to_dict() for spec in specs]

    install_plan(plan, propagate=True)
    store = ResultStore(tmp_path / 'chaos')
    pool = JobPool(jobs=1, store=store, retries=2, backoff=0.001,
                   timeout=60.0)
    results = pool.run(specs)
    assert [r.to_dict() for r in results] == expected

    # Warm replay over the same (possibly corrupted) store: corrupt
    # records are evicted and rerun, never served.
    replay = JobPool(jobs=1, store=store, retries=2, backoff=0.001,
                     timeout=60.0)
    replayed = replay.run(specs)
    assert [r.to_dict() for r in replayed] == expected


# =====================================================================
# event log


class TestEvents:
    def test_record_recent_counts_clear(self):
        events.record('degraded_to_reference', program='x')
        events.record('fault_injected', site='detector.hook')
        events.record('fault_injected', site='fastinterp.block')
        assert events.counts() == {'degraded_to_reference': 1,
                                   'fault_injected': 2}
        recent = events.recent('fault_injected')
        assert len(recent) == 2
        assert recent[0]['site'] == 'detector.hook'
        assert all('ts' in entry and 'seq' in entry
                   for entry in recent)
        events.clear()
        assert events.counts() == {}
