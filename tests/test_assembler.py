"""Tests for the textual assembler."""

import pytest

from repro.core.config import Mode, PathExpanderConfig
from repro.core.runner import run_program
from repro.isa.assembler import AsmError, assemble


def run_asm(source, **kwargs):
    program = assemble(source)
    return run_program(program,
                       config=PathExpanderConfig(mode=Mode.BASELINE),
                       **kwargs)


class TestAssembler:
    def test_arithmetic_and_print(self):
        result = run_asm('''
            func main:
                li a1, 6
                li r8, 7
                mul a1, a1, r8
                syscall print_int
                halt
        ''')
        assert result.output.strip() == '42'

    def test_labels_and_branches(self):
        result = run_asm('''
            func main:
                li r8, 5        ; countdown
                li r9, 0
            loop:
                add r9, r9, r8
                addi r8, r8, -1
                sgt r10, r8, zero
                br r10, loop
                mov a1, r9
                syscall print_int
                halt
        ''')
        assert result.output.strip() == '15'

    def test_globals_and_strings(self):
        result = run_asm('''
            .global counter 2
            .string msg "ok"
            func main:
                li r8, 9
                st r8, zero, counter
                ld r9, zero, counter
                mov a1, r9
                syscall print_int
                ld r10, zero, msg      # 'o'
                mov a1, r10
                syscall putc
                halt
        ''')
        assert result.output.strip().startswith('9')
        assert result.output.strip().endswith('o')

    def test_functions_and_calls(self):
        result = run_asm('''
            func main:
                li a1, 20
                call double
                mov a1, rv
                syscall print_int
                halt
            func double:
                add rv, a1, a1
                ret
        ''')
        assert result.output.strip() == '40'

    def test_predicated_instructions(self):
        program = assemble('''
            func main:
                p.li fix, 5
                li r8, 1
                halt
        ''')
        assert program.code[program.entry].pred

    def test_char_literals_and_hex(self):
        result = run_asm('''
            func main:
                li a1, 'A'
                syscall putc
                li a1, 0x42
                syscall putc
                halt
        ''')
        assert result.output == 'AB'

    def test_assert_instruction(self):
        result = run_asm('''
            func main:
                li r8, 0
                assert r8, "NEVER_ZERO"
                halt
        ''', detector='assertions')
        assert [r.assert_id for r in result.reports] == ['NEVER_ZERO']

    def test_comments_both_styles(self):
        result = run_asm('''
            ; full-line comment
            # another
            func main:
                li a1, 1   ; trailing
                syscall print_int   # trailing too
                halt
        ''')
        assert result.output.strip() == '1'

    def test_pathexpander_works_on_assembly(self):
        program = assemble('''
            .global flag 1
            func main:
                syscall read_int
                mov r8, rv
                sgt r9, r8, zero
                br r9, big
                li r10, 1
                st r10, zero, flag
            big:
                halt
        ''')
        result = run_program(program,
                             config=PathExpanderConfig(
                                 mode=Mode.STANDARD),
                             int_input=[5])
        assert result.nt_spawned >= 1
        assert result.total_coverage == 1.0


class TestAssemblerErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AsmError, match='unknown opcode'):
            assemble('func main:\n    frobnicate r1\n    halt')

    def test_bad_register(self):
        with pytest.raises(AsmError, match='bad register'):
            assemble('func main:\n    li r99, 1\n    halt')

    def test_unknown_syscall(self):
        with pytest.raises(AsmError, match='unknown syscall'):
            assemble('func main:\n    syscall warp\n    halt')

    def test_undefined_label(self):
        with pytest.raises((AsmError, ValueError)):
            assemble('func main:\n    jmp nowhere\n    halt')

    def test_duplicate_label(self):
        with pytest.raises(AsmError, match='bound twice'):
            assemble('func main:\nx:\nx:\n    halt')

    def test_unknown_directive(self):
        with pytest.raises(AsmError, match='unknown directive'):
            assemble('.section data\nfunc main:\n    halt')
