"""Lossless ``RunResult`` serialization (``to_dict``/``from_dict``).

The job subsystem ships results between worker processes and the
on-disk cache as JSON, so the round trip must preserve every field —
coverage edge sets, NT-path termination counts, bug reports and cycle
counts — exactly.
"""

import json

import pytest

from repro.apps.registry import get_app
from repro.core.config import Mode
from repro.core.result import RunResult
from repro.core.runner import make_detector, run_program

# Two apps, two modes, two detectors; print_tokens2 v10 carries a
# memory bug so the report list is non-empty.
CASES = (
    ('schedule', 0, Mode.STANDARD, 'ccured'),
    ('print_tokens2', 10, Mode.CMP, 'iwatcher'),
)


def _run_case(app_name, version, mode, detector):
    app = get_app(app_name)
    program = app.compile(version)
    text, ints = app.default_input()
    config = app.make_config(mode=mode, collect_nt_details=True)
    return run_program(program, detector=make_detector(detector),
                       config=config, text_input=text, int_input=ints)


@pytest.mark.parametrize('app_name,version,mode,detector', CASES)
def test_round_trip_is_lossless(app_name, version, mode, detector):
    result = _run_case(app_name, version, mode, detector)
    data = result.to_dict()
    restored = RunResult.from_dict(json.loads(json.dumps(data)))

    # re-serialization reproduces the original record byte for byte
    assert restored.to_dict() == data
    assert json.dumps(restored.to_dict(), sort_keys=True) == \
        json.dumps(data, sort_keys=True)

    # the fields the experiments consume survive with full fidelity
    assert restored.taken_edges == result.taken_edges
    assert restored.covered_edges == result.covered_edges
    assert restored.nt_terminations == result.nt_terminations
    assert restored.cycles == result.cycles
    assert restored.primary_cycles == result.primary_cycles
    assert restored.nt_spawned == result.nt_spawned
    assert [r.to_dict() for r in restored.reports] == \
        [r.to_dict() for r in result.reports]
    assert [r.to_dict() for r in restored.nt_details] == \
        [r.to_dict() for r in result.nt_details]
    assert restored.output == result.output
    assert restored.int_output == result.int_output


@pytest.mark.parametrize('app_name,version,mode,detector', CASES)
def test_restored_result_behaves_like_original(app_name, version, mode,
                                               detector):
    result = _run_case(app_name, version, mode, detector)
    restored = RunResult.from_dict(
        json.loads(json.dumps(result.to_dict())))
    assert restored.baseline_coverage == result.baseline_coverage
    assert restored.total_coverage == result.total_coverage
    assert restored.overhead_vs(result) == 0.0
    assert {r.site_key for r in restored.nt_reports} == \
        {r.site_key for r in result.nt_reports}
    assert {r.site_key for r in restored.taken_reports} == \
        {r.site_key for r in result.taken_reports}
    assert repr(restored) == repr(result)


def test_edge_lists_are_sorted_and_deterministic():
    result = _run_case(*CASES[0])
    data = result.to_dict()
    assert data['taken_edges'] == sorted(data['taken_edges'])
    assert data['covered_edges'] == sorted(data['covered_edges'])
    # serializing twice yields identical bytes (cache determinism)
    assert json.dumps(result.to_dict(), sort_keys=True) == \
        json.dumps(result.to_dict(), sort_keys=True)
