"""Tests for the paper's future-work extensions."""

from repro.apps.bugs import classify_reports
from repro.apps.registry import get_app
from repro.core.config import Mode, PathExpanderConfig
from repro.core.result import NTPathTermination
from repro.core.runner import make_detector, run_program
from repro.cpu.syscalls import IOContext
from repro.minic.codegen import compile_minic
from tests.conftest import run_minic

import pytest

IO_HEAVY_SRC = '''
int main() {
  int mode = read_int();
  for (int i = 0; i < 30; i = i + 1) {
    if (i % 3 == mode) { putc('a' + (i % 26)); }
    else { putc('.'); }
  }
  if (mode > 500) {
    print_int(12345);
  }
  return 0;
}
'''


class TestOSSandbox:
    def test_nt_paths_run_through_syscalls(self):
        plain = run_minic(IO_HEAVY_SRC, mode=Mode.STANDARD,
                          int_input=[1])
        sandboxed = run_minic(IO_HEAVY_SRC, mode=Mode.STANDARD,
                              int_input=[1], sandbox_unsafe_events=True)
        assert plain.nt_terminations.get(NTPathTermination.UNSAFE, 0) > 0
        assert sandboxed.nt_terminations.get(
            NTPathTermination.UNSAFE, 0) == 0

    def test_speculative_output_discarded(self):
        plain = run_minic(IO_HEAVY_SRC, mode=Mode.BASELINE,
                          int_input=[1])
        sandboxed = run_minic(IO_HEAVY_SRC, mode=Mode.STANDARD,
                              int_input=[1], sandbox_unsafe_events=True)
        # NT-paths printed speculatively (incl. the mode>500 branch),
        # but squash removes every speculative character
        assert sandboxed.output == plain.output
        assert '12345' not in sandboxed.output

    def test_speculative_input_cursor_restored(self):
        src = '''
            int main() {
              int a = read_int();
              if (a > 900) {
                int b = read_int();    /* speculative consume */
                print_int(b);
              }
              int c = read_int();
              print_int(c);
              return 0;
            }'''
        result = run_minic(src, mode=Mode.STANDARD, int_input=[1, 42],
                           sandbox_unsafe_events=True)
        # the NT-path consumed 42 speculatively; the taken path must
        # still see it
        assert result.output.strip() == '42'

    def test_io_context_snapshot_round_trip(self):
        io = IOContext(text_input='abc', int_input=[1, 2, 3])
        io.getc()
        io.read_int()
        io.putc(ord('x'))
        snap = io.snapshot()
        io.getc()
        io.read_int()
        io.print_int(99)
        io.restore(snap)
        assert io.getc() == ord('b')
        assert io.read_int() == 2
        assert io.output_text == 'x'
        assert io.int_output == []

    def test_detection_reach_extended(self):
        # a bug *behind* an unsafe event is only reachable with the
        # OS sandbox
        src = '''
            int main() {
              int n = read_int();
              int *p = malloc(4);
              if (n > 900) {
                print_int(n);          /* unsafe event first... */
                p[5] = 1;              /* ...then the bug */
              }
              free(p);
              return 0;
            }'''
        plain = run_minic(src, detector='ccured', mode=Mode.STANDARD,
                          int_input=[1])
        sandboxed = run_minic(src, detector='ccured', mode=Mode.STANDARD,
                              int_input=[1], sandbox_unsafe_events=True)
        assert plain.reports == []
        assert any(r.kind == 'buffer_overrun' for r in sandboxed.reports)


class TestRandomSelection:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            PathExpanderConfig(selection_random_rate=1.5)

    def test_more_paths_with_randomness(self):
        src = '''
            int main() {
              int total = 0;
              for (int i = 0; i < 400; i = i + 1) {
                if (i % 2 == 0) { total = total + 1; }
              }
              print_int(total);
              return 0;
            }'''
        plain = run_minic(src, mode=Mode.STANDARD)
        randomized = run_minic(src, mode=Mode.STANDARD,
                               selection_random_rate=0.2)
        assert randomized.nt_spawned > plain.nt_spawned

    def test_recovers_exercised_edge_bug(self):
        app = get_app('schedule2')
        program = app.compile(5)
        bugs = app.bugs(5)
        text, ints = app.default_input()
        plain = run_program(program, detector=make_detector('assertions'),
                            config=app.make_config(),
                            text_input=text, int_input=ints)
        randomized = run_program(
            program, detector=make_detector('assertions'),
            config=app.make_config(selection_random_rate=0.5),
            text_input=text, int_input=ints)
        found_plain, _ = classify_reports(plain.reports, bugs)
        found_random, _ = classify_reports(randomized.reports, bugs)
        assert 'sch2_v5' not in found_plain
        assert 'sch2_v5' in found_random

    def test_sandboxing_still_holds(self):
        program = compile_minic(IO_HEAVY_SRC, name='rand_sandbox')
        base = run_program(program,
                           config=PathExpanderConfig(mode=Mode.BASELINE),
                           int_input=[2])
        randomized = run_program(
            program,
            config=PathExpanderConfig(selection_random_rate=0.5,
                                      sandbox_unsafe_events=True),
            int_input=[2])
        assert randomized.output == base.output
