"""Tests for the experiment harness, reporting, tracing and CLI."""

import pytest

from repro.harness import experiments
from repro.harness.reporting import ExperimentResult, percent
from repro.harness.trace import TracedRun
from repro.minic.codegen import compile_minic
from repro.workloads.inputs import CUMULATIVE_APP_NAMES, input_suite


class TestReporting:
    def _result(self):
        return ExperimentResult('t1', 'demo', ['a', 'bee'],
                                [[1, 'x'], [22, 'yy']],
                                notes=['a note'])

    def test_format_contains_everything(self):
        text = self._result().format()
        assert 't1: demo' in text
        assert 'bee' in text
        assert '22' in text
        assert '# a note' in text

    def test_columns_aligned(self):
        lines = self._result().format().splitlines()
        header, rule, first, second = lines[1:5]
        assert len(rule) == len(header.rstrip()) or \
            len(rule) >= len('a  bee') - 1
        assert first.index('x') == second.index('yy')

    def test_row_dict(self):
        rows = self._result().row_dict()
        assert rows[1] == [1, 'x']

    def test_percent_formatting(self):
        assert percent(0.125) == '12.5%'
        assert percent(1.0) == '100.0%'

    def test_float_cells_two_decimals(self):
        result = ExperimentResult('x', 'y', ['v'], [[1.23456]])
        assert '1.23' in result.format()


class TestInputSuites:
    def test_suite_size_and_determinism(self):
        for name in CUMULATIVE_APP_NAMES:
            suite_a = input_suite(name, count=5)
            suite_b = input_suite(name, count=5)
            assert len(suite_a) == 5
            assert suite_a == suite_b

    def test_first_input_is_default(self):
        from repro.apps.registry import get_app
        suite = input_suite('schedule', count=3)
        assert suite[0] == get_app('schedule').default_input()

    def test_inputs_vary(self):
        suite = input_suite('bc_calc', count=10)
        texts = {text for text, _ints in suite}
        assert len(texts) >= 8


class TestExperimentDrivers:
    """Smoke tests on narrow slices (the full runs live in
    benchmarks/)."""

    def test_fig3_single_app(self):
        result, details = experiments.run_fig3(apps=('gzip_app',))
        assert len(result.rows) == 1
        assert 'gzip_app' in details
        assert details['gzip_app'], 'must collect NT records'

    def test_fig7_single_app(self):
        result = experiments.run_fig7(apps=('schedule',))
        row = result.rows[0]
        assert row[0] == 'schedule'

    def test_fig8_small(self):
        result = experiments.run_fig8(apps=('schedule2',), runs=5)
        improvement = float(result.rows[0][4].rstrip('%'))
        assert improvement > 0

    def test_fig9_single_app(self):
        result = experiments.run_fig9(apps=('schedule2',))
        row = result.rows[0]
        cmp_overhead = float(row[3].rstrip('%'))
        standard = float(row[2].rstrip('%'))
        assert cmp_overhead <= standard

    def test_table6_single_app(self):
        result = experiments.run_table6(apps=('schedule2',))
        orders = float(result.rows[0][4])
        assert orders >= 1.5

    def test_ext_random_rate_parameter(self):
        result = experiments.run_ext_random_selection(rate=0.4)
        assert '0.40' in result.title


class TestTrace:
    def test_trace_records_spawns_and_reports(self):
        program = compile_minic('''
            int main() {
              int n = read_int();
              int *p = malloc(2);
              if (n > 700) { p[3] = 1; }
              free(p);
              return 0;
            }''', name='traced')
        from repro.core.runner import make_detector
        traced = TracedRun(program, detector=make_detector('ccured'),
                           int_input=[5])
        result = traced.run()
        assert result.nt_spawned >= 1
        kinds = {event.kind for event in traced.events}
        assert kinds == {'nt-path', 'report'}
        text = traced.format(limit=3)
        assert 'trace of traced' in text
        assert 'NT-paths' in text

    def test_trace_limit(self):
        program = compile_minic('''
            int main() {
              for (int i = 0; i < 40; i = i + 1) {
                if (i == 99) { print_int(i); }
              }
              return 0;
            }''', name='traced2')
        traced = TracedRun(program)
        traced.run()
        text = traced.format(limit=2)
        assert 'more events' in text


class TestCLI:
    def _run_cli(self, argv, capsys):
        from repro.cli import main
        code = main(argv)
        captured = capsys.readouterr()
        return code, captured.out

    def test_apps_listing(self, capsys):
        code, out = self._run_cli(['apps'], capsys)
        assert code == 0
        assert 'print_tokens2' in out
        assert 'bc_calc' in out

    def test_bugs_command(self, capsys):
        code, out = self._run_cli(['bugs', 'man_fmt'], capsys)
        assert code == 0
        assert 'man_section' in out
        assert "['man_section']" in out

    def test_experiment_command(self, capsys):
        code, out = self._run_cli(['experiment', 'table2'], capsys)
        assert code == 0
        assert 'spawn overhead' in out

    def test_run_and_disasm(self, capsys, tmp_path):
        source_file = tmp_path / 'demo.mc'
        source_file.write_text('''
            int main() {
              int n = read_int();
              int *p = malloc(2);
              if (n > 600) { p[4] = 1; }
              free(p);
              print_int(n);
              return 0;
            }''')
        code, out = self._run_cli(
            ['run', str(source_file), '--ints', '3'], capsys)
        assert code == 0
        assert 'REPORT' in out
        code, out = self._run_cli(
            ['run', str(source_file), '--ints', '3', '--trace'], capsys)
        assert code == 0
        assert 'nt-path' in out
        code, out = self._run_cli(
            ['disasm', str(source_file)], capsys)
        assert code == 0
        assert 'main:' in out
        assert 'malloc' in out
        code, out = self._run_cli(
            ['disasm', str(source_file), '--function', 'main'], capsys)
        assert code == 0
        assert '_start' not in out


class TestDisasm:
    def test_function_listing_unknown(self):
        from repro.isa.disasm import function_listing
        program = compile_minic('int main() { return 0; }')
        with pytest.raises(KeyError):
            function_listing(program, 'ghost')

    def test_predicated_marker(self):
        from repro.isa.disasm import disassemble
        program = compile_minic('''
            int main() {
              int x = read_int();
              if (x < 5) { print_int(x); }
              return 0;
            }''')
        listing = disassemble(program)
        assert '<pred>' in listing
        assert 'syscall read_int' in listing

    def test_every_instruction_formats(self):
        from repro.isa.disasm import format_instr
        from repro.isa.instructions import Instr
        samples = [
            Instr('li', 8, 5), Instr('add', 8, 9, 10),
            Instr('ld', 8, 29, -1), Instr('br', 8, 17),
            Instr('jmp', 3), Instr('ret'), Instr('halt'),
            Instr('assert', 8, 'ID'), Instr('syscall', 2),
            Instr('malloc', 8, 9), Instr('free', 8),
            Instr('push', 8), Instr('pop', 8), Instr('nop'),
        ]
        for instr in samples:
            text = format_instr(instr)
            assert instr.op.split('.')[0] in text or 'syscall' in text
