"""Tests for the detailed CMP engine (Fig. 6 segment/version protocol
with true core interleaving)."""

import pytest

from repro.apps.registry import get_app
from repro.core.cmp_detailed import (DetailedCmpEngine, _NTView,
                                     _Segment, _TakenView)
from repro.core.config import Mode, PathExpanderConfig
from repro.core.runner import make_detector, run_detailed_cmp, run_program
from repro.cpu.syscalls import IOContext
from repro.memory.main_memory import MainMemory
from repro.minic.codegen import compile_minic

SRC = '''
int sink[8];
int main() {
  int n = read_int();
  for (int i = 0; i < 40; i = i + 1) {
    if (i % 5 == n % 7) { sink[i & 7] = i; }
    else { sink[0] = sink[0] + 1; }
  }
  if (n > 500) { sink[9] = 1; }
  print_int(sink[0]);
  return 0;
}
'''


class TestVersionedViews:
    def _setup(self):
        mem = MainMemory(size=4096, globals_size=64)
        mem.write(1000, 1)
        segments = []
        taken = _TakenView(mem, segments)
        return mem, segments, taken

    def test_taken_writes_direct_without_segments(self):
        mem, _segments, taken = self._setup()
        taken.write(1000, 5)
        assert mem.cells[1000] == 5

    def test_taken_writes_buffer_in_newest_segment(self):
        mem, segments, taken = self._setup()
        segments.append(_Segment(1))
        taken.write(1000, 7)
        assert mem.cells[1000] == 1          # committed value untouched
        assert taken.read(1000) == 7         # but visible to the writer

    def test_nt_view_snapshot_isolation(self):
        mem, segments, taken = self._setup()
        segments.append(_Segment(1))
        taken.write(1000, 7)
        nt = _NTView(mem, tuple(segments))   # spawned now
        segments.append(_Segment(2))
        taken.write(1000, 9)                 # after the NT's spawn
        assert nt.read(1000) == 7            # snapshot value
        assert taken.read(1000) == 9

    def test_nt_writes_private(self):
        mem, segments, taken = self._setup()
        nt = _NTView(mem, ())
        nt.write(1000, 42)
        assert nt.read(1000) == 42
        assert taken.read(1000) == 1

    def test_monitor_area_writes_through(self):
        mem, _segments, _taken = self._setup()
        nt = _NTView(mem, ())
        addr = mem.monitor_base + 1
        nt.write(addr, 77)
        assert mem.cells[addr] == 77

    def test_views_check_bounds(self):
        from repro.cpu.exceptions import SimFault
        mem, _segments, taken = self._setup()
        nt = _NTView(mem, ())
        for view in (taken, nt):
            with pytest.raises(SimFault):
                view.read(2)
            with pytest.raises(SimFault):
                view.write(-5, 0)


class TestDetailedEngine:
    def _run(self, mode_engine='detailed', int_input=(3,), **overrides):
        program = compile_minic(SRC, name='detailed')
        config = PathExpanderConfig(mode=Mode.CMP, **overrides)
        if mode_engine == 'detailed':
            return run_detailed_cmp(program, detector='ccured',
                                    config=config,
                                    int_input=list(int_input))
        return run_program(program, detector='ccured',
                           config=config.replace(mode=mode_engine),
                           int_input=list(int_input))

    def test_output_matches_baseline(self):
        detailed = self._run()
        baseline = self._run(mode_engine=Mode.BASELINE)
        assert detailed.output == baseline.output
        assert not detailed.crashed

    def test_detections_match_standard(self):
        detailed = self._run()
        standard = self._run(mode_engine=Mode.STANDARD)
        assert {r.site_key for r in detailed.reports} == \
            {r.site_key for r in standard.reports}
        assert detailed.total_covered == standard.total_covered

    def test_overhead_far_below_standard(self):
        baseline = self._run(mode_engine=Mode.BASELINE)
        detailed = self._run()
        standard = self._run(mode_engine=Mode.STANDARD)
        assert detailed.overhead_vs(baseline) < \
            standard.overhead_vs(baseline) / 4

    def test_queueing_beyond_core_count(self):
        throttled = self._run(max_num_nt_paths=2)
        free = self._run(max_num_nt_paths=32)
        assert throttled.nt_spawned <= free.nt_spawned

    def test_segments_all_committed_at_end(self):
        program = compile_minic(SRC, name='detailed')
        engine = DetailedCmpEngine(program,
                                   detector=make_detector('ccured'),
                                   config=PathExpanderConfig(mode=Mode.CMP),
                                   io=IOContext(int_input=[3]))
        engine.run()
        assert engine._segments == []
        assert engine._nt_contexts == []
        assert engine._nt_pending == []

    def test_forced_commit_on_segment_overflow(self):
        # a tiny segment capacity forces displacement commits
        program = compile_minic('''
            int big[600];
            int main() {
              int n = read_int();
              for (int i = 0; i < 550; i = i + 1) {
                if (i % 9 == n) { big[i] = i; }
                big[(i * 7) % 550] = i;
              }
              print_int(big[1]);
              return 0;
            }''', name='forcing')
        engine = DetailedCmpEngine(program,
                                   config=PathExpanderConfig(mode=Mode.CMP),
                                   io=IOContext(int_input=[3]),
                                   segment_capacity_words=64)
        result = engine.run()
        assert result.forced_segment_commits >= 1
        base = run_program(program,
                           config=PathExpanderConfig(mode=Mode.BASELINE),
                           int_input=[3])
        assert result.output == base.output

    def test_works_on_real_app(self):
        app = get_app('man_fmt')
        program = app.compile(0)
        text, ints = app.default_input()
        detailed = run_detailed_cmp(program, detector='ccured',
                                    config=app.make_config(mode=Mode.CMP),
                                    text_input=text, int_input=ints)
        standard = run_program(program, detector='ccured',
                               config=app.make_config(),
                               text_input=text, int_input=ints)
        assert {r.site_key for r in detailed.reports} == \
            {r.site_key for r in standard.reports}
        assert detailed.output == standard.output

    def test_config_coerced_to_cmp_mode(self):
        program = compile_minic(SRC, name='coerce')
        result = run_detailed_cmp(
            program, config=PathExpanderConfig(mode=Mode.STANDARD),
            int_input=[3])
        assert result.mode == Mode.CMP
