"""Unit tests for the fast execution backend's machinery.

The system-level guarantee (byte-identical results on real apps) lives
in ``test_backend_equivalence.py``; this file pins down the individual
mechanisms: predecode coverage, block fusion, budget-aware truncation,
mid-block fault flushing, predicated handling, the out-of-range-PC
quirk, and every fallback path.
"""

from __future__ import annotations

import pytest

from repro.core.config import (BACKEND_CHOICES, PathExpanderConfig,
                               default_backend, set_default_backend)
from repro.core.engine import PathExpanderEngine
from repro.core.runner import run_program
import repro.cpu.backend as backend_mod
from repro.cpu.backend import make_interpreter
from repro.cpu.fastinterp import FastInterpreter, _BlockCompiler
from repro.cpu.interpreter import Interpreter
from repro.isa.cfg import (BLOCK_OPS, FUSEABLE_OPS, TERMINATOR_OPS,
                           block_leaders, fuseable_run)
from repro.isa.instructions import Instr, Reg, Syscall
from repro.isa.program import Program


def _prog(code, functions=None, entry=0, globals_size=64):
    return Program(list(code), functions or {'main': 0}, entry,
                   globals_size, name='unit')


def _run_both(program, mode='baseline', detector='none', **overrides):
    results = {}
    for backend in BACKEND_CHOICES:
        config = PathExpanderConfig(mode=mode, backend=backend,
                                    **overrides)
        results[backend] = run_program(program, detector=detector,
                                       config=config).to_dict()
    assert results['fast'] == results['reference']
    return results['reference']


def _engine(program, mode='baseline', **overrides):
    config = PathExpanderConfig(mode=mode, backend='fast', **overrides)
    return PathExpanderEngine(program, config=config)


def _alu_block_program(pad=6):
    """li/alu/cmp straight line, then print the result and halt."""
    code = [Instr('li', 3, 10), Instr('li', 4, 3)]
    for _ in range(pad):
        code += [Instr('add', 3, 3, 4), Instr('xor', 4, 4, 3),
                 Instr('slt', 5, 4, 3)]
    code += [Instr('mov', Reg.A1, 3),
             Instr('syscall', Syscall.PRINT_INT),
             Instr('halt')]
    return _prog(code)


class TestOpcodeClosures:
    def test_alu_cmp_shift_semantics(self):
        # Operands live in high registers so the A1 moves for printing
        # cannot clobber them.
        code = [Instr('li', 10, -7), Instr('li', 11, 3)]
        for op in ('add', 'sub', 'mul', 'and', 'or', 'xor',
                   'shl', 'shr', 'slt', 'sle', 'seq', 'sne',
                   'sgt', 'sge', 'div', 'mod'):
            code.append(Instr(op, 12, 10, 11))
            code.append(Instr('mov', Reg.A1, 12))
            code.append(Instr('syscall', Syscall.PRINT_INT))
        code.append(Instr('halt'))
        data = _run_both(_prog(code))
        assert data['int_output'][:3] == [-4, -10, -21]

    def test_memory_stack_and_calls(self):
        fn = 9
        code = [
            Instr('li', 1, 20),
            Instr('st', 1, 0, 16),          # globals base
            Instr('ld', 2, 0, 16),
            Instr('push', 2),
            Instr('call', fn, 'double'),
            Instr('pop', 3),
            Instr('mov', Reg.A1, Reg.RV),
            Instr('syscall', Syscall.PRINT_INT),
            Instr('halt'),
            # double(top of stack) -> RV
            Instr('ld', 4, Reg.SP, 1),      # arg above return address
            Instr('add', Reg.RV, 4, 4),
            Instr('ret'),
        ]
        data = _run_both(_prog(code, functions={'main': 0,
                                                'double': fn}))
        assert data['int_output'] == [40]
        assert data['exit_code'] == 0

    def test_division_semantics_match(self):
        # Truncation toward zero for negative operands, in and out of
        # fused blocks.
        for dividend, divisor in [(-7, 2), (7, -2), (-7, -2), (7, 2)]:
            code = [Instr('li', 1, dividend), Instr('li', 2, divisor),
                    Instr('div', 3, 1, 2), Instr('mod', 4, 1, 2),
                    Instr('mov', Reg.A1, 3),
                    Instr('syscall', Syscall.PRINT_INT),
                    Instr('mov', Reg.A1, 4),
                    Instr('syscall', Syscall.PRINT_INT),
                    Instr('halt')]
            data = _run_both(_prog(code))
            quotient, remainder = data['int_output']
            assert quotient * divisor + remainder == dividend


class TestBlockFusion:
    def test_blocks_are_compiled_and_used(self):
        engine = _engine(_alu_block_program())
        engine.run()
        interp = engine.interp
        assert isinstance(interp, FastInterpreter)
        assert interp.block_count > 0
        assert not interp.block_compile_failed

    def test_fused_run_identical_to_reference(self):
        _run_both(_alu_block_program())

    def test_truncation_mid_block(self):
        # The budget lands strictly inside the fused block: the block
        # must refuse to run and fall back to single stepping so both
        # backends truncate on the same instruction.
        for limit in (3, 7, 10):
            data = _run_both(_alu_block_program(pad=8),
                             max_instructions=limit)
            assert data['truncated']
            assert data['instret_taken'] == limit

    def test_mid_block_fault_flushes_partial_state(self):
        # div-by-zero after several fused instructions: cycles/instret
        # of the completed prefix must be retired and pc parked on the
        # faulting instruction, exactly as the reference does.
        code = [Instr('li', 1, 5), Instr('li', 2, 0)]
        code += [Instr('add', 1, 1, 1)] * 4
        code += [Instr('div', 3, 1, 2), Instr('halt')]
        data = _run_both(_prog(code))
        assert data['crashed']
        assert data['crash_kind'] == 'div_zero'

    def test_mid_block_memory_fault(self):
        # A wild load inside a fused block (NULL page).
        code = [Instr('li', 1, 2), Instr('add', 1, 1, 1),
                Instr('ld', 2, 1, 0), Instr('halt')]
        data = _run_both(_prog(code))
        assert data['crashed']
        assert data['crash_kind'] == 'null_access'

    def test_block_compile_failure_falls_back(self, monkeypatch):
        def bad_compile(self, leader, count, terminator):
            return '_bad%d' % leader, 'def _bad%d(:\n' % leader, {}
        monkeypatch.setattr(_BlockCompiler, 'compile', bad_compile)
        engine = _engine(_alu_block_program())
        result = engine.run()
        assert engine.interp.block_compile_failed
        assert engine.interp.block_count == 0
        assert result.int_output  # still ran, on predecoded dispatch

    def test_assert_fused_only_without_detector(self):
        code = [Instr('li', 1, 1), Instr('li', 2, 2),
                Instr('assert', 1, 'a0'), Instr('add', 3, 1, 2),
                Instr('halt')]
        program = _prog(code)
        _run_both(program)
        _run_both(program, mode='baseline', detector='assertions')


def _nt_program(nt_body, trips=6):
    """A taken-path loop around a never-taken branch whose non-taken
    side is ``nt_body`` -- code that only ever executes inside the
    NT-path sandbox."""
    code = [Instr('li', 1, 0), Instr('li', 2, trips), Instr('li', 9, 0)]
    loop = len(code)
    branch = Instr('br', 9, 0)           # target patched below
    code += [Instr('addi', 1, 1, 1),
             branch,
             Instr('slt', 8, 1, 2),
             Instr('br', 8, loop),
             Instr('halt')]
    branch.b = len(code)                 # NT side starts here
    code += list(nt_body)
    return _prog(code)


class TestNTBlocks:
    """The sandboxed block table: NT-paths executed through fused
    closures must be indistinguishable from reference stepping."""

    def test_nt_paths_run_through_sandboxed_blocks(self):
        # An ALU loop on the NT side: every path length-terminates.
        body = [Instr('li', 4, 0)]
        body += [Instr('add', 4, 4, 1)] * 6
        program = _nt_program(body + [Instr('jmp', 8)])
        engine = _engine(program, mode='standard',
                         max_nt_path_length=50)
        data = engine.run().to_dict()
        assert data['nt_spawned'] > 0
        assert engine.interp.nt_block_count > 0
        assert not engine.interp.block_compile_failed

    def test_mid_nt_fault_terminates_path_only(self):
        # div-by-zero inside a fused NT block: the path counts a crash
        # termination, the taken path continues, and both backends
        # agree byte-for-byte (cycles of the completed prefix, pc
        # parking, squash accounting).
        body = [Instr('li', 4, 3), Instr('add', 4, 4, 4),
                Instr('div', 5, 4, 9),   # r9 == 0
                Instr('halt')]
        data = _run_both(_nt_program(body), mode='standard',
                         max_nt_path_length=64)
        assert data['nt_spawned'] > 0
        assert data['nt_terminations'].get('crash', 0) > 0
        assert not data['crashed']       # the monitored run survives

    def test_nt_budget_truncation_at_block_boundaries(self):
        # An endless ALU loop on the NT side: every spawned path must
        # stop at exactly the length budget, whether that lands on a
        # block boundary or strictly inside a fused block.
        body = [Instr('li', 4, 0)]
        body += [Instr('add', 4, 4, 1)] * 7
        body += [Instr('jmp', 9)]        # loop the adds forever
        program = _nt_program(body)
        for length in (5, 8, 9, 12, 30):
            data = _run_both(program, mode='standard',
                             max_nt_path_length=length)
            terms = data['nt_terminations']
            # The loop-exit branch also spawns zero-length paths that
            # fall straight into halt (program_end); every other path
            # must stop at exactly the budget.
            assert set(terms) <= {'length', 'program_end'}
            assert terms.get('length', 0) > 0
            assert data['instret_nt'] == terms['length'] * length

    def test_nt_journal_rollback_completeness(self):
        # NT-side stores through the sandboxed blocks touch several
        # globals; after every squash the journal must be empty and
        # main memory byte-identical to the reference backend's.
        body = [Instr('li', 4, 16), Instr('li', 6, 0),
                Instr('ld', 5, 4, 0), Instr('addi', 5, 5, 7),
                Instr('st', 5, 4, 0), Instr('addi', 4, 4, 1),
                Instr('addi', 6, 6, 1), Instr('slt', 7, 6, 2),
                Instr('br', 7, 10), Instr('jmp', 8)]
        program = _nt_program(body)
        engines = {}
        for backend in BACKEND_CHOICES:
            config = PathExpanderConfig(mode='standard',
                                        backend=backend,
                                        max_nt_path_length=200)
            engine = PathExpanderEngine(program, config=config)
            engine.run()
            engines[backend] = engine
        fast, reference = engines['fast'], engines['reference']
        assert fast.result.to_dict() == reference.result.to_dict()
        assert fast.result.nt_spawned > 0
        assert fast.result.nt_store_count > 0
        assert fast.memory.cells == reference.memory.cells
        assert len(fast.memory.nt_journal) == 0


class TestDispatchEdges:
    def test_predicated_instructions_skip(self):
        code = [Instr('li', 1, 1),
                Instr('li', 1, 99, pred=True),   # pred clear: a skip
                Instr('mov', Reg.A1, 1),
                Instr('syscall', Syscall.PRINT_INT),
                Instr('halt')]
        data = _run_both(_prog(code))
        assert data['int_output'] == [1]

    def test_predicated_execution_in_nt_entry(self):
        # Variable fixing sets the predicate at NT-path entry, so the
        # predicated leader actually executes there (reference
        # fallback); spawning must agree across backends.
        code = [Instr('li', 1, 4),
                Instr('li', 2, 0),
                # loop: branch is taken until r2 counts down
                Instr('li', 3, 1, pred=True),
                Instr('addi', 2, 2, 1),
                Instr('slt', 4, 2, 1),
                Instr('br', 4, 2),
                Instr('halt')]
        data = _run_both(_prog(code), mode='standard',
                         max_nt_path_length=16)
        assert data['nt_spawned'] > 0

    def test_negative_pc_quirk_matches_reference(self):
        # jmp -1 indexes code[-1] in the reference backend (Python
        # negative indexing); the fast backend must reproduce that.
        code = [Instr('jmp', -1), Instr('li', 1, 3), Instr('halt')]
        data = _run_both(_prog(code))
        assert data['exit_code'] == 0
        assert not data['crashed']

    def test_malloc_free_take_reference_fallback(self):
        code = [Instr('li', 1, 4),
                Instr('malloc', 2, 1),
                Instr('li', 3, 7),
                Instr('st', 3, 2, 0),
                Instr('ld', Reg.A1, 2, 0),
                Instr('syscall', Syscall.PRINT_INT),
                Instr('free', 2),
                Instr('halt')]
        data = _run_both(_prog(code))
        assert data['int_output'] == [7]

    def test_syscall_exit_code(self):
        code = [Instr('li', Reg.A1, 42),
                Instr('syscall', Syscall.EXIT),
                Instr('halt')]
        data = _run_both(_prog(code))
        assert data['exit_code'] == 42


class TestCfgHelpers:
    def test_fuseable_run_stops_at_memory_op_in_pure_tier(self):
        code = [Instr('add', 1, 1, 2), Instr('ld', 3, 1, 0),
                Instr('halt')]
        count, terminator = fuseable_run(code, 0, FUSEABLE_OPS)
        assert count == 1 and terminator is None
        count, terminator = fuseable_run(code, 0, BLOCK_OPS)
        assert count == 2 and terminator is None

    def test_fuseable_run_absorbs_terminator(self):
        code = [Instr('add', 1, 1, 2), Instr('br', 1, 0),
                Instr('halt')]
        count, terminator = fuseable_run(code, 0, BLOCK_OPS)
        assert count == 1
        assert terminator is code[1]
        assert terminator.op in TERMINATOR_OPS

    def test_predicated_instr_continues_run(self):
        code = [Instr('add', 1, 1, 2),
                Instr('call', 5, 'f', pred=True),
                Instr('add', 1, 1, 2), Instr('halt')]
        count, _ = fuseable_run(code, 0, BLOCK_OPS)
        assert count == 3

    def test_block_leaders_include_targets_and_successors(self):
        code = [Instr('add', 1, 1, 2),    # 0: entry
                Instr('br', 1, 0),        # 1: -> {0, 2}
                Instr('call', 4, 'f'),    # 2: -> {4, 3}
                Instr('halt'),            # 3
                Instr('ret')]             # 4: 'f'
        program = _prog(code, functions={'main': 0, 'f': 4})
        leaders = block_leaders(program, BLOCK_OPS)
        assert {0, 2, 3, 4}.issubset(leaders)
        assert all(0 <= addr < len(code) for addr in leaders)


class TestBackendSelection:
    def test_engine_honours_backend_config(self):
        program = _alu_block_program()
        engine = PathExpanderEngine(
            program, config=PathExpanderConfig(backend='reference'))
        assert type(engine.interp) is Interpreter
        engine = PathExpanderEngine(
            program, config=PathExpanderConfig(backend='fast'))
        assert isinstance(engine.interp, FastInterpreter)

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            PathExpanderConfig(backend='jit')

    def test_make_interpreter_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            make_interpreter('jit', *([None] * 6))

    def test_replace_preserves_backend(self):
        config = PathExpanderConfig(backend='reference')
        assert config.replace(mode='cmp').backend == 'reference'

    def test_default_backend_resolution(self, monkeypatch):
        monkeypatch.delenv('REPRO_BACKEND', raising=False)
        assert default_backend() == 'fast'
        assert PathExpanderConfig().resolved_backend == 'fast'
        monkeypatch.setenv('REPRO_BACKEND', 'reference')
        assert default_backend() == 'reference'
        # explicit config wins over the environment
        assert PathExpanderConfig(backend='fast').resolved_backend \
            == 'fast'
        monkeypatch.setenv('REPRO_BACKEND', 'bogus')
        with pytest.raises(ValueError):
            default_backend()

    def test_set_default_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv('REPRO_BACKEND', 'reference')
        set_default_backend('fast')
        try:
            assert default_backend() == 'fast'
        finally:
            set_default_backend(None)
        assert default_backend() == 'reference'
        with pytest.raises(ValueError):
            set_default_backend('bogus')

    def test_construction_failure_falls_back_to_reference(
            self, monkeypatch):
        class Exploding(FastInterpreter):
            def __init__(self, *args, **kwargs):
                raise RuntimeError('boom')
        monkeypatch.setitem(backend_mod._CLASSES, 'fast', Exploding)
        program = _alu_block_program()
        config = PathExpanderConfig(backend='fast')
        engine = PathExpanderEngine(program, config=config)
        assert type(engine.interp) is Interpreter
        result = engine.run()
        assert result.exit_code == 0
