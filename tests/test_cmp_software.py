"""Tests for the CMP scheduling model and the software cost model."""

import pytest

from repro.core.cmp import CmpScheduler
from repro.core.config import Mode, PathExpanderConfig
from repro.core.software import (software_baseline_cycles,
                                 software_cycles)
from repro.minic.codegen import compile_minic
from repro.core.runner import run_program


class TestCmpScheduler:
    def _scheduler(self, cores=4, max_paths=32):
        return CmpScheduler(cores, max_paths, spawn_overhead=20,
                            squash_overhead=10)

    def test_needs_two_cores(self):
        with pytest.raises(ValueError):
            CmpScheduler(1, 32, 20, 10)

    def test_first_path_starts_after_spawn_overhead(self):
        scheduler = self._scheduler()
        end = scheduler.commit(now=100, duration=500)
        assert end == 100 + 20 + 500 + 10

    def test_parallel_paths_on_free_cores(self):
        scheduler = self._scheduler(cores=4)
        ends = [scheduler.commit(now=0, duration=100) for _ in range(3)]
        assert ends == [130, 130, 130]     # 3 idle cores, no queueing

    def test_queueing_behind_earliest_completion(self):
        scheduler = self._scheduler(cores=4)
        for _ in range(3):
            scheduler.commit(now=0, duration=1000)
        end = scheduler.commit(now=0, duration=100)
        assert end == 1030 + 100 + 10     # waits for the first free core
        assert scheduler.queued == 1

    def test_slots_free_after_completion(self):
        scheduler = self._scheduler(max_paths=2)
        scheduler.commit(now=0, duration=50)
        scheduler.commit(now=0, duration=50)
        assert not scheduler.slot_free(10)
        assert scheduler.slot_free(1000)

    def test_max_outstanding_respected(self):
        scheduler = self._scheduler(max_paths=4)
        for _ in range(4):
            assert scheduler.slot_free(0)
            scheduler.commit(now=0, duration=10_000)
        assert not scheduler.slot_free(0)
        assert scheduler.peak_outstanding == 4

    def test_last_end_tracks_latest(self):
        scheduler = self._scheduler()
        scheduler.commit(now=0, duration=100)
        scheduler.commit(now=500, duration=100)
        assert scheduler.last_end == 500 + 20 + 100 + 10


HIDDEN_BUG = '''
int sink[8];
int main() {
  int n = read_int();
  for (int i = 0; i < 40; i = i + 1) {
    if (i % 5 == n % 7) { sink[i & 7] = i; }
    else { sink[0] = sink[0] + 1; }
  }
  if (n > 500) { sink[7] = 0 - 1; }
  print_int(sink[0]);
  return 0;
}
'''


class TestCmpEngine:
    def _run(self, mode, **overrides):
        program = compile_minic(HIDDEN_BUG, name='cmp_test')
        config = PathExpanderConfig(mode=mode, **overrides)
        return run_program(program, detector='ccured', config=config,
                           int_input=[3])

    def test_functional_equivalence_with_standard(self):
        standard = self._run(Mode.STANDARD)
        cmp_run = self._run(Mode.CMP)
        assert cmp_run.output == standard.output
        assert cmp_run.total_covered == standard.total_covered
        assert [r.site_key for r in cmp_run.reports] == \
            [r.site_key for r in standard.reports]

    def test_cmp_cycles_below_standard(self):
        standard = self._run(Mode.STANDARD)
        cmp_run = self._run(Mode.CMP)
        assert cmp_run.cycles < standard.cycles

    def test_total_runtime_covers_nt_tail(self):
        cmp_run = self._run(Mode.CMP)
        assert cmp_run.cycles >= cmp_run.primary_cycles

    def test_max_num_nt_paths_limits_spawns(self):
        unlimited = self._run(Mode.CMP, max_num_nt_paths=32)
        throttled = self._run(Mode.CMP, max_num_nt_paths=1)
        assert throttled.nt_spawned <= unlimited.nt_spawned
        assert throttled.nt_skipped_busy >= 0


class TestSoftwareCostModel:
    def _runs(self):
        program = compile_minic(HIDDEN_BUG, name='sw_test')
        base = run_program(program, detector='ccured',
                           config=PathExpanderConfig(mode=Mode.BASELINE),
                           int_input=[3])
        sw = run_program(program, detector='ccured',
                         config=PathExpanderConfig(mode=Mode.SOFTWARE),
                         int_input=[3])
        return base, sw

    def test_software_far_more_expensive(self):
        base, sw = self._runs()
        assert sw.cycles > 10 * base.cycles

    def test_detection_identical_to_hardware(self):
        program = compile_minic(HIDDEN_BUG, name='sw_test')
        hw = run_program(program, detector='ccured',
                         config=PathExpanderConfig(mode=Mode.STANDARD),
                         int_input=[3])
        sw = run_program(program, detector='ccured',
                         config=PathExpanderConfig(mode=Mode.SOFTWARE),
                         int_input=[3])
        assert [r.site_key for r in sw.reports] == \
            [r.site_key for r in hw.reports]
        assert sw.total_covered == hw.total_covered

    def test_cost_terms_accumulate(self):
        config = PathExpanderConfig(mode=Mode.SOFTWARE)

        class Stub:
            primary_cycles = 1000
            taken_branch_count = 10
            nt_branch_count = 5
            instret_nt = 100
            nt_spawned = 2
            nt_store_count = 20
            journal_entries_total = 15

        expected = (1000 * config.sw_dilation
                    + 15 * config.sw_branch_cost
                    + 100 * config.sw_nt_instr_cost
                    + 2 * config.sw_checkpoint_cost
                    + 20 * config.sw_log_cost
                    + 2 * config.sw_restore_base
                    + 15 * config.sw_restore_per_entry)
        assert software_cycles(Stub(), config) == expected

    def test_baseline_dilation(self):
        config = PathExpanderConfig(mode=Mode.SOFTWARE)

        class Stub:
            primary_cycles = 1000
            taken_branch_count = 10

        expected = 1000 * config.sw_dilation + 10 * config.sw_branch_cost
        assert software_baseline_cycles(Stub(), config) == expected
