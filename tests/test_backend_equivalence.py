"""Differential harness: the fast backend must be undetectable.

Every registered application runs in all four modes, under every
detector the app supports (plus detector-free), on both execution
backends -- and the two :meth:`RunResult.to_dict` payloads must be
byte-identical.  That covers cycles, instret, coverage sets, NT-path
accounting, detector reports, program output and crash state at once.

Runs are capped with ``max_instructions``, which doubles as a test of
the truncation contract: a fused block refuses to overshoot the budget,
so both backends must stop at exactly the same instruction.  A separate
uncapped test checks natural program exit.
"""

from __future__ import annotations

import pytest

from repro.apps.registry import ALL_APPS, get_app
from repro.core.config import Mode
from repro.core.runner import make_detector, run_program

# Large enough to reach steady state (and NT-path spawning) in every
# app, small enough to keep the full matrix fast.
_INSTR_CAP = 25_000

_PROGRAMS = {}


def _program(name):
    if name not in _PROGRAMS:
        _PROGRAMS[name] = get_app(name).compile()
    return _PROGRAMS[name]


def _run(app, program, mode, detector_name, backend, **overrides):
    text, ints = app.default_input()
    config = app.make_config(mode, backend=backend, **overrides)
    result = run_program(program, detector=make_detector(detector_name),
                         config=config, text_input=text, int_input=ints)
    return result.to_dict()


@pytest.mark.parametrize('mode', Mode.ALL)
@pytest.mark.parametrize('app_name', sorted(ALL_APPS))
def test_backends_agree(app_name, mode):
    app = get_app(app_name)
    program = _program(app_name)
    for detector_name in ('none',) + tuple(app.tools):
        reference = _run(app, program, mode, detector_name, 'reference',
                         max_instructions=_INSTR_CAP)
        fast = _run(app, program, mode, detector_name, 'fast',
                    max_instructions=_INSTR_CAP)
        assert fast == reference, (app_name, mode, detector_name)


# NT-path policy extensions change what executes inside the sandbox
# (speculative syscalls; forced edges spawned from NT-paths), so each
# needs its own pass through the differential matrix in the spawning
# modes.
_NT_POLICY_OVERRIDES = {
    'sandbox_unsafe': {'sandbox_unsafe_events': True},
    'explore_from_nt': {'explore_nt_from_nt': True},
    'both': {'sandbox_unsafe_events': True, 'explore_nt_from_nt': True},
}


@pytest.mark.parametrize('policy', sorted(_NT_POLICY_OVERRIDES))
@pytest.mark.parametrize('mode', (Mode.STANDARD, Mode.CMP))
@pytest.mark.parametrize('app_name', sorted(ALL_APPS))
def test_backends_agree_nt_policies(app_name, mode, policy):
    app = get_app(app_name)
    program = _program(app_name)
    overrides = _NT_POLICY_OVERRIDES[policy]
    for detector_name in ('none',) + tuple(app.tools):
        reference = _run(app, program, mode, detector_name, 'reference',
                         max_instructions=_INSTR_CAP, **overrides)
        fast = _run(app, program, mode, detector_name, 'fast',
                    max_instructions=_INSTR_CAP, **overrides)
        assert fast == reference, (app_name, mode, detector_name,
                                   policy)


@pytest.mark.parametrize('mode', Mode.ALL)
def test_backends_agree_uncapped(mode):
    """Natural program exit (no truncation) on a small app."""
    app = get_app('schedule')
    program = _program('schedule')
    for detector_name in ('none',) + tuple(app.tools):
        reference = _run(app, program, mode, detector_name, 'reference')
        fast = _run(app, program, mode, detector_name, 'fast')
        assert fast == reference, (mode, detector_name)


def test_capped_matrix_exercises_truncation():
    """The cap actually bites on the big workloads, so the matrix above
    really does compare truncation points."""
    app = get_app('vpr_app')
    data = _run(app, _program('vpr_app'), Mode.BASELINE, 'none', 'fast',
                max_instructions=_INSTR_CAP)
    assert data['truncated']


def test_capped_matrix_exercises_nt_paths():
    """...and NT-paths spawn inside the capped window."""
    app = get_app('schedule')
    data = _run(app, _program('schedule'), Mode.STANDARD, 'none', 'fast',
                max_instructions=_INSTR_CAP)
    assert data['nt_spawned'] > 0
