"""Branch target buffer with per-edge exercise counters.

Section 4.2(1): the BTB is extended with two 4-bit saturating counters
per entry -- one per branch edge -- recording how often each edge has
been executed.  A BTB miss is treated as a zero count.  Counters are
periodically reset (every ``CounterResetInterval`` retired
instructions) so long-running programs keep re-exploring.
"""

from __future__ import annotations

COUNTER_MAX = 15          # 4-bit saturating


class _Entry:
    __slots__ = ('addr', 'taken_count', 'nt_count', 'lru')

    def __init__(self, addr, lru):
        self.addr = addr
        self.taken_count = 0
        self.nt_count = 0
        self.lru = lru


class BranchTargetBuffer:
    """2K-entry, 2-way set-associative BTB (Table 2)."""

    def __init__(self, entries=2048, ways=2):
        self.ways = ways
        self.num_sets = entries // ways
        self._sets = [[] for _ in range(self.num_sets)]
        self._tick = 0
        self.evictions = 0

    def _lookup(self, addr, allocate):
        self._tick += 1
        entries = self._sets[addr % self.num_sets]
        for entry in entries:
            if entry.addr == addr:
                entry.lru = self._tick
                return entry
        if not allocate:
            return None
        if len(entries) >= self.ways:
            victim = min(entries, key=lambda e: e.lru)
            entries.remove(victim)
            self.evictions += 1
        entry = _Entry(addr, self._tick)
        entries.append(entry)
        return entry

    def edge_count(self, addr, taken):
        """Exercise count of one edge; a BTB miss reads as zero."""
        entry = self._lookup(addr, allocate=False)
        if entry is None:
            return 0
        return entry.taken_count if taken else entry.nt_count

    def observe_edge(self, addr, taken):
        """Count one execution of an edge and return its entry.

        One lookup serving both the counter bump and the caller's
        subsequent spawn decision (:meth:`NTPathSelector.consider`).
        The reference pair ``record_edge`` + ``edge_count`` performed
        back-to-back lookups of the *same* entry, so collapsing them
        preserves the relative LRU order of every entry -- and
        therefore every eviction and every counter value.
        """
        # _lookup(allocate=True) inlined: this runs once per retired
        # taken-path branch.
        tick = self._tick + 1
        self._tick = tick
        entries = self._sets[addr % self.num_sets]
        for entry in entries:
            if entry.addr == addr:
                entry.lru = tick
                break
        else:
            if len(entries) >= self.ways:
                victim = min(entries, key=lambda e: e.lru)
                entries.remove(victim)
                self.evictions += 1
            entry = _Entry(addr, tick)
            entries.append(entry)
        if taken:
            if entry.taken_count < COUNTER_MAX:
                entry.taken_count += 1
        elif entry.nt_count < COUNTER_MAX:
            entry.nt_count += 1
        return entry

    def record_edge(self, addr, taken):
        """Count one execution (or NT-path entry) of an edge."""
        self.observe_edge(addr, taken)

    def reset_counters(self):
        for entries in self._sets:
            for entry in entries:
                entry.taken_count = 0
                entry.nt_count = 0

    def occupancy(self):
        return sum(len(entries) for entries in self._sets)
