"""Instruction set architecture of the reproduction machine."""

from repro.isa.builder import Label, ProgramBuilder
from repro.isa.instructions import Instr, Reg, Syscall
from repro.isa.program import BlankStructInfo, BranchEdge, Program

__all__ = ['Instr', 'Reg', 'Syscall', 'Program', 'BranchEdge',
           'BlankStructInfo', 'ProgramBuilder', 'Label']
