"""Static control-flow helpers over a flat :class:`Program`.

Used by the fast execution backend to decide where basic blocks start
(``block_leaders``) and how far a straight-line fuseable run extends
(``fuseable_run``), and by tests/tools that want the same partitioning.

Two fuseable-op tiers exist:

* :data:`FUSEABLE_OPS` -- register-only instructions: executing one can
  neither transfer control, touch memory, reach a detector/cache hook,
  nor (unpredicated) depend on the predicate register.
* :data:`BLOCK_OPS` -- adds the straight-line memory instructions
  (``ld``/``st``/``push``/``pop``).  The fast backend fuses these too:
  their cache/detector hooks still fire per instruction *inside* the
  fused closure, in exactly the reference order.  Each run is compiled
  twice from the same partitioning (:func:`basic_runs`): a taken-path
  variant and a *sandboxed* NT-path variant whose stores route through
  the active memory journal.

Additionally a run may contain *predicated* instructions: inside a
block the predicate register is provably false (a predicated-leader
block refuses to run with the predicate set, an unpredicated-leader
block clears it, and no fused instruction sets it), so a predicated
instruction in a block -- whatever its opcode -- is statically a
one-cycle skip.  A fused run may absorb one trailing unpredicated
``jmp`` or ``br`` terminator (:data:`TERMINATOR_OPS`): the transfer is
then the block's final action.
"""

from __future__ import annotations

FUSEABLE_OPS = frozenset({
    'li', 'mov', 'addi', 'add', 'sub', 'mul', 'div', 'mod',
    'slt', 'sle', 'seq', 'sne', 'sgt', 'sge',
    'and', 'or', 'xor', 'shl', 'shr', 'nop',
})

BLOCK_OPS = FUSEABLE_OPS | {'ld', 'st', 'push', 'pop'}

TERMINATOR_OPS = frozenset({'jmp', 'br'})


def is_fuseable(instr, ops=FUSEABLE_OPS):
    """Whether ``instr`` may *start or continue* a fused run."""
    return instr.op in ops and not instr.pred


def fuseable_run(code, pc, ops=FUSEABLE_OPS):
    """The straight-line fuseable run starting at ``pc``.

    Returns ``(count, terminator)``: ``count`` fuseable instructions
    starting at ``pc`` (instructions in ``ops``, plus predicated
    instructions of any opcode -- with the predicate register false, a
    predicated instruction is statically a one-cycle skip, and a block
    whose *leader* is predicated refuses to run when the predicate is
    set), and ``terminator`` (the :class:`Instr` at ``pc + count``)
    when the run ends at an unpredicated ``jmp``/``br`` that a block
    may absorb, else ``None``.
    """
    n = len(code)
    end = pc
    while end < n:
        instr = code[end]
        if not instr.pred and instr.op not in ops:
            break
        end += 1
    terminator = None
    if end > pc and end < n:
        tail = code[end]
        if tail.op in TERMINATOR_OPS and not tail.pred:
            terminator = tail
    return end - pc, terminator


def basic_runs(program, ops=FUSEABLE_OPS):
    """Every fuseable run in ``program``, as ``[(leader, count,
    terminator), ...]`` sorted by leader.

    One CFG pass serving every block table built over the same op tier:
    the fast backend compiles each run twice -- a taken-path variant
    and a sandboxed NT-path variant -- from this single partitioning.
    Runs of weight < 2 (nothing to fuse) are omitted.
    """
    code = program.code
    runs = []
    for leader in sorted(block_leaders(program, ops)):
        count, terminator = fuseable_run(code, leader, ops)
        if count + (1 if terminator is not None else 0) >= 2:
            runs.append((leader, count, terminator))
    return runs


def block_leaders(program, ops=FUSEABLE_OPS):
    """Addresses where execution plausibly *enters* straight-line code.

    The set contains the program entry, every function entry, every
    static control-transfer target, and the successor of every
    instruction that ends a run (control transfers, non-``ops``
    instructions, and predicated instructions -- a predicated leader
    dispatches singly, so the address after it restarts a run).
    Jumping into the middle of a run not in this set stays correct --
    the fast backend falls back to per-instruction dispatch for unknown
    entry points -- it is only (marginally) slower.
    """
    code = program.code
    n = len(code)
    leaders = {0, program.entry}
    leaders.update(program.functions.values())
    for addr, instr in enumerate(code):
        op = instr.op
        if op == 'br':
            leaders.add(instr.b)
            leaders.add(addr + 1)
        elif op in ('jmp', 'call'):
            leaders.add(instr.a)
            leaders.add(addr + 1)
        elif not instr.pred and op not in ops:
            leaders.add(addr + 1)
    return {addr for addr in leaders
            if isinstance(addr, int) and 0 <= addr < n}
