"""Disassembler: render Programs back to readable listings."""

from __future__ import annotations

from repro.isa.instructions import Reg, Syscall

_REG_NAMES = {Reg.ZERO: 'zero', Reg.FP: 'fp', Reg.SP: 'sp',
              Reg.FIX: 'fix', Reg.SCRATCH: 'scr'}
_SYSCALL_NAMES = {
    Syscall.PRINT_INT: 'print_int', Syscall.PUTC: 'putc',
    Syscall.GETC: 'getc', Syscall.READ_INT: 'read_int',
    Syscall.EXIT: 'exit', Syscall.RAND: 'rand', Syscall.TIME: 'time',
}

_REG_FIELDS = {
    'li': ('r', 'i', None), 'mov': ('r', 'r', None),
    'addi': ('r', 'r', 'i'),
    'ld': ('r', 'r', 'i'), 'st': ('r', 'r', 'i'),
    'br': ('r', 'a', None), 'jmp': ('a', None, None),
    'push': ('r', None, None), 'pop': ('r', None, None),
    'assert': ('r', 'i', None),
    'malloc': ('r', 'r', None), 'free': ('r', None, None),
}


def reg_name(index):
    return _REG_NAMES.get(index, 'r%d' % index)


def format_instr(instr):
    """One instruction as text (without its address)."""
    op = instr.op
    if op == 'syscall':
        body = 'syscall %s' % _SYSCALL_NAMES.get(instr.a, instr.a)
    elif op in ('halt', 'nop', 'ret'):
        body = op
    elif op == 'call':
        body = 'call %s' % (instr.b if instr.b is not None else instr.a)
    else:
        kinds = _REG_FIELDS.get(op, ('r', 'r', 'r'))
        parts = []
        for kind, value in zip(kinds, (instr.a, instr.b, instr.c)):
            if kind is None or value is None:
                continue
            if kind == 'r':
                parts.append(reg_name(value))
            elif kind == 'a':
                parts.append('@%s' % value)
            else:
                parts.append(repr(value) if isinstance(value, str)
                             else str(value))
        body = '%s %s' % (op, ', '.join(parts))
    if instr.pred:
        body += '   <pred>'
    return body


def disassemble(program, start=0, end=None):
    """A listing of ``program`` as a string.

    Function entries are labelled; branch targets show absolute
    addresses prefixed with ``@``.
    """
    end = len(program.code) if end is None else min(end,
                                                    len(program.code))
    entries = {addr: name for name, addr in program.functions.items()}
    lines = []
    for addr in range(start, end):
        if addr in entries:
            lines.append('%s:' % entries[addr])
        lines.append('  %5d  %s' % (addr,
                                    format_instr(program.code[addr])))
    return '\n'.join(lines)


def function_listing(program, name):
    """Disassembly of a single function."""
    if name not in program.functions:
        raise KeyError('no function %r' % name)
    start = program.functions[name]
    following = sorted(addr for addr in program.functions.values()
                       if addr > start)
    end = following[0] if following else len(program.code)
    return disassemble(program, start, end)
