"""Instruction set for the PathExpander reproduction machine.

The machine is a word-addressable, register-based RISC-like target.  It
deliberately exposes exactly the features PathExpander's mechanisms act
on: conditional branches with two edges, memory loads/stores, system
calls (the "unsafe events" of the paper), and predicated instructions
(used by the compiler-inserted variable fixes of Section 4.4).

Every conditional control transfer is expressed as a comparison
(``slt``/``seq``/...) followed by a single-form branch ``br reg, target``
("branch if reg is non-zero").  Each ``br`` therefore has exactly two
edges -- *taken* (to the target) and *not-taken* (fall-through) -- which
is the unit the BTB exercise counters, the coverage tracker, and the
NT-path spawner all operate on.
"""

from __future__ import annotations


class Reg:
    """Architectural register conventions (32 integer registers)."""

    ZERO = 0          # hard-wired zero
    RV = 1            # return value / first argument
    A0, A1, A2, A3, A4, A5 = 1, 2, 3, 4, 5, 6
    # r8..r27: expression temporaries managed by the compiler
    T_FIRST = 8
    T_LAST = 27
    FIX = 28          # scratch register reserved for variable-fixing code
    FP = 29           # frame pointer
    SP = 30           # stack pointer
    SCRATCH = 31      # assembler/runtime scratch
    COUNT = 32


# Operation mnemonics, grouped by category.
ALU_OPS = frozenset({
    'add', 'sub', 'mul', 'div', 'mod',
    'and', 'or', 'xor', 'shl', 'shr',
})
CMP_OPS = frozenset({'slt', 'sle', 'seq', 'sne', 'sgt', 'sge'})
MEM_OPS = frozenset({'ld', 'st'})
CONTROL_OPS = frozenset({'br', 'jmp', 'call', 'ret', 'halt'})
OTHER_OPS = frozenset({
    'li', 'mov', 'addi', 'push', 'pop', 'syscall',
    'assert', 'malloc', 'free', 'nop',
})
ALL_OPS = ALU_OPS | CMP_OPS | MEM_OPS | CONTROL_OPS | OTHER_OPS


class Syscall:
    """System-call codes.

    Every syscall is an *unsafe event* for an NT-path (Section 3.2): its
    side effects cannot be sandboxed, so the NT-path is squashed when it
    reaches one.
    """

    PRINT_INT = 1     # write integer in A1 to the output stream
    PUTC = 2          # write character code in A1 to the output stream
    GETC = 3          # RV <- next input character (-1 on EOF)
    READ_INT = 4      # RV <- next input integer (-1 on EOF)
    EXIT = 5          # terminate the program
    RAND = 6          # RV <- pseudo-random value (host entropy: unsafe)
    TIME = 7          # RV <- wall-clock stand-in (host state: unsafe)

    ALL = frozenset({PRINT_INT, PUTC, GETC, READ_INT, EXIT, RAND, TIME})


class Instr:
    """One machine instruction.

    ``a``, ``b``, ``c`` are operands whose meaning depends on ``op``:

    =========  =============================================
    op         operands
    =========  =============================================
    li         a=rd, b=immediate
    mov        a=rd, b=rs
    ALU        a=rd, b=rs, c=rt
    addi       a=rd, b=rs, c=immediate
    CMP        a=rd, b=rs, c=rt
    ld         a=rd, b=base reg, c=immediate offset
    st         a=value reg, b=base reg, c=immediate offset
    br         a=condition reg, b=target address
    jmp        a=target address
    call       a=target address, b=function name
    ret        --
    push       a=rs
    pop        a=rd
    syscall    a=code
    assert     a=condition reg, b=assertion id (str)
    malloc     a=rd, b=size reg
    free       a=rs
    halt/nop   --
    =========  =============================================

    ``pred`` marks a predicated instruction: it executes only while the
    core's predicate register is set (i.e. at the entrance of an
    NT-path) and behaves as a NOP otherwise (Section 4.4).
    """

    __slots__ = ('op', 'a', 'b', 'c', 'pred', 'src')

    def __init__(self, op, a=None, b=None, c=None, pred=False, src=None):
        if op not in ALL_OPS:
            raise ValueError('unknown opcode: %r' % (op,))
        self.op = op
        self.a = a
        self.b = b
        self.c = c
        self.pred = pred
        self.src = src    # optional (function, note) provenance tag

    def __repr__(self):
        operands = [v for v in (self.a, self.b, self.c) if v is not None]
        text = '%s %s' % (self.op, ', '.join(map(str, operands)))
        if self.pred:
            text += ' <p>'
        return '<Instr %s>' % text
