"""Textual assembler for the PathExpander ISA.

Useful for hand-crafted micro-kernels in tests and experiments that
need exact instruction sequences (the MiniC compiler is the normal
entry point).  Example::

    .global counter 1
    .string greet "hi"

    func main:
        li a1, 5
        call double
        mov r8, rv
        st r8, zero, counter
    loop:
        addi r8, r8, -1
        sgt r9, r8, zero
        br r9, loop
        halt

    func double:
        add rv, a1, a1
        ret

Syntax:

* ``func NAME:`` starts a function; ``NAME:`` binds a label.
* ``p.`` prefixes a predicated instruction (``p.li fix, 5``).
* Operands: registers (``r0``-``r31``, ``zero``, ``rv``, ``a1``-``a5``,
  ``fp``, ``sp``, ``fix``, ``scr``), integers, label or function names,
  global names (resolve to their data address), quoted strings (for
  ``assert`` ids), char literals, and syscall names for ``syscall``.
* ``.global NAME SIZE`` reserves data words; ``.string NAME "..."``
  stores a string; ``.gap N`` inserts unregistered guard words.
* ``;`` or ``#`` start a comment.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import ALL_OPS, Reg, Syscall

_REG_ALIASES = {
    'zero': Reg.ZERO, 'rv': Reg.RV, 'fp': Reg.FP, 'sp': Reg.SP,
    'fix': Reg.FIX, 'scr': Reg.SCRATCH,
    'a0': Reg.A0, 'a1': Reg.A1, 'a2': Reg.A2, 'a3': Reg.A3,
    'a4': Reg.A4, 'a5': Reg.A5,
}
_SYSCALLS = {
    'print_int': Syscall.PRINT_INT, 'putc': Syscall.PUTC,
    'getc': Syscall.GETC, 'read_int': Syscall.READ_INT,
    'exit': Syscall.EXIT, 'rand': Syscall.RAND, 'time': Syscall.TIME,
}


class AsmError(Exception):
    def __init__(self, message, line_no):
        super().__init__('line %d: %s' % (line_no, message))
        self.line_no = line_no


def _split_operands(text):
    """Comma-split that respects quoted strings."""
    parts = []
    current = []
    in_string = False
    for char in text:
        if char == '"':
            in_string = not in_string
            current.append(char)
        elif char == ',' and not in_string:
            parts.append(''.join(current).strip())
            current = []
        else:
            current.append(char)
    tail = ''.join(current).strip()
    if tail:
        parts.append(tail)
    return parts


class Assembler:

    def __init__(self, name='asm'):
        self.builder = ProgramBuilder(name)
        self.labels = {}
        self.globals = {}

    # ------------------------------------------------------------------

    def assemble(self, source, entry='main'):
        for line_no, raw in enumerate(source.splitlines(), start=1):
            line = raw.split(';')[0].split('#')[0].strip()
            if not line:
                continue
            if line.startswith('.'):
                self._directive(line, line_no)
            elif line.startswith('func ') and line.endswith(':'):
                self.builder.func(line[5:-1].strip())
            elif line.endswith(':'):
                self._bind_label(line[:-1].strip(), line_no)
            else:
                self._instruction(line, line_no)
        self._resolve_pending()
        return self.builder.build(entry=entry)

    # ------------------------------------------------------------------

    def _directive(self, line, line_no):
        parts = line.split(None, 2)
        directive = parts[0]
        if directive == '.global':
            if len(parts) != 3:
                raise AsmError('.global NAME SIZE', line_no)
            name, size = parts[1], parts[2]
            self.globals[name] = self.builder.alloc_global(name,
                                                           int(size))
            self.builder.alloc_gap()
        elif directive == '.string':
            if len(parts) != 3 or not parts[2].startswith('"'):
                raise AsmError('.string NAME "TEXT"', line_no)
            text = parts[2].strip()[1:-1]
            self.globals[parts[1]] = self.builder.alloc_string(text)
            self.builder.alloc_gap()
        elif directive == '.gap':
            self.builder.alloc_gap(int(parts[1]) if len(parts) > 1
                                   else 2)
        else:
            raise AsmError('unknown directive %s' % directive, line_no)

    def _bind_label(self, name, line_no):
        if name in self.labels and self.labels[name].address is not None:
            raise AsmError('label %r bound twice' % name, line_no)
        label = self.labels.setdefault(name, self.builder.new_label(name))
        if label.address is None:
            self.builder.bind(label)

    def _instruction(self, line, line_no):
        pred = False
        if line.startswith('p.'):
            pred = True
            line = line[2:]
        pieces = line.split(None, 1)
        op = pieces[0]
        if op not in ALL_OPS:
            raise AsmError('unknown opcode %r' % op, line_no)
        operand_text = pieces[1] if len(pieces) > 1 else ''
        operands = _split_operands(operand_text)

        if op == 'call':
            if len(operands) != 1:
                raise AsmError('call NAME', line_no)
            self.builder.call(operands[0])
            return
        if op == 'syscall':
            if len(operands) != 1:
                raise AsmError('syscall NAME', line_no)
            name = operands[0]
            code = _SYSCALLS.get(name)
            if code is None:
                try:
                    code = int(name)
                except ValueError:
                    raise AsmError('unknown syscall %r' % name, line_no)
            self.builder.emit('syscall', code, pred=pred)
            return

        values = [self._operand(op, index, text, line_no)
                  for index, text in enumerate(operands)]
        while len(values) < 3:
            values.append(None)
        self.builder.emit(op, values[0], values[1], values[2], pred=pred)

    # operand kinds per op: which positions are registers
    _REG_POSITIONS = {
        'li': (0,), 'mov': (0, 1), 'addi': (0, 1),
        'ld': (0, 1), 'st': (0, 1),
        'br': (0,), 'push': (0,), 'pop': (0,),
        'assert': (0,), 'malloc': (0, 1), 'free': (0,),
        'jmp': (),
    }

    def _operand(self, op, index, text, line_no):
        reg_positions = self._REG_POSITIONS.get(op, (0, 1, 2))
        if index in reg_positions:
            return self._register(text, line_no)
        if text.startswith('"') and text.endswith('"'):
            return text[1:-1]
        if text.startswith("'") and text.endswith("'") and len(text) == 3:
            return ord(text[1])
        try:
            return int(text, 0)
        except ValueError:
            pass
        if text in self.globals:
            return self.globals[text]
        # label reference (forward references land in _pending)
        label = self.labels.setdefault(text,
                                       self.builder.new_label(text))
        return label

    def _register(self, text, line_no):
        text = text.lower()
        if text in _REG_ALIASES:
            return _REG_ALIASES[text]
        if text.startswith('r'):
            try:
                index = int(text[1:])
            except ValueError:
                raise AsmError('bad register %r' % text, line_no)
            if 0 <= index < Reg.COUNT:
                return index
        raise AsmError('bad register %r' % text, line_no)

    def _resolve_pending(self):
        for name, label in self.labels.items():
            if label.address is None:
                raise AsmError('undefined label %r' % name, 0)


def assemble(source, name='asm', entry='main'):
    """Assemble source text into a runnable Program."""
    return Assembler(name).assemble(source, entry=entry)
