"""Program container: flattened code, functions, globals, branch edges."""

from __future__ import annotations



class BranchEdge:
    """One of the two edges of a conditional branch.

    ``taken`` is True for the edge followed when the condition register
    is non-zero (jump to the target), False for the fall-through edge.
    """

    __slots__ = ('branch_addr', 'taken', 'target')

    def __init__(self, branch_addr, taken, target):
        self.branch_addr = branch_addr
        self.taken = taken
        self.target = target

    @property
    def key(self):
        return (self.branch_addr, self.taken)

    def __repr__(self):
        kind = 'T' if self.taken else 'NT'
        return '<Edge %d:%s ->%d>' % (self.branch_addr, kind, self.target)


class BlankStructInfo:
    """Address/size of a compiler-emitted blank data structure.

    Section 4.4: the compiler creates one blank object per data type at
    program start; pointer fixes repoint null pointers at these objects
    so that NT-paths dereferencing them neither crash nor raise false
    positives.
    """

    __slots__ = ('type_name', 'address', 'size')

    def __init__(self, type_name, address, size):
        self.type_name = type_name
        self.address = address
        self.size = size


class Program:
    """An executable image for the simulator.

    Attributes:
        code: flat list of :class:`Instr`; instruction addresses are
            indices into this list.
        functions: function name -> entry address.
        entry: address execution starts at (the ``main`` wrapper).
        globals_size: number of data words reserved for globals
            (including string literals and blank structures).
        global_objects: list of ``(name, base_offset, size)`` tuples
            describing statically allocated objects, used by the memory
            checkers to build their interval maps.
        blank_structs: type name -> :class:`BlankStructInfo`.
        branch_edges: every conditional-branch edge in the program; the
            denominator of the branch-coverage metric.
        source_map: address -> human-readable location string.
    """

    def __init__(self, code, functions, entry, globals_size,
                 global_objects=None, blank_structs=None, source_map=None,
                 name='program', data_image=None):
        self.data_image = dict(data_image or {})
        self.code = code
        self.functions = dict(functions)
        self.entry = entry
        self.globals_size = globals_size
        self.global_objects = list(global_objects or [])
        self.blank_structs = dict(blank_structs or {})
        self.source_map = dict(source_map or {})
        self.name = name
        self.branch_edges = self._collect_edges()
        self.num_branches = sum(
            1 for instr in code if instr.op == 'br')

    def _collect_edges(self):
        edges = []
        for addr, instr in enumerate(self.code):
            if instr.op == 'br':
                edges.append(BranchEdge(addr, True, instr.b))
                edges.append(BranchEdge(addr, False, addr + 1))
        return edges

    @property
    def num_edges(self):
        return len(self.branch_edges)

    def location(self, addr):
        """Best-effort human-readable location for an address."""
        if addr in self.source_map:
            return self.source_map[addr]
        best_name, best_entry = '?', -1
        for name, entry in self.functions.items():
            if best_entry < entry <= addr:
                best_name, best_entry = name, entry
        return '%s+%d' % (best_name, addr - best_entry)

    def __repr__(self):
        return '<Program %s: %d instrs, %d functions, %d branch edges>' % (
            self.name, len(self.code), len(self.functions), self.num_edges)
