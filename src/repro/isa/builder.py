"""Programmatic assembler: build Programs with labels and functions.

The MiniC code generator and the hand-written test kernels both target
this builder rather than emitting raw instruction lists, so label and
function references are resolved in one place.
"""

from __future__ import annotations

from repro.isa.instructions import Instr
from repro.isa.program import Program


class Label:
    """A forward-referenceable code location."""

    __slots__ = ('name', 'address')

    def __init__(self, name):
        self.name = name
        self.address = None

    def __repr__(self):
        return '<Label %s @%s>' % (self.name, self.address)


class _FuncRef:
    __slots__ = ('name',)

    def __init__(self, name):
        self.name = name


class ProgramBuilder:
    """Accumulates instructions, then links them into a Program."""

    def __init__(self, name='program'):
        self.name = name
        self._code = []
        self._functions = {}
        self._label_counter = 0
        self._globals_size = 16      # cells 0..15 are the null guard
        self._global_objects = []
        self._blank_structs = {}
        self._source_map = {}
        self._current_func = None
        self.data_image = {}

    # ------------------------------------------------------------------
    # layout of the global data segment

    def alloc_global(self, name, size):
        """Reserve ``size`` data words; returns the base address."""
        if size <= 0:
            raise ValueError('global %r must have positive size' % name)
        base = self._globals_size
        self._globals_size += size
        self._global_objects.append((name, base, size))
        return base

    def alloc_gap(self, size=2):
        """Reserve unregistered guard words between global objects.

        Accesses landing here are classified as overruns by the memory
        checkers (Purify-style global red zones).
        """
        base = self._globals_size
        self._globals_size += size
        return base

    def alloc_string(self, text):
        """Store a NUL-terminated string in globals; returns base."""
        base = self.alloc_global('str:%r' % text[:16], len(text) + 1)
        for offset, char in enumerate(text):
            self.data_image[base + offset] = ord(char)
        self.data_image[base + len(text)] = 0
        return base

    def set_data(self, addr, value):
        self.data_image[addr] = value

    def register_blank_struct(self, info):
        self._blank_structs[info.type_name] = info

    @property
    def globals_size(self):
        return self._globals_size

    # ------------------------------------------------------------------
    # code emission

    @property
    def here(self):
        return len(self._code)

    def func(self, name):
        """Start a new function at the current address."""
        if name in self._functions:
            raise ValueError('duplicate function %r' % name)
        self._functions[name] = self.here
        self._current_func = name
        return self.here

    def new_label(self, hint='L'):
        self._label_counter += 1
        return Label('%s%d' % (hint, self._label_counter))

    def bind(self, label):
        if label.address is not None:
            raise ValueError('label %s bound twice' % label.name)
        label.address = self.here

    def emit(self, op, a=None, b=None, c=None, pred=False, note=None):
        instr = Instr(op, a, b, c, pred=pred)
        if note is not None:
            self._source_map[self.here] = '%s:%s' % (
                self._current_func or '?', note)
        self._code.append(instr)
        return instr

    def br(self, reg, label, pred=False, note=None):
        return self.emit('br', reg, label, pred=pred, note=note)

    def jmp(self, label, pred=False):
        return self.emit('jmp', label, pred=pred)

    def call(self, func_name):
        return self.emit('call', _FuncRef(func_name), func_name)

    # ------------------------------------------------------------------
    # linking

    def build(self, entry='main'):
        if entry not in self._functions:
            raise ValueError('no entry function %r' % entry)
        for addr, instr in enumerate(self._code):
            for field in ('a', 'b', 'c'):
                value = getattr(instr, field)
                if isinstance(value, Label):
                    if value.address is None:
                        raise ValueError('unbound label %s (instr %d)'
                                         % (value.name, addr))
                    setattr(instr, field, value.address)
                elif isinstance(value, _FuncRef):
                    if value.name not in self._functions:
                        raise ValueError('call to unknown function %r'
                                         % value.name)
                    setattr(instr, field, self._functions[value.name])
        return Program(
            self._code, self._functions, self._functions[entry],
            self._globals_size, global_objects=self._global_objects,
            blank_structs=self._blank_structs,
            source_map=self._source_map, name=self.name,
            data_image=self.data_image)
