"""PathExpander configuration.

Defaults follow the paper's experimental setup (Sections 6.1, 6.3):
``NTPathCounterThreshold = 5``, ``MaxNTPathLength = 1000`` (100 for the
small Siemens benchmarks), ``MaxNumNTPaths = 32``, 4-core CMP, spawn
overhead 20 cycles, squash overhead 10 cycles, and the Table 2 memory
hierarchy.

The software-implementation cost constants model the PIN-based
implementation of Section 5; they are calibrated against published
PIN/Valgrind overhead ranges (see DESIGN.md, "Fidelity losses"): a JIT
dilation on every instruction, an analysis routine on every branch (the
exercise-history hash table), per-instruction termination monitoring on
NT-paths, a context checkpoint per spawn and a restore-log entry per
sandboxed store.

Two knobs implement the paper's stated future work and are off by
default: ``sandbox_unsafe_events`` (OS support that lets NT-paths run
through syscalls speculatively, Section 3.2) and
``selection_random_rate`` (a random factor in NT-path selection that
recovers exercised-edge misses, Section 7.1).  ``explore_nt_from_nt``
enables the Section 4.2(3) ablation the paper evaluated and rejected.
"""

from __future__ import annotations

import os

# Execution backends (see repro.cpu.backend).  The process-wide default
# is 'fast'; REPRO_BACKEND overrides it (and, because environment
# variables propagate to pool workers, steers whole batch runs), and
# set_default_backend() overrides both -- the CLI uses it so one
# --backend flag reaches every job a command spawns.
BACKEND_CHOICES = ('reference', 'fast')

DEFAULT_BACKEND = 'fast'
_backend_override = None


def set_default_backend(backend):
    """Process-wide backend for configs that do not pin one."""
    global _backend_override
    if backend is not None and backend not in BACKEND_CHOICES:
        raise ValueError('bad backend %r' % backend)
    _backend_override = backend


def default_backend():
    if _backend_override is not None:
        return _backend_override
    env = os.environ.get('REPRO_BACKEND')
    if env:
        if env not in BACKEND_CHOICES:
            raise ValueError('bad REPRO_BACKEND %r' % env)
        return env
    return DEFAULT_BACKEND


class Mode:
    BASELINE = 'baseline'      # detector only, no PathExpander
    STANDARD = 'standard'      # Fig. 4(a): checkpoint & sequential NT-paths
    CMP = 'cmp'                # Fig. 4(b): NT-paths on idle cores
    SOFTWARE = 'software'      # Section 5: PIN-style implementation

    ALL = (BASELINE, STANDARD, CMP, SOFTWARE)


class PathExpanderConfig:
    """All knobs in one explicit bag; everything has a paper default."""

    def __init__(self,
                 mode=Mode.STANDARD,
                 backend=None,
                 nt_counter_threshold=5,
                 counter_reset_interval=1_000_000,
                 max_nt_path_length=1000,
                 max_num_nt_paths=32,
                 variable_fixing=True,
                 explore_nt_from_nt=False,
                 # paper future-work extensions
                 sandbox_unsafe_events=False,
                 selection_random_rate=0.0,
                 selection_random_seed=0xC0FFEE,
                 num_cores=4,
                 enable_cache_model=True,
                 max_instructions=50_000_000,
                 collect_nt_details=False,
                 # watchdog run budgets (None = unbounded); see
                 # repro.resilience.watchdog
                 max_wall_seconds=None,
                 max_cycles=None,
                 watchdog_interval=10_000,
                 # hardware costs (Table 2)
                 spawn_overhead=20,
                 squash_overhead=10,
                 l1_hit_latency=3,
                 l2_hit_latency=10,
                 l1_size_bytes=16384,
                 l1_ways=4,
                 l1_line_bytes=32,
                 btb_entries=2048,
                 btb_ways=2,
                 # software-implementation cost model (Section 5)
                 sw_dilation=5,
                 sw_branch_cost=50,
                 sw_nt_instr_cost=60,
                 sw_checkpoint_cost=5000,
                 sw_log_cost=30,
                 sw_restore_base=300,
                 sw_restore_per_entry=8):
        if mode not in Mode.ALL:
            raise ValueError('bad mode %r' % mode)
        self.mode = mode
        if backend is not None and backend not in BACKEND_CHOICES:
            raise ValueError('bad backend %r' % backend)
        # None = resolve default_backend() at engine-construction time,
        # so a config built before set_default_backend()/REPRO_BACKEND
        # takes effect still honours them (and job-cache keys stay
        # backend-independent: both backends produce identical results).
        self.backend = backend
        self.nt_counter_threshold = nt_counter_threshold
        self.counter_reset_interval = counter_reset_interval
        self.max_nt_path_length = max_nt_path_length
        self.max_num_nt_paths = max_num_nt_paths
        self.variable_fixing = variable_fixing
        self.explore_nt_from_nt = explore_nt_from_nt
        if not 0.0 <= selection_random_rate <= 1.0:
            raise ValueError('selection_random_rate must be in [0, 1]')
        self.sandbox_unsafe_events = sandbox_unsafe_events
        self.selection_random_rate = selection_random_rate
        self.selection_random_seed = selection_random_seed
        self.num_cores = num_cores
        self.enable_cache_model = enable_cache_model
        self.max_instructions = max_instructions
        self.collect_nt_details = collect_nt_details
        self.max_wall_seconds = max_wall_seconds
        self.max_cycles = max_cycles
        self.watchdog_interval = watchdog_interval
        self.spawn_overhead = spawn_overhead
        self.squash_overhead = squash_overhead
        self.l1_hit_latency = l1_hit_latency
        self.l2_hit_latency = l2_hit_latency
        self.l1_size_bytes = l1_size_bytes
        self.l1_ways = l1_ways
        self.l1_line_bytes = l1_line_bytes
        self.btb_entries = btb_entries
        self.btb_ways = btb_ways
        self.sw_dilation = sw_dilation
        self.sw_branch_cost = sw_branch_cost
        self.sw_nt_instr_cost = sw_nt_instr_cost
        self.sw_checkpoint_cost = sw_checkpoint_cost
        self.sw_log_cost = sw_log_cost
        self.sw_restore_base = sw_restore_base
        self.sw_restore_per_entry = sw_restore_per_entry

    @property
    def spawning_enabled(self):
        return self.mode != Mode.BASELINE

    @property
    def resolved_backend(self):
        """The backend to run with: pinned here, or the process default."""
        return self.backend if self.backend is not None \
            else default_backend()

    def replace(self, **overrides):
        """A copy of this config with some fields replaced."""
        fields = dict(self.__dict__)
        fields.update(overrides)
        return PathExpanderConfig(**fields)

    @classmethod
    def baseline(cls, **overrides):
        return cls(mode=Mode.BASELINE, **overrides)

    @classmethod
    def siemens(cls, mode=Mode.STANDARD, **overrides):
        """Paper setup for the small Siemens apps: MaxNTPathLength=100."""
        overrides.setdefault('max_nt_path_length', 100)
        return cls(mode=mode, **overrides)
