"""The PathExpander execution engine.

One engine drives all four modes:

* **baseline** -- run the program under the dynamic detector only;
* **standard** -- Fig. 4(a): at every selected branch, checkpoint, run
  the non-taken path in the sandbox, squash, resume (serialised, so
  NT-path cycles land on the primary core);
* **cmp** -- Fig. 4(b): identical functional behaviour, but NT-path
  cycles are placed on idle cores by :class:`~repro.core.cmp.CmpScheduler`
  and the primary core pays only the spawn overhead;
* **software** -- Section 5: identical algorithm; the run is re-costed
  with the PIN-style instrumentation model afterwards (see
  :mod:`repro.core.software`).
"""

from __future__ import annotations

from time import perf_counter

from repro.btb.btb import COUNTER_MAX, BranchTargetBuffer, _Entry
from repro.core.cmp import CmpScheduler
from repro.core.config import Mode, PathExpanderConfig
from repro.core.result import NTPathRecord, NTPathTermination, RunResult
from repro.core.selector import NTPathSelector
from repro.coverage.tracker import CoverageTracker
from repro.cpu.backend import make_interpreter
from repro.cpu.exceptions import ProgramExit, SimFault
from repro.cpu.state import Core
from repro.cpu.syscalls import IOContext
from repro.cpu.timing import CostModel
from repro.memory.allocator import HeapAllocator
from repro.memory.cache import Cache
from repro.memory.checkpoint import Checkpoint
from repro.memory.main_memory import MainMemory
from repro.resilience import events, get_injector
from repro.resilience.watchdog import Watchdog

_NT_VERSION = 1


class PathExpanderEngine:

    def __init__(self, program, detector=None, config=None, io=None,
                 memory_words=1 << 20, stack_words=1 << 16):
        self.program = program
        self.detector = detector
        self.config = config or PathExpanderConfig()
        self.io = io or IOContext()

        self.memory = MainMemory(size=memory_words,
                                 globals_size=program.globals_size,
                                 stack_words=stack_words)
        for addr, value in program.data_image.items():
            self.memory.cells[addr] = value
        self.allocator = HeapAllocator(self.memory.heap_base,
                                       self.memory.stack_limit)
        self.core = Core()
        self.core.reset(program.entry, self.memory.stack_top)

        cfg = self.config
        self.costs = CostModel(l1_hit=cfg.l1_hit_latency,
                               l2_hit=cfg.l2_hit_latency,
                               spawn_overhead=cfg.spawn_overhead,
                               squash_overhead=cfg.squash_overhead)
        if cfg.enable_cache_model:
            self.cache = Cache(size_bytes=cfg.l1_size_bytes,
                               ways=cfg.l1_ways,
                               line_bytes=cfg.l1_line_bytes,
                               hit_latency=cfg.l1_hit_latency,
                               miss_latency=cfg.l2_hit_latency)
        else:
            self.cache = None
        self.btb = BranchTargetBuffer(entries=cfg.btb_entries,
                                      ways=cfg.btb_ways)
        self.coverage = CoverageTracker(program)
        self.selector = NTPathSelector(self.btb, cfg)
        self.scheduler = None
        if cfg.mode == Mode.CMP:
            self.scheduler = CmpScheduler(cfg.num_cores,
                                          cfg.max_num_nt_paths,
                                          cfg.spawn_overhead,
                                          cfg.squash_overhead)

        if detector is not None and hasattr(detector, 'attach'):
            detector.attach(program, self.memory, self.allocator)

        self.backend = cfg.resolved_backend
        self.interp = make_interpreter(self.backend, program,
                                       self.memory, self.allocator,
                                       self.core, self.io, self.costs,
                                       cache=self.cache,
                                       detector=detector,
                                       on_branch=self._on_branch)
        self.interp.sandbox_unsafe = cfg.sandbox_unsafe_events
        self.result = RunResult(program, self.config, detector)
        self.result.total_edges = program.num_edges
        self._in_nt = False
        self._spawning = cfg.spawning_enabled
        self._explore_from_nt = cfg.explore_nt_from_nt
        # Hot-path bindings for _on_branch (it runs at every retired
        # branch): the packed coverage sets and the selector's policy
        # constants, so the common no-spawn outcome touches no
        # intermediate objects.
        self._taken_edges = self.coverage._taken
        self._nt_edges = self.coverage._nt
        self._threshold = self.selector.threshold
        self._random_rate = self.selector.random_rate
        self._btb_sets = self.btb._sets
        self._btb_num_sets = self.btb.num_sets
        self._btb_ways = self.btb.ways
        self._nt_cache_pool = None
        self._nt_forced_edges = set()
        self.nt_store_count = 0
        # Reused across every spawn: capturing into a preallocated
        # checkpoint keeps the spawn hot path allocation-free.
        self._checkpoint = Checkpoint()
        injector = get_injector()
        self._checkpoint_injector = injector \
            if injector is not None \
            and injector.plan.has_site('checkpoint.corrupt') else None
        # Wall-clock seconds spent stepping inside NT-paths (not
        # serialized -- benchmark instrumentation only).
        self.nt_wall_seconds = 0.0

    # ==================================================================

    def run(self):
        """Execute the monitored run; returns the :class:`RunResult`."""
        result = self.result
        interp = self.interp
        limit = self.config.max_instructions
        # Fused blocks honour the budget themselves (they refuse to
        # overshoot it); drive_taken's loop check lands on exactly the
        # same truncation point either way.
        interp.instret_limit = limit
        try:
            reason = self._drive(limit)
            result.truncated = True
            result.truncation_reason = reason
        except ProgramExit as exit_:
            result.exit_code = exit_.code
        except SimFault as fault:
            result.crashed = True
            result.crash_kind = fault.kind
        self._finalize()
        return result

    def _drive(self, limit):
        """Run the taken path to the instruction budget; returns the
        truncation reason.

        With a watchdog armed (run budgets in the config, or an
        ambient job deadline installed by the pool) the drive is
        chunked into ``check_interval``-instruction slices with a
        deadman poll between slices; the dispatched instruction
        sequence is identical either way, so watchdog-off and
        watchdog-on runs that finish produce the same result.
        """
        interp = self.interp
        watchdog = Watchdog.for_config(self.config)
        if watchdog is None:
            interp.drive_taken(limit)
            return 'instructions'
        core = self.core
        interval = watchdog.check_interval
        while True:
            chunk = core.instret + interval
            if chunk >= limit:
                interp.drive_taken(limit)
                return 'instructions'
            interp.drive_taken(chunk)
            reason = watchdog.poll(core)  # raises WatchdogTimeout
            if reason is not None:
                events.record('watchdog_truncated', reason=reason,
                              program=self.program.name,
                              instret=core.instret,
                              cycles=core.cycles)
                return reason

    def _finalize(self):
        result = self.result
        result.instret_taken = self.core.instret - result.instret_nt
        result.primary_cycles = self.core.cycles
        if self.scheduler is not None:
            result.cycles = max(self.core.cycles, self.scheduler.last_end)
        else:
            result.cycles = self.core.cycles
        taken_edges, covered_edges = self.coverage.edge_sets()
        result.baseline_covered = len(taken_edges)
        result.total_covered = len(covered_edges)
        result.taken_edges = taken_edges
        result.covered_edges = covered_edges
        if self.detector is not None:
            result.reports = list(self.detector.reports)
        result.output = self.io.output_text
        result.int_output = list(self.io.int_output)
        result.nt_store_count = self.nt_store_count

    # ==================================================================
    # branch handling: coverage, BTB, NT-path spawning

    def _on_branch(self, addr, taken, instr):
        if self._in_nt:
            self.result.nt_branch_count += 1
            self._nt_edges.add(addr << 1 | taken)
            if self._explore_from_nt:
                self._maybe_force_edge(addr, taken, instr)
            return
        self.result.taken_branch_count += 1
        self._taken_edges.add(addr << 1 | taken)
        # BranchTargetBuffer.observe_edge inlined (same reason as the
        # selector inline below; btb.py holds the reference copy and
        # the LRU-equivalence argument).
        btb = self.btb
        tick = btb._tick + 1
        btb._tick = tick
        entries = self._btb_sets[addr % self._btb_num_sets]
        for entry in entries:
            if entry.addr == addr:
                entry.lru = tick
                break
        else:
            if len(entries) >= self._btb_ways:
                victim = min(entries, key=lambda e: e.lru)
                entries.remove(victim)
                btb.evictions += 1
            entry = _Entry(addr, tick)
            entries.append(entry)
        if taken:
            if entry.taken_count < COUNTER_MAX:
                entry.taken_count += 1
        elif entry.nt_count < COUNTER_MAX:
            entry.nt_count += 1
        if not self._spawning:
            return
        selector = self.selector
        instret = self.core.instret
        # The periodic counter reset must precede the CMP busy check
        # (the reference path ran observe_retired unconditionally).
        if instret >= selector.next_reset:
            selector.reset_now(instret)
        if self.scheduler is not None \
                and not self.scheduler.slot_free(self.core.cycles):
            self.result.nt_skipped_busy += 1
            return
        nt_taken = not taken
        # NTPathSelector.consider inlined: the spawn decision runs at
        # every retired taken-path branch, and the no-spawn outcome
        # must cost no more than a counter compare.
        selector.considered += 1
        count = entry.taken_count if nt_taken else entry.nt_count
        if count >= self._threshold:
            if self._random_rate <= 0.0 \
                    or selector._next_random() >= self._random_rate:
                return
            selector.random_selected += 1
        selector.selected += 1
        # Entering the NT-path exercises the edge (Section 4.2(1)).
        if nt_taken:
            if entry.taken_count < COUNTER_MAX:
                entry.taken_count += 1
        elif entry.nt_count < COUNTER_MAX:
            entry.nt_count += 1
        target = instr.b if nt_taken else addr + 1
        self._run_nt_path(addr, nt_taken, target)

    def _maybe_force_edge(self, addr, taken, instr):
        """Ablation (Section 4.2(3)): explore non-taken edges *from*
        NT-paths by forcing each not-yet-covered opposite edge once.

        The forced direction compounds the state inconsistency (no
        variable fix is applied), which is why the paper measured a
        much higher early-crash ratio with this policy and rejected it.
        """
        other = not taken
        key = (addr, other)
        if key in self._nt_forced_edges:
            return
        if self.btb.edge_count(addr, other) == 0:
            self._nt_forced_edges.add(key)
            self.core.pc = instr.b if other else addr + 1
            self.coverage.record_nt(addr, other)

    # ==================================================================
    # NT-path lifecycle (Section 4.2(2)-(3))

    def _run_nt_path(self, branch_addr, edge_taken, target):
        config = self.config
        core = self.core
        interp = self.interp
        result = self.result

        result.nt_spawned += 1
        # The forced edge itself is executed (in the sandbox) and
        # therefore observed by the detector: it counts as covered.
        self.coverage.record_nt(branch_addr, edge_taken)
        cycles_at_spawn = core.cycles
        instret_at_spawn = core.instret
        stores_at_spawn = interp.store_count

        checkpoint = self._checkpoint
        checkpoint.capture(core)
        if self._checkpoint_injector is not None and \
                self._checkpoint_injector.poll('checkpoint.corrupt') \
                is not None:
            checkpoint.corrupt()
        self.allocator.begin_txn()
        self.memory.begin_journal()
        io_snapshot = self.io.snapshot() \
            if config.sandbox_unsafe_events else None
        saved_cache = interp.cache
        if self.scheduler is not None and interp.cache is not None:
            interp.cache = self._borrow_nt_cache()

        core.pc = target
        core.pred = config.variable_fixing
        nt_limit = instret_at_spawn + config.max_nt_path_length
        interp.enter_nt(_NT_VERSION, nt_limit)
        self._in_nt = True
        self._nt_forced_edges.clear()

        reason = NTPathTermination.LENGTH
        step = interp.step_fast
        started = perf_counter()
        try:
            while core.instret < nt_limit:
                event = step()
                if event is not None:
                    reason = (NTPathTermination.UNSAFE
                              if event == 'unsafe'
                              else NTPathTermination.OVERFLOW)
                    break
        except SimFault:
            reason = NTPathTermination.CRASH
        except ProgramExit:
            reason = NTPathTermination.PROGRAM_END
        self.nt_wall_seconds += perf_counter() - started

        length = core.instret - instret_at_spawn
        nt_cycles = core.cycles - cycles_at_spawn
        self.nt_store_count += interp.store_count - stores_at_spawn

        # squash: memory rollback, register/allocator restore,
        # gang-invalidation of volatile cache lines
        entries = self.memory.rollback()
        result.journal_entries_total += entries
        checkpoint.restore(core)
        self.allocator.rollback_txn()
        if io_snapshot is not None:
            self.io.restore(io_snapshot)
        self._in_nt = False
        interp.exit_nt()

        if self.scheduler is not None:
            if interp.cache is not None:
                interp.cache = saved_cache
            core.cycles = cycles_at_spawn + config.spawn_overhead
            self.scheduler.commit(cycles_at_spawn, nt_cycles)
        else:
            if interp.cache is not None:
                interp.cache.gang_invalidate(_NT_VERSION)
            core.cycles = (cycles_at_spawn + config.spawn_overhead
                           + nt_cycles + config.squash_overhead)

        result.instret_nt += length
        result.count_termination(reason)
        if config.collect_nt_details:
            result.nt_details.append(NTPathRecord(
                branch_addr, edge_taken, length, reason,
                instret_at_spawn))

    def _borrow_nt_cache(self):
        """A cold L1 for the idle core running this NT-path (CMP)."""
        if self._nt_cache_pool is None:
            cfg = self.config
            self._nt_cache_pool = Cache(
                size_bytes=cfg.l1_size_bytes, ways=cfg.l1_ways,
                line_bytes=cfg.l1_line_bytes,
                hit_latency=cfg.l1_hit_latency,
                miss_latency=cfg.l2_hit_latency)
        else:
            self._nt_cache_pool.reset()
        return self._nt_cache_pool
