"""The PathExpander execution engine.

One engine drives all four modes:

* **baseline** -- run the program under the dynamic detector only;
* **standard** -- Fig. 4(a): at every selected branch, checkpoint, run
  the non-taken path in the sandbox, squash, resume (serialised, so
  NT-path cycles land on the primary core);
* **cmp** -- Fig. 4(b): identical functional behaviour, but NT-path
  cycles are placed on idle cores by :class:`~repro.core.cmp.CmpScheduler`
  and the primary core pays only the spawn overhead;
* **software** -- Section 5: identical algorithm; the run is re-costed
  with the PIN-style instrumentation model afterwards (see
  :mod:`repro.core.software`).
"""

from __future__ import annotations

from repro.btb.btb import BranchTargetBuffer
from repro.core.cmp import CmpScheduler
from repro.core.config import Mode, PathExpanderConfig
from repro.core.result import NTPathRecord, NTPathTermination, RunResult
from repro.core.selector import NTPathSelector
from repro.coverage.tracker import CoverageTracker
from repro.cpu.backend import make_interpreter
from repro.cpu.exceptions import ProgramExit, SimFault
from repro.cpu.state import Core
from repro.cpu.syscalls import IOContext
from repro.cpu.timing import CostModel
from repro.memory.allocator import HeapAllocator
from repro.memory.cache import Cache
from repro.memory.checkpoint import Checkpoint
from repro.memory.main_memory import MainMemory

_NT_VERSION = 1


class PathExpanderEngine:

    def __init__(self, program, detector=None, config=None, io=None,
                 memory_words=1 << 20, stack_words=1 << 16):
        self.program = program
        self.detector = detector
        self.config = config or PathExpanderConfig()
        self.io = io or IOContext()

        self.memory = MainMemory(size=memory_words,
                                 globals_size=program.globals_size,
                                 stack_words=stack_words)
        for addr, value in program.data_image.items():
            self.memory.cells[addr] = value
        self.allocator = HeapAllocator(self.memory.heap_base,
                                       self.memory.stack_limit)
        self.core = Core()
        self.core.reset(program.entry, self.memory.stack_top)

        cfg = self.config
        self.costs = CostModel(l1_hit=cfg.l1_hit_latency,
                               l2_hit=cfg.l2_hit_latency,
                               spawn_overhead=cfg.spawn_overhead,
                               squash_overhead=cfg.squash_overhead)
        if cfg.enable_cache_model:
            self.cache = Cache(size_bytes=cfg.l1_size_bytes,
                               ways=cfg.l1_ways,
                               line_bytes=cfg.l1_line_bytes,
                               hit_latency=cfg.l1_hit_latency,
                               miss_latency=cfg.l2_hit_latency)
        else:
            self.cache = None
        self.btb = BranchTargetBuffer(entries=cfg.btb_entries,
                                      ways=cfg.btb_ways)
        self.coverage = CoverageTracker(program)
        self.selector = NTPathSelector(self.btb, cfg)
        self.scheduler = None
        if cfg.mode == Mode.CMP:
            self.scheduler = CmpScheduler(cfg.num_cores,
                                          cfg.max_num_nt_paths,
                                          cfg.spawn_overhead,
                                          cfg.squash_overhead)

        if detector is not None and hasattr(detector, 'attach'):
            detector.attach(program, self.memory, self.allocator)

        self.backend = cfg.resolved_backend
        self.interp = make_interpreter(self.backend, program,
                                       self.memory, self.allocator,
                                       self.core, self.io, self.costs,
                                       cache=self.cache,
                                       detector=detector,
                                       on_branch=self._on_branch)
        self.interp.sandbox_unsafe = cfg.sandbox_unsafe_events
        self.result = RunResult(program, self.config, detector)
        self.result.total_edges = program.num_edges
        self._in_nt = False
        self._spawning = cfg.spawning_enabled
        self._nt_cache_pool = None
        self._nt_forced_edges = set()
        self.nt_store_count = 0

    # ==================================================================

    def run(self):
        """Execute the monitored run; returns the :class:`RunResult`."""
        result = self.result
        core = self.core
        interp = self.interp
        limit = self.config.max_instructions
        # Fused blocks honour the budget themselves (they refuse to
        # overshoot it); the loop check below lands on exactly the same
        # truncation point either way.
        interp.instret_limit = limit
        step = interp.step_fast
        try:
            while True:
                step()
                if core.instret >= limit:
                    result.truncated = True
                    break
        except ProgramExit as exit_:
            result.exit_code = exit_.code
        except SimFault as fault:
            result.crashed = True
            result.crash_kind = fault.kind
        self._finalize()
        return result

    def _finalize(self):
        result = self.result
        result.instret_taken = self.core.instret - result.instret_nt
        result.primary_cycles = self.core.cycles
        if self.scheduler is not None:
            result.cycles = max(self.core.cycles, self.scheduler.last_end)
        else:
            result.cycles = self.core.cycles
        result.baseline_covered = self.coverage.baseline_covered
        result.total_covered = self.coverage.total_covered
        result.taken_edges = self.coverage.taken_edge_keys
        result.covered_edges = self.coverage.covered_edge_keys
        if self.detector is not None:
            result.reports = list(self.detector.reports)
        result.output = self.io.output_text
        result.int_output = list(self.io.int_output)
        result.nt_store_count = self.nt_store_count

    # ==================================================================
    # branch handling: coverage, BTB, NT-path spawning

    def _on_branch(self, addr, taken, instr):
        if self._in_nt:
            self.result.nt_branch_count += 1
            self.coverage.record(addr, taken, True)
            if self.config.explore_nt_from_nt:
                self._maybe_force_edge(addr, taken, instr)
            return
        self.result.taken_branch_count += 1
        self.coverage.record(addr, taken, False)
        self.btb.record_edge(addr, taken)
        if not self._spawning:
            return
        self.selector.observe_retired(self.core.instret)
        if self.scheduler is not None \
                and not self.scheduler.slot_free(self.core.cycles):
            self.result.nt_skipped_busy += 1
            return
        nt_taken = not taken
        if self.selector.should_spawn(addr, nt_taken):
            target = instr.b if nt_taken else addr + 1
            self._run_nt_path(addr, nt_taken, target)

    def _maybe_force_edge(self, addr, taken, instr):
        """Ablation (Section 4.2(3)): explore non-taken edges *from*
        NT-paths by forcing each not-yet-covered opposite edge once.

        The forced direction compounds the state inconsistency (no
        variable fix is applied), which is why the paper measured a
        much higher early-crash ratio with this policy and rejected it.
        """
        other = not taken
        key = (addr, other)
        if key in self._nt_forced_edges:
            return
        if self.btb.edge_count(addr, other) == 0:
            self._nt_forced_edges.add(key)
            self.core.pc = instr.b if other else addr + 1
            self.coverage.record(addr, other, True)

    # ==================================================================
    # NT-path lifecycle (Section 4.2(2)-(3))

    def _run_nt_path(self, branch_addr, edge_taken, target):
        config = self.config
        core = self.core
        interp = self.interp
        result = self.result

        result.nt_spawned += 1
        # The forced edge itself is executed (in the sandbox) and
        # therefore observed by the detector: it counts as covered.
        self.coverage.record(branch_addr, edge_taken, True)
        cycles_at_spawn = core.cycles
        instret_at_spawn = core.instret
        stores_at_spawn = interp.store_count

        checkpoint = Checkpoint(core, self.allocator)
        self.memory.begin_journal()
        io_snapshot = self.io.snapshot() \
            if config.sandbox_unsafe_events else None
        saved_cache = interp.cache
        if self.scheduler is not None and interp.cache is not None:
            interp.cache = self._borrow_nt_cache()

        core.pc = target
        core.pred = config.variable_fixing
        interp.in_nt_path = True
        interp.cache_version = _NT_VERSION
        self._in_nt = True
        self._nt_forced_edges.clear()

        reason = NTPathTermination.LENGTH
        max_len = config.max_nt_path_length
        try:
            while core.instret - instret_at_spawn < max_len:
                event = interp.step()
                if event is not None:
                    reason = (NTPathTermination.UNSAFE
                              if event == 'unsafe'
                              else NTPathTermination.OVERFLOW)
                    break
        except SimFault:
            reason = NTPathTermination.CRASH
        except ProgramExit:
            reason = NTPathTermination.PROGRAM_END

        length = core.instret - instret_at_spawn
        nt_cycles = core.cycles - cycles_at_spawn
        self.nt_store_count += interp.store_count - stores_at_spawn

        # squash: memory rollback, register/allocator restore,
        # gang-invalidation of volatile cache lines
        entries = self.memory.rollback()
        result.journal_entries_total += entries
        checkpoint.restore(core, self.allocator)
        if io_snapshot is not None:
            self.io.restore(io_snapshot)
        self._in_nt = False
        interp.in_nt_path = False
        interp.cache_version = 0

        if self.scheduler is not None:
            if interp.cache is not None:
                interp.cache = saved_cache
            core.cycles = cycles_at_spawn + config.spawn_overhead
            self.scheduler.commit(cycles_at_spawn, nt_cycles)
        else:
            if interp.cache is not None:
                interp.cache.gang_invalidate(_NT_VERSION)
            core.cycles = (cycles_at_spawn + config.spawn_overhead
                           + nt_cycles + config.squash_overhead)

        result.instret_nt += length
        result.count_termination(reason)
        if config.collect_nt_details:
            result.nt_details.append(NTPathRecord(
                branch_addr, edge_taken, length, reason,
                instret_at_spawn))

    def _borrow_nt_cache(self):
        """A cold L1 for the idle core running this NT-path (CMP)."""
        if self._nt_cache_pool is None:
            cfg = self.config
            self._nt_cache_pool = Cache(
                size_bytes=cfg.l1_size_bytes, ways=cfg.l1_ways,
                line_bytes=cfg.l1_line_bytes,
                hit_latency=cfg.l1_hit_latency,
                miss_latency=cfg.l2_hit_latency)
        else:
            self._nt_cache_pool.reset()
        return self._nt_cache_pool
