"""Detailed CMP engine: true multi-core interleaving (Fig. 4b + Fig. 6).

Where :class:`~repro.core.engine.PathExpanderEngine` (mode ``cmp``)
executes NT-paths inline and *models* their placement on idle cores,
this engine actually simulates the concurrent execution the paper's
TLS-based hardware performs:

* the primary core and up to ``num_cores - 1`` NT-path cores step in
  cycle order (the lowest-local-clock context advances next);
* while NT-paths are outstanding, taken-path stores land in
  **segment overlays** -- one per spawn-delimited taken-path segment --
  instead of committed memory (the uncommitted versions of Fig. 6);
* every context reads through its version chain: its own buffer, then
  the segments that existed when it started, then committed memory;
* a segment commits (its overlay merges into committed memory) only
  when its parent segment has committed *and* its sibling NT-path has
  squashed -- the commit-token / squash-token protocol;
* a segment whose write buffer outgrows the L1 dirty capacity forces a
  commit, squashing its sibling NT-path immediately (the paper's
  displacement rule).

The engine produces the same detections and coverage as the standard
configuration (the NT-paths observe identical memory snapshots); what
it adds is an independently derived cycle count that validates the
scheduling model -- see ``run_val_cmp_model`` in the harness.
"""

from __future__ import annotations

from repro.btb.btb import BranchTargetBuffer
from repro.core.config import Mode, PathExpanderConfig
from repro.core.result import NTPathRecord, NTPathTermination, RunResult
from repro.core.selector import NTPathSelector
from repro.coverage.tracker import CoverageTracker
from repro.cpu.backend import make_interpreter
from repro.cpu.exceptions import ProgramExit, SimFault
from repro.cpu.state import Core
from repro.cpu.syscalls import IOContext
from repro.cpu.timing import CostModel
from repro.memory.allocator import HeapAllocator
from repro.memory.cache import Cache
from repro.memory.main_memory import MainMemory

_NT_VERSION = 1


class _Segment:
    """One uncommitted taken-path segment (Fig. 6)."""

    __slots__ = ('overlay', 'sibling_done', 'index')

    def __init__(self, index):
        self.overlay = {}
        self.sibling_done = False
        self.index = index


class _TakenView:
    """The primary core's memory interface.

    Writes go to the newest segment overlay while any segment is
    uncommitted; reads walk the full chain.  Mirrors the attributes of
    :class:`MainMemory` the interpreter touches.
    """

    def __init__(self, main, segments):
        self._main = main
        self._segments = segments
        self.stack_limit = main.stack_limit
        self.monitor_base = main.monitor_base
        self.monitor_limit = main.monitor_limit

    def read(self, addr):
        self._main._check(addr)
        for segment in reversed(self._segments):
            if addr in segment.overlay:
                return segment.overlay[addr]
        return self._main.cells[addr]

    def write(self, addr, value):
        self._main._check(addr)
        if self._segments and not (self.monitor_base <= addr
                                   < self.monitor_limit):
            self._segments[-1].overlay[addr] = value
        else:
            self._main.cells[addr] = value


class _NTView:
    """An NT-path core's memory interface: snapshot isolation.

    Sees the segments that existed at its spawn, buffers its own
    stores, and lets monitor-area stores through (error reports must
    survive the squash)."""

    def __init__(self, main, visible_segments):
        self._main = main
        self._visible = visible_segments
        self.buffer = {}
        self.stack_limit = main.stack_limit
        self.monitor_base = main.monitor_base
        self.monitor_limit = main.monitor_limit

    def read(self, addr):
        self._main._check(addr)
        if addr in self.buffer:
            return self.buffer[addr]
        for segment in reversed(self._visible):
            if addr in segment.overlay:
                return segment.overlay[addr]
        return self._main.cells[addr]

    def write(self, addr, value):
        self._main._check(addr)
        if self.monitor_base <= addr < self.monitor_limit:
            self._main.cells[addr] = value
        else:
            self.buffer[addr] = value


class _NTContext:
    """One in-flight NT-path on an idle core."""

    __slots__ = ('core', 'interp', 'view', 'segment', 'record_info',
                 'instret_start', 'max_instret')

    def __init__(self, core, interp, view, segment, record_info,
                 max_len):
        self.core = core
        self.interp = interp
        self.view = view
        self.segment = segment          # sibling taken-path segment
        self.record_info = record_info  # (branch_addr, edge, instret)
        self.instret_start = core.instret
        self.max_instret = core.instret + max_len


class DetailedCmpEngine:
    """Cycle-interleaved CMP simulation of PathExpander."""

    def __init__(self, program, detector=None, config=None, io=None,
                 memory_words=1 << 20, stack_words=1 << 16,
                 segment_capacity_words=512):
        self.program = program
        self.detector = detector
        self.config = config or PathExpanderConfig(mode=Mode.CMP)
        self.io = io or IOContext()
        self.segment_capacity_words = segment_capacity_words

        cfg = self.config
        self.memory = MainMemory(size=memory_words,
                                 globals_size=program.globals_size,
                                 stack_words=stack_words)
        for addr, value in program.data_image.items():
            self.memory.cells[addr] = value
        self.allocator = HeapAllocator(self.memory.heap_base,
                                       self.memory.stack_limit)
        self.costs = CostModel(l1_hit=cfg.l1_hit_latency,
                               l2_hit=cfg.l2_hit_latency,
                               spawn_overhead=cfg.spawn_overhead,
                               squash_overhead=cfg.squash_overhead)
        self.btb = BranchTargetBuffer(entries=cfg.btb_entries,
                                      ways=cfg.btb_ways)
        self.coverage = CoverageTracker(program)
        self.selector = NTPathSelector(self.btb, cfg)

        if detector is not None and hasattr(detector, 'attach'):
            detector.attach(program, self.memory, self.allocator)

        self._segments = []
        self._segment_counter = 0
        self._taken_view = _TakenView(self.memory, self._segments)

        self.primary = Core(core_id=0)
        self.primary.reset(program.entry, self.memory.stack_top)
        # Cycle interleaving with NT contexts needs per-instruction
        # stepping, so only the backends' predecoded ``step`` is used
        # here -- never fused blocks.
        self.backend = cfg.resolved_backend
        self.primary_interp = make_interpreter(
            self.backend, program, self._taken_view, self.allocator,
            self.primary, self.io, self.costs,
            cache=self._new_cache() if cfg.enable_cache_model else None,
            detector=detector, on_branch=self._on_primary_branch)

        self._nt_contexts = []
        self._nt_pending = []      # queued in free thread contexts
        self.result = RunResult(program, self.config, detector)
        self.result.total_edges = program.num_edges
        self._finished = False
        self._max_nt_cycles = 0

    def _new_cache(self):
        cfg = self.config
        return Cache(size_bytes=cfg.l1_size_bytes, ways=cfg.l1_ways,
                     line_bytes=cfg.l1_line_bytes,
                     hit_latency=cfg.l1_hit_latency,
                     miss_latency=cfg.l2_hit_latency)

    # ==================================================================

    def run(self):
        limit = self.config.max_instructions
        while not self._finished:
            context = self._next_context()
            if context is None:
                self._step_primary(limit)
            else:
                self._step_nt(context)
        # drain outstanding NT-paths after the program finishes
        while self._nt_contexts or self._nt_pending:
            while self._nt_pending and \
                    len(self._nt_contexts) < self.config.num_cores - 1:
                self._activate_pending(self.primary.cycles)
            self._step_nt(min(self._nt_contexts,
                              key=lambda c: c.core.cycles))
        self._commit_ready_segments(force_all=True)
        self._finalize()
        return self.result

    def _next_context(self):
        """The NT context strictly behind the primary clock, if any."""
        best = None
        for context in self._nt_contexts:
            if context.core.cycles < self.primary.cycles:
                if best is None or context.core.cycles \
                        < best.core.cycles:
                    best = context
        return best

    # ------------------------------------------------------------------

    def _step_primary(self, limit):
        try:
            self.primary_interp.step()
            if self.primary.instret >= limit:
                self.result.truncated = True
                self._finished = True
        except ProgramExit as exit_:
            self.result.exit_code = exit_.code
            self._finished = True
        except SimFault as fault:
            self.result.crashed = True
            self.result.crash_kind = fault.kind
            self._finished = True

    def _step_nt(self, context):
        reason = None
        try:
            event = context.interp.step()
            if event == 'unsafe':
                reason = NTPathTermination.UNSAFE
            elif event == 'overflow':
                reason = NTPathTermination.OVERFLOW
            elif context.core.instret >= context.max_instret:
                reason = NTPathTermination.LENGTH
        except SimFault:
            reason = NTPathTermination.CRASH
        except ProgramExit:
            reason = NTPathTermination.PROGRAM_END
        if reason is not None:
            self._squash_nt(context, reason)

    def _activate_pending(self, free_time):
        """Move one queued NT-path onto the freed core."""
        if not self._nt_pending:
            return
        context = self._nt_pending.pop(0)
        if context.core.cycles < free_time:
            context.core.cycles = free_time
        self._nt_contexts.append(context)

    def _squash_nt(self, context, reason):
        context.core.cycles += self.config.squash_overhead
        self._nt_contexts.remove(context)
        self._activate_pending(context.core.cycles)
        context.segment.sibling_done = True
        branch_addr, edge_taken, spawn_instret = context.record_info
        length = context.core.instret - context.instret_start
        self.result.instret_nt += length
        self.result.count_termination(reason)
        self.result.journal_entries_total += len(context.view.buffer)
        if self.config.collect_nt_details:
            self.result.nt_details.append(NTPathRecord(
                branch_addr, edge_taken, length, reason, spawn_instret))
        if context.core.cycles > self._max_nt_cycles:
            self._max_nt_cycles = context.core.cycles
        self._commit_ready_segments()

    # ------------------------------------------------------------------
    # segments: creation, forced commit, ordered commit

    def _commit_ready_segments(self, force_all=False):
        while self._segments:
            segment = self._segments[0]
            if not segment.sibling_done and not force_all:
                break
            for addr, value in segment.overlay.items():
                self.memory.cells[addr] = value
            self._segments.pop(0)

    def _maybe_force_commit(self):
        """Displacement rule: an overgrown oldest segment forces its
        commit, squashing the sibling NT-path immediately."""
        while self._segments and \
                len(self._segments[0].overlay) \
                > self.segment_capacity_words:
            segment = self._segments[0]
            if not segment.sibling_done:
                sibling = next((c for c in self._nt_contexts
                                if c.segment is segment), None)
                if sibling is not None:
                    self._squash_nt(sibling, NTPathTermination.OVERFLOW)
                segment.sibling_done = True
                self.result.forced_segment_commits += 1
            self._commit_ready_segments()
            if self._segments and self._segments[0] is segment:
                break   # still blocked (shouldn't happen)

    # ------------------------------------------------------------------
    # branch handling

    def _on_primary_branch(self, addr, taken, instr):
        self.result.taken_branch_count += 1
        self.coverage.record_taken(addr, taken)
        entry = self.btb.observe_edge(addr, taken)
        selector = self.selector
        instret = self.primary.instret
        # Counter reset must precede the busy check, as in the
        # reference observe_retired-then-busy ordering.
        if instret >= selector.next_reset:
            selector.reset_now(instret)
        self._maybe_force_commit()
        nt_taken = not taken
        outstanding = len(self._nt_contexts) + len(self._nt_pending)
        if outstanding >= self.config.max_num_nt_paths:
            count = entry.taken_count if nt_taken else entry.nt_count
            if count < selector.threshold:
                self.result.nt_skipped_busy += 1
            return
        if selector.consider(entry, nt_taken):
            target = instr.b if nt_taken else addr + 1
            self._spawn_nt(addr, nt_taken, target)

    def _on_nt_branch(self, interp):
        def hook(addr, taken, _instr):
            self.result.nt_branch_count += 1
            self.coverage.record_nt(addr, taken)
        return hook

    def _spawn_nt(self, branch_addr, edge_taken, target):
        config = self.config
        self.result.nt_spawned += 1
        self.coverage.record_nt(branch_addr, edge_taken)
        self.primary.cycles += config.spawn_overhead

        # new taken-path segment whose sibling is this NT-path
        self._segment_counter += 1
        segment = _Segment(self._segment_counter)

        core = Core(core_id=len(self._nt_contexts) + 1)
        core.regs[:] = self.primary.regs
        core.pc = target
        core.pred = config.variable_fixing
        core.call_depth = self.primary.call_depth
        core.cycles = self.primary.cycles
        core.instret = 0
        core.lcg_state = self.primary.lcg_state

        view = _NTView(self.memory, tuple(self._segments))
        self._segments.append(segment)

        interp = make_interpreter(self.backend, self.program, view,
                                  self.allocator.clone(), core,
                                  self.io, self.costs,
                                  cache=self._new_cache()
                                  if config.enable_cache_model else None,
                                  detector=self.detector)
        interp.on_branch = self._on_nt_branch(interp)
        # NT interpreters here are stepped per-instruction for cycle
        # interleaving (never through fused blocks), and live for one
        # path only: enter_nt is never paired with exit_nt.
        interp.enter_nt(_NT_VERSION, config.max_nt_path_length)

        context = _NTContext(
            core, interp, view, segment,
            (branch_addr, edge_taken, self.primary.instret),
            config.max_nt_path_length)
        if len(self._nt_contexts) < config.num_cores - 1:
            self._nt_contexts.append(context)
        else:
            self._nt_pending.append(context)

    # ------------------------------------------------------------------

    def _finalize(self):
        result = self.result
        result.instret_taken = self.primary.instret
        result.primary_cycles = self.primary.cycles
        result.cycles = max(self.primary.cycles, self._max_nt_cycles)
        taken_edges, covered_edges = self.coverage.edge_sets()
        result.baseline_covered = len(taken_edges)
        result.total_covered = len(covered_edges)
        result.taken_edges = taken_edges
        result.covered_edges = covered_edges
        if self.detector is not None:
            result.reports = list(self.detector.reports)
        result.output = self.io.output_text
        result.int_output = list(self.io.int_output)
