"""CMP-optimisation scheduling model (Section 4.3).

Functionally, an NT-path reads exactly the memory state that existed at
its spawn point (its parent segment's version), and its effects vanish
on squash.  Executing the NT-path *inline at the spawn point* therefore
produces bit-identical detection and coverage results to a truly
parallel execution -- what the CMP option changes is only *where the cycles go*.

This module models the "where": NT-paths occupy idle cores while the
primary core pays only the 20-cycle register-copy spawn overhead.  The
engine executes each NT-path inline (for functional fidelity), measures
its duration on a cold per-core cache, and hands the duration to this
scheduler, which places it on the idle-core timeline:

* ``num_cores - 1`` cores are available for NT-paths;
* at most ``MaxNumNTPaths`` may be outstanding -- beyond that the
  non-taken edge is simply not spawned (paper behaviour);
* if every core is busy but a slot is free, the path queues in a free
  thread context behind the earliest completion (approximation: queued
  paths stack behind the current earliest end; see DESIGN.md).
"""

from __future__ import annotations

import heapq


class CmpScheduler:

    def __init__(self, num_cores, max_num_nt_paths, spawn_overhead,
                 squash_overhead):
        if num_cores < 2:
            raise ValueError('CMP optimisation needs at least 2 cores')
        self.nt_cores = num_cores - 1
        self.max_paths = max_num_nt_paths
        self.spawn_overhead = spawn_overhead
        self.squash_overhead = squash_overhead
        self._core_free = []      # heap of per-core availability times
        self._ends = []           # heap of outstanding NT end times
        self.last_end = 0
        self.queued = 0
        self.peak_outstanding = 0

    def _expire(self, now):
        ends = self._ends
        while ends and ends[0] <= now:
            heapq.heappop(ends)

    def slot_free(self, now):
        """Is a thread context available at primary-core time ``now``?
        (Paths beyond the core count queue in free thread contexts, up
        to MaxNumNTPaths outstanding.)"""
        self._expire(now)
        return len(self._ends) < self.max_paths

    def commit(self, now, duration):
        """Place a measured NT-path on the idle-core timeline.

        Each of the ``num_cores - 1`` NT cores is modelled by its next
        availability time; a queued path starts when the earliest core
        frees (matching the detailed engine's thread-context queue)."""
        self._expire(now)
        start = now + self.spawn_overhead
        if len(self._core_free) < self.nt_cores:
            heapq.heappush(self._core_free, 0)
        earliest = heapq.heappop(self._core_free)
        if earliest > start:
            start = earliest
            self.queued += 1
        end = start + duration + self.squash_overhead
        heapq.heappush(self._core_free, end)
        heapq.heappush(self._ends, end)
        if len(self._ends) > self.peak_outstanding:
            self.peak_outstanding = len(self._ends)
        if end > self.last_end:
            self.last_end = end
        return end
