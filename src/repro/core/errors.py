"""Structured exception taxonomy for the whole harness.

Every failure the harness can produce is classifiable: each exception
class carries a stable ``kind`` string plus a free-form ``details``
dict, and :func:`classify` maps *any* exception (ours or foreign) onto
one of those kind strings.  The job layer stamps the kind onto its
failure events, so a batch's JSONL audit trail attributes every retry,
quarantine and degradation to a machine-readable cause instead of an
opaque ``repr``.

The taxonomy replaces the ad-hoc ``RuntimeError``\\ s that used to mark
internal invariant violations (memory-journal misuse, checkpoint
corruption, job failures); ``SimFault``/``ProgramExit`` stay separate
on purpose -- they model *simulated machine* behaviour, not harness
failures (see :mod:`repro.cpu.exceptions`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for structured harness failures.

    ``kind`` is a stable, machine-readable failure class; ``details``
    carries whatever site-specific context the raiser attached
    (program name, fault site, spec key, ...).
    """

    kind = 'harness_error'

    def __init__(self, message='', **details):
        super().__init__(message or self.kind)
        self.details = details

    def to_dict(self):
        return {'kind': self.kind, 'message': str(self),
                'details': dict(self.details)}


class EngineError(ReproError):
    """An internal error escaped an engine run (not a simulated fault)."""

    kind = 'engine_internal'


class WatchdogTimeout(ReproError):
    """An ambient (job-level) deadline expired inside an engine run.

    Raised -- not truncated -- so the job layer can account for it the
    same way the pooled per-job timeout is accounted for.
    """

    kind = 'watchdog_timeout'


class CheckpointCorruption(ReproError):
    """A spawn checkpoint failed its integrity check at restore time."""

    kind = 'checkpoint_corrupt'


class CacheCorruption(ReproError):
    """An on-disk result-cache record failed validation."""

    kind = 'cache_corrupt'


class WorkerCrash(ReproError):
    """A job-pool worker died (or was made to die) mid-job."""

    kind = 'worker_crash'


class JournalError(ReproError, RuntimeError):
    """Memory-journal protocol misuse (begin/rollback imbalance).

    Also a ``RuntimeError`` for compatibility with callers that caught
    the ad-hoc errors this class replaced.
    """

    kind = 'journal_state'


class InjectedFault(ReproError):
    """A fault deliberately raised by the fault-injection harness.

    Deliberately *not* a subclass of any recoverable simulator
    exception: injected faults must travel the same unexpected-error
    paths a real internal bug would.
    """

    kind = 'injected_fault'


class JobExecutionError(ReproError):
    """A job failed every allowed attempt.

    Always spec-attributed: carries the originating :class:`JobSpec`,
    its content-hash ``key`` and the total attempt count, whichever
    failure path (serial, pooled, broken-pool recovery) raised it.
    """

    kind = 'job_failed'

    def __init__(self, spec, attempts, reason):
        key = getattr(spec, 'key', None)
        super().__init__(
            'job %s failed after %d attempt(s): %s'
            % (spec, attempts, reason),
            key=key, attempts=attempts, reason=reason)
        self.spec = spec
        self.key = key
        self.attempts = attempts
        self.reason = reason


def classify(exc):
    """Map any exception to a stable failure-kind string."""
    if isinstance(exc, ReproError):
        return exc.kind
    # Late imports keep this module dependency-free (it sits below
    # everything else in the package graph).
    from repro.cpu.exceptions import ProgramExit, SimFault
    if isinstance(exc, SimFault):
        return 'sim_fault'
    if isinstance(exc, ProgramExit):
        return 'program_exit'
    try:
        from concurrent.futures import TimeoutError as FutureTimeout
        from concurrent.futures.process import BrokenProcessPool
        if isinstance(exc, BrokenProcessPool):
            return 'worker_crash'
        # Distinct from the builtin TimeoutError before Python 3.11.
        if isinstance(exc, FutureTimeout):
            return 'timeout'
    except ImportError:                          # pragma: no cover
        pass
    if isinstance(exc, TimeoutError):
        return 'timeout'
    if isinstance(exc, MemoryError):
        return 'resource_exhausted'
    if isinstance(exc, (OSError, IOError)):
        return 'os_error'
    if isinstance(exc, (ValueError, TypeError, KeyError, IndexError,
                        AttributeError)):
        return 'internal_bug'
    return 'unclassified'
