"""Software-PathExpander cost model (Section 5).

The pure-software implementation runs the same NT-path exploration
algorithm under a PIN-style dynamic instrumentation tool.  Our
reproduction executes the identical algorithm on the simulator (so the
detection/coverage results match the hardware runs exactly, as the
paper also reports) and then re-costs the run with the software
instrumentation model:

* every executed instruction pays the JIT/dispatch dilation;
* every taken-path branch pays the exercise-history hash-table lookup;
* every NT-path instruction additionally pays the termination-condition
  monitoring instrumentation;
* every spawn pays a full processor-context checkpoint;
* every sandboxed store pays a restore-log append, and every squash
  pays the log-replay rollback.

Constants live in :class:`~repro.core.config.PathExpanderConfig` and
are calibrated from published PIN overhead figures (DESIGN.md).
"""

from __future__ import annotations


def software_cycles(result, config):
    """Estimate the software implementation's cycle count for a run."""
    dilated = result.primary_cycles * config.sw_dilation
    branch_cost = (result.taken_branch_count + result.nt_branch_count) \
        * config.sw_branch_cost
    nt_monitor = result.instret_nt * config.sw_nt_instr_cost
    checkpoints = result.nt_spawned * config.sw_checkpoint_cost
    logging = result.nt_store_count * config.sw_log_cost
    rollback = (result.nt_spawned * config.sw_restore_base
                + result.journal_entries_total
                * config.sw_restore_per_entry)
    return (dilated + branch_cost + nt_monitor + checkpoints
            + logging + rollback)


def software_baseline_cycles(baseline_result, config):
    """PIN dilation applied to a run without PathExpander.

    The paper's software-vs-hardware comparison measures overhead
    against the *native* (uninstrumented) baseline, so the software
    implementation's overhead includes the instrumentation dilation of
    the taken path itself.
    """
    return (baseline_result.primary_cycles * config.sw_dilation
            + baseline_result.taken_branch_count * config.sw_branch_cost)


def apply_software_costs(result, config):
    """Mutate a run result so ``cycles`` reflects the software model."""
    result.cycles = software_cycles(result, config)
    return result
