"""PathExpander itself: configuration, engines, runner."""

from repro.core.config import Mode, PathExpanderConfig
from repro.core.engine import PathExpanderEngine
from repro.core.result import NTPathTermination, RunResult
from repro.core.runner import (make_detector, run_program, run_source,
                               run_with_and_without)

__all__ = ['Mode', 'PathExpanderConfig', 'PathExpanderEngine',
           'RunResult', 'NTPathTermination', 'run_program', 'run_source',
           'run_with_and_without', 'make_detector']
