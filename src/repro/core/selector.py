"""NT-path selection policy (Section 4.2(1)).

A non-taken branch edge is selected for NT-path exploration when its
BTB exercise counter is below ``NTPathCounterThreshold``.  Counters are
bumped on every taken-path execution of an edge *and* at every NT-path
entry, and are periodically reset so long-running programs keep
exploring as new program states emerge.

The paper additionally proposes "adding random factor into
PathExpander's NT-Path selection" to catch bugs whose entry edge was
intensively exercised before the bug-triggering state arose (its second
miss mechanism, e.g. the undetected bc bug).  The
``selection_random_rate`` extension implements this: a saturated edge
is still explored with that probability, using a deterministic
per-run generator.
"""

from __future__ import annotations

from repro.btb.btb import COUNTER_MAX

_MASK64 = (1 << 63) - 1


class NTPathSelector:

    def __init__(self, btb, config):
        self.btb = btb
        self.threshold = config.nt_counter_threshold
        self.reset_interval = config.counter_reset_interval
        self.random_rate = config.selection_random_rate
        self._rng_state = config.selection_random_seed | 1
        self.next_reset = self.reset_interval
        self.resets = 0
        self.considered = 0
        self.selected = 0
        self.random_selected = 0

    def _next_random(self):
        self._rng_state = (self._rng_state * 6364136223846793005
                           + 1442695040888963407) & _MASK64
        return ((self._rng_state >> 17) & 0xFFFFFF) / float(1 << 24)

    def reset_now(self, instret):
        """Periodic BTB counter reset, due when ``instret`` reaches
        :attr:`next_reset` (the engines inline that comparison)."""
        self.btb.reset_counters()
        self.resets += 1
        self.next_reset = instret + self.reset_interval

    def observe_retired(self, instret):
        """Periodic counter reset, driven by retired instructions."""
        if instret >= self.next_reset:
            self.reset_now(instret)

    def consider(self, entry, nt_edge_taken):
        """:meth:`should_spawn` against an already-looked-up BTB entry.

        The engines obtain ``entry`` from
        :meth:`BranchTargetBuffer.observe_edge` on the same branch, so
        reading/bumping its counters directly is exactly the reference
        ``edge_count`` + ``record_edge`` sequence minus the redundant
        lookups.
        """
        self.considered += 1
        count = entry.taken_count if nt_edge_taken else entry.nt_count
        if count >= self.threshold:
            if self.random_rate <= 0.0 \
                    or self._next_random() >= self.random_rate:
                return False
            self.random_selected += 1
        self.selected += 1
        # Entering the NT-path exercises the edge (Section 4.2(1)).
        if nt_edge_taken:
            if entry.taken_count < COUNTER_MAX:
                entry.taken_count += 1
        elif entry.nt_count < COUNTER_MAX:
            entry.nt_count += 1
        return True

    def should_spawn(self, branch_addr, nt_edge_taken):
        """Decide whether to explore the non-taken edge of a branch."""
        self.considered += 1
        count = self.btb.edge_count(branch_addr, nt_edge_taken)
        if count >= self.threshold:
            if self.random_rate <= 0.0 \
                    or self._next_random() >= self.random_rate:
                return False
            self.random_selected += 1
        self.selected += 1
        # Entering the NT-path exercises the edge (Section 4.2(1)).
        self.btb.record_edge(branch_addr, nt_edge_taken)
        return True
