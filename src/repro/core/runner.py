"""Top-level public API: compile and run programs under PathExpander."""

from __future__ import annotations

import copy
from functools import lru_cache

from repro.core.config import Mode, PathExpanderConfig
from repro.core.engine import PathExpanderEngine
from repro.core.errors import EngineError, WatchdogTimeout
from repro.core.software import apply_software_costs
from repro.cpu.syscalls import IOContext
from repro.detectors.assertions import AssertionDetector
from repro.detectors.ccured import CCuredDetector
from repro.detectors.iwatcher import IWatcherDetector
from repro.minic.codegen import compile_minic
from repro.resilience import ChaosDetector, events, get_injector

DETECTOR_FACTORIES = {
    'none': lambda: None,
    'ccured': CCuredDetector,
    'iwatcher': IWatcherDetector,
    'assertions': AssertionDetector,
}


def make_detector(name):
    """Instantiate a detector by name ('ccured', 'iwatcher',
    'assertions' or 'none')."""
    if name not in DETECTOR_FACTORIES:
        raise ValueError('unknown detector %r (choose from %s)'
                         % (name, sorted(DETECTOR_FACTORIES)))
    return DETECTOR_FACTORIES[name]()


def run_program(program, detector=None, config=None, text_input='',
                int_input=None, memory_words=1 << 20):
    """Run a compiled program under a dynamic detector.

    Args:
        program: a :class:`~repro.isa.program.Program`.
        detector: a detector instance, a detector name, or ``None``.
        config: a :class:`PathExpanderConfig`; defaults to the paper's
            standard configuration.
        text_input: characters served to the GETC syscall.
        int_input: integers served to the READ_INT syscall.

    Returns:
        a :class:`~repro.core.result.RunResult`.
    """
    if isinstance(detector, str):
        detector = make_detector(detector)
    config = config or PathExpanderConfig()
    degradable = config.resolved_backend == 'fast'
    # Detectors are stateful (shadow memory, reports); degradation
    # re-executes from scratch, so it needs a pristine copy taken
    # before the first attempt ever touches the original.
    pristine = copy.deepcopy(detector) if degradable \
        and detector is not None else None
    try:
        return _execute_run(program, detector, config, text_input,
                            int_input, memory_words)
    except (WatchdogTimeout, KeyboardInterrupt):
        raise
    except Exception as exc:
        if not degradable:
            if isinstance(exc, EngineError):
                raise
            raise EngineError('engine failed on %s backend: %r'
                              % (config.resolved_backend, exc),
                              program=program.name) from exc
        # Graceful degradation: an unexpected internal failure on the
        # fast backend transparently re-executes on the reference
        # backend.  Both backends are result-identical by invariant,
        # so callers observe nothing but the event record.
        events.record('degraded_to_reference', program=program.name,
                      error=repr(exc))
        ref_config = config.replace(backend='reference')
        try:
            return _execute_run(program, pristine, ref_config,
                                text_input, int_input, memory_words)
        except (WatchdogTimeout, KeyboardInterrupt):
            raise
        except Exception as ref_exc:
            raise EngineError(
                'engine failed on both backends (fast: %r; '
                'reference: %r)' % (exc, ref_exc),
                program=program.name) from ref_exc


def _execute_run(program, detector, config, text_input, int_input,
                 memory_words):
    """One engine execution (the unit graceful degradation retries)."""
    injector = get_injector()
    if detector is not None and injector is not None \
            and injector.plan.has_site('detector.hook'):
        detector = ChaosDetector(detector, injector)
    io = IOContext(text_input=text_input, int_input=int_input)
    engine = PathExpanderEngine(program, detector=detector, config=config,
                                io=io, memory_words=memory_words)
    result = engine.run()
    if config.mode == Mode.SOFTWARE:
        apply_software_costs(result, config)
    return result


def run_detailed_cmp(program, detector=None, config=None, text_input='',
                     int_input=None, memory_words=1 << 20):
    """Run under the *detailed* CMP engine (true core interleaving).

    Functionally equivalent to ``mode='cmp'`` but simulates the Fig. 6
    segment/version protocol cycle by cycle instead of modelling
    NT-path placement; used to validate the scheduling model.
    """
    from repro.core.cmp_detailed import DetailedCmpEngine
    if isinstance(detector, str):
        detector = make_detector(detector)
    config = (config or PathExpanderConfig(mode=Mode.CMP))
    if config.mode != Mode.CMP:
        config = config.replace(mode=Mode.CMP)
    io = IOContext(text_input=text_input, int_input=int_input)
    engine = DetailedCmpEngine(program, detector=detector, config=config,
                               io=io, memory_words=memory_words)
    return engine.run()


def run_source(source, detector=None, config=None, text_input='',
               int_input=None, name='program'):
    """Compile MiniC source and run it (convenience wrapper)."""
    program = compile_minic(source, name=name)
    return run_program(program, detector=detector, config=config,
                       text_input=text_input, int_input=int_input)


@lru_cache(maxsize=128)
def _compiled_app(app_name, version):
    """Compile a registered app once per process.

    Programs are immutable during runs (the harness already reuses one
    compilation across baseline/expanded runs), so sharing is safe; the
    cache keeps per-input job batches from recompiling the same app.
    """
    from repro.apps.registry import get_app
    return get_app(app_name).compile(version)


def run_job(spec):
    """Execute one :class:`~repro.jobs.spec.JobSpec`.

    Module-level so process-pool workers can pickle it; the job layer
    (``repro.jobs``) uses this as its single entry point.  For app
    specs the configuration goes through ``app.make_config`` — exactly
    the path the serial harness takes — so pooled and in-process runs
    are result-identical.
    """
    overrides = dict(spec.config_overrides)
    if spec.app is not None:
        from repro.apps.registry import get_app
        app = get_app(spec.app)
        program = _compiled_app(spec.app, spec.version)
        config = app.make_config(mode=spec.mode, **overrides)
    else:
        program = compile_minic(spec.source, name=spec.program_name)
        config = PathExpanderConfig(mode=spec.mode, **overrides)
    return run_program(program, detector=spec.detector, config=config,
                       text_input=spec.text_input,
                       int_input=list(spec.int_input))


def run_with_and_without(program, detector_name, config=None,
                         text_input='', int_input=None):
    """Run baseline and PathExpander side by side (fresh detectors).

    Returns ``(baseline_result, pathexpander_result)`` -- the format
    every Table 4-style comparison in the paper uses.
    """
    config = config or PathExpanderConfig()
    baseline = run_program(
        program, detector=make_detector(detector_name),
        config=config.replace(mode=Mode.BASELINE),
        text_input=text_input, int_input=int_input)
    expanded = run_program(
        program, detector=make_detector(detector_name), config=config,
        text_input=text_input, int_input=int_input)
    return baseline, expanded
