"""Run statistics containers."""

from __future__ import annotations


class NTPathTermination:
    LENGTH = 'length'          # reached MaxNTPathLength
    CRASH = 'crash'            # machine fault, swallowed
    UNSAFE = 'unsafe'          # unsafe event (syscall) reached
    OVERFLOW = 'overflow'      # L1 could not buffer more volatile lines
    PROGRAM_END = 'program_end'

    ALL = (LENGTH, CRASH, UNSAFE, OVERFLOW, PROGRAM_END)


class NTPathRecord:
    """Per-NT-path detail (only kept when collect_nt_details is set)."""

    __slots__ = ('branch_addr', 'edge_taken', 'length', 'reason',
                 'spawn_instret')

    def __init__(self, branch_addr, edge_taken, length, reason,
                 spawn_instret):
        self.branch_addr = branch_addr
        self.edge_taken = edge_taken
        self.length = length
        self.reason = reason
        self.spawn_instret = spawn_instret


class RunResult:
    """Everything a monitored run produced."""

    def __init__(self, program, config, detector):
        self.program_name = program.name
        self.mode = config.mode
        self.detector_name = detector.name if detector else 'none'
        # timing
        self.cycles = 0                 # total modelled cycles
        self.primary_cycles = 0         # taken-path core cycles (CMP)
        self.instret_taken = 0
        self.instret_nt = 0
        # NT-path statistics
        self.nt_spawned = 0
        self.nt_skipped_busy = 0        # CMP: MaxNumNTPaths reached
        self.nt_terminations = {}       # reason -> count
        self.nt_details = []            # NTPathRecord list (optional)
        self.nt_store_count = 0
        self.nt_branch_count = 0
        self.taken_branch_count = 0
        self.journal_entries_total = 0
        self.forced_segment_commits = 0
        # coverage
        self.total_edges = 0
        self.baseline_covered = 0
        self.total_covered = 0
        self.taken_edges = set()      # edge keys covered by the taken path
        self.covered_edges = set()    # edge keys covered incl. NT-paths
        # detection
        self.reports = []
        # program outcome
        self.output = ''
        self.int_output = []
        self.exit_code = None
        self.crashed = False
        self.crash_kind = None
        self.truncated = False          # hit max_instructions

    # ------------------------------------------------------------------

    @property
    def baseline_coverage(self):
        return self.baseline_covered / self.total_edges \
            if self.total_edges else 0.0

    @property
    def total_coverage(self):
        return self.total_covered / self.total_edges \
            if self.total_edges else 0.0

    @property
    def nt_reports(self):
        return [r for r in self.reports if r.in_nt_path]

    @property
    def taken_reports(self):
        return [r for r in self.reports if not r.in_nt_path]

    def count_termination(self, reason):
        self.nt_terminations[reason] = \
            self.nt_terminations.get(reason, 0) + 1

    def overhead_vs(self, baseline_result):
        """Relative execution overhead against a baseline run."""
        base = baseline_result.cycles
        if base == 0:
            return 0.0
        return (self.cycles - base) / base

    def __repr__(self):
        return ('<RunResult %s/%s/%s: %d cycles, %d NT-paths, '
                'coverage %.1f%%->%.1f%%, %d reports>' % (
                    self.program_name, self.mode, self.detector_name,
                    self.cycles, self.nt_spawned,
                    100 * self.baseline_coverage,
                    100 * self.total_coverage, len(self.reports)))
