"""Run statistics containers."""

from __future__ import annotations


class NTPathTermination:
    LENGTH = 'length'          # reached MaxNTPathLength
    CRASH = 'crash'            # machine fault, swallowed
    UNSAFE = 'unsafe'          # unsafe event (syscall) reached
    OVERFLOW = 'overflow'      # L1 could not buffer more volatile lines
    PROGRAM_END = 'program_end'

    ALL = (LENGTH, CRASH, UNSAFE, OVERFLOW, PROGRAM_END)


class NTPathRecord:
    """Per-NT-path detail (only kept when collect_nt_details is set)."""

    __slots__ = ('branch_addr', 'edge_taken', 'length', 'reason',
                 'spawn_instret')

    def __init__(self, branch_addr, edge_taken, length, reason,
                 spawn_instret):
        self.branch_addr = branch_addr
        self.edge_taken = edge_taken
        self.length = length
        self.reason = reason
        self.spawn_instret = spawn_instret

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**{slot: data[slot] for slot in cls.__slots__})


class RunResult:
    """Everything a monitored run produced."""

    def __init__(self, program, config, detector):
        self.program_name = program.name
        self.mode = config.mode
        self.detector_name = detector.name if detector else 'none'
        # timing
        self.cycles = 0                 # total modelled cycles
        self.primary_cycles = 0         # taken-path core cycles (CMP)
        self.instret_taken = 0
        self.instret_nt = 0
        # NT-path statistics
        self.nt_spawned = 0
        self.nt_skipped_busy = 0        # CMP: MaxNumNTPaths reached
        self.nt_terminations = {}       # reason -> count
        self.nt_details = []            # NTPathRecord list (optional)
        self.nt_store_count = 0
        self.nt_branch_count = 0
        self.taken_branch_count = 0
        self.journal_entries_total = 0
        self.forced_segment_commits = 0
        # coverage
        self.total_edges = 0
        self.baseline_covered = 0
        self.total_covered = 0
        self.taken_edges = set()      # edge keys covered by the taken path
        self.covered_edges = set()    # edge keys covered incl. NT-paths
        # detection
        self.reports = []
        # program outcome
        self.output = ''
        self.int_output = []
        self.exit_code = None
        self.crashed = False
        self.crash_kind = None
        self.truncated = False          # stopped before program end
        # why: 'instructions' (max_instructions), 'wall_clock' or
        # 'cycles' (watchdog budgets); None when not truncated
        self.truncation_reason = None

    # ------------------------------------------------------------------

    @property
    def baseline_coverage(self):
        return self.baseline_covered / self.total_edges \
            if self.total_edges else 0.0

    @property
    def total_coverage(self):
        return self.total_covered / self.total_edges \
            if self.total_edges else 0.0

    @property
    def nt_reports(self):
        return [r for r in self.reports if r.in_nt_path]

    @property
    def taken_reports(self):
        return [r for r in self.reports if not r.in_nt_path]

    def count_termination(self, reason):
        self.nt_terminations[reason] = \
            self.nt_terminations.get(reason, 0) + 1

    def overhead_vs(self, baseline_result):
        """Relative execution overhead against a baseline run."""
        base = baseline_result.cycles
        if base == 0:
            return 0.0
        return (self.cycles - base) / base

    # -- lossless serialization (job cache / worker transport) ---------

    _SCALAR_FIELDS = ('program_name', 'mode', 'detector_name', 'cycles',
                      'primary_cycles', 'instret_taken', 'instret_nt',
                      'nt_spawned', 'nt_skipped_busy', 'nt_store_count',
                      'nt_branch_count', 'taken_branch_count',
                      'journal_entries_total', 'forced_segment_commits',
                      'total_edges', 'baseline_covered',
                      'total_covered', 'output', 'exit_code', 'crashed',
                      'crash_kind', 'truncated', 'truncation_reason')

    # Fields added after records of version N were written: tolerated
    # as absent on rehydration so a warm cache survives an upgrade.
    _SCALAR_DEFAULTS = {'truncation_reason': None}

    def to_dict(self):
        """A JSON-safe dict carrying *every* field of this result.

        Edge sets are emitted sorted so the same run always serializes
        to the same bytes (the job cache depends on deterministic
        records).
        """
        data = {name: getattr(self, name)
                for name in self._SCALAR_FIELDS}
        data['int_output'] = list(self.int_output)
        data['nt_terminations'] = {
            reason: self.nt_terminations[reason]
            for reason in sorted(self.nt_terminations)}
        data['nt_details'] = [record.to_dict()
                              for record in self.nt_details]
        data['taken_edges'] = [list(edge)
                               for edge in sorted(self.taken_edges)]
        data['covered_edges'] = [list(edge)
                                 for edge in sorted(self.covered_edges)]
        data['reports'] = [report.to_dict() for report in self.reports]
        return data

    @classmethod
    def from_dict(cls, data):
        """Rebuild a result from :meth:`to_dict` output (or its JSON
        round-trip)."""
        from repro.detectors.base import BugReport
        result = cls.__new__(cls)
        for name in cls._SCALAR_FIELDS:
            if name in data:
                setattr(result, name, data[name])
            else:
                setattr(result, name, cls._SCALAR_DEFAULTS[name])
        result.int_output = list(data['int_output'])
        result.nt_terminations = dict(data['nt_terminations'])
        result.nt_details = [NTPathRecord.from_dict(record)
                             for record in data['nt_details']]
        result.taken_edges = {tuple(edge)
                              for edge in data['taken_edges']}
        result.covered_edges = {tuple(edge)
                                for edge in data['covered_edges']}
        result.reports = [BugReport.from_dict(report)
                          for report in data['reports']]
        return result

    def __repr__(self):
        return ('<RunResult %s/%s/%s: %d cycles, %d NT-paths, '
                'coverage %.1f%%->%.1f%%, %d reports>' % (
                    self.program_name, self.mode, self.detector_name,
                    self.cycles, self.nt_spawned,
                    100 * self.baseline_coverage,
                    100 * self.total_coverage, len(self.reports)))
