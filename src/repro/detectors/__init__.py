"""Dynamic bug detection tools (CCured, iWatcher, assertions)."""

from repro.detectors.assertions import AssertionDetector
from repro.detectors.base import BugReport, Detector, ReportKind
from repro.detectors.ccured import CCuredDetector
from repro.detectors.iwatcher import IWatcherDetector

__all__ = ['Detector', 'BugReport', 'ReportKind', 'CCuredDetector',
           'IWatcherDetector', 'AssertionDetector']
