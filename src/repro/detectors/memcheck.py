"""Shared address-classification logic for the memory checkers.

Both CCured (software) and iWatcher (hardware-assisted) detect the same
memory bug classes in our reproduction; what differs is the *cost
model* of their checks.  The classification itself -- which address
ranges are legal -- is Purify-style interval checking over red zones:

* heap objects carry 2-word red zones (allocator);
* global objects are laid out with 2-word gaps between them (compiler);
* freed objects stay poisoned until reuse;
* anything outside every region is a wild access.

See DESIGN.md for the pointer-provenance fidelity note.
"""

from __future__ import annotations

from bisect import bisect_right

from repro.detectors.base import ReportKind

OK = None


class MemoryCheckLogic:
    """Classifies a data access as legal or as a bug-report kind."""

    def __init__(self, program, memory, allocator):
        self.memory = memory
        self.allocator = allocator
        # Sorted global-object intervals for binary search.
        objs = sorted(program.global_objects, key=lambda item: item[1])
        self._global_bases = [base for _name, base, _size in objs]
        self._global_limits = [base + size for _name, base, size in objs]
        self._globals_end = memory.monitor_base
        # Region boundaries are fixed for the run; caching them keeps
        # the per-access classification to integer compares + at most
        # one bisect, with no attribute chains.
        self._stack_limit = memory.stack_limit
        self._heap_base = allocator.heap_base
        self._monitor_base = memory.monitor_base

    def classify(self, addr):
        """Return ``None`` if the access is legal, else a ReportKind."""
        if addr >= self._stack_limit:
            return OK                       # stack (frame-level: unchecked)
        if addr >= self._heap_base:
            kind = self.allocator.classify(addr)
            if kind == 'object':
                return OK
            if kind == 'redzone':
                return ReportKind.OVERRUN
            if kind == 'freed':
                return ReportKind.DANGLING
            return ReportKind.WILD
        if addr >= self._monitor_base:
            return OK                       # monitor memory area
        # Below the monitor area lies the globals segment
        # (``_globals_end == monitor_base``): interval-check it.
        index = bisect_right(self._global_bases, addr) - 1
        if index >= 0 and addr < self._global_limits[index]:
            return OK
        return ReportKind.OVERRUN           # gap between global objects
