"""iWatcher-style hardware-assisted dynamic memory checker.

iWatcher [41] associates monitoring functions with memory ranges; the
hardware triggers the check only when a watched word is touched, so
untriggered accesses are free.  We watch the same illegal intervals the
CCured model checks (red zones, freed objects, global gaps), but the
cost model is hardware-like: zero cycles unless a watchpoint fires.
"""

from __future__ import annotations

from repro.detectors.base import Detector, ReportKind
from repro.detectors.memcheck import MemoryCheckLogic


class IWatcherDetector(Detector):

    name = 'iwatcher'

    def __init__(self, trigger_cost=30):
        super().__init__()
        self.trigger_cost = trigger_cost
        self._logic = None
        self.triggers = 0
        # Non-heap classification memo; see CCuredDetector for the
        # safety argument (heap addresses are never memoised).
        self._memo_addr = None
        self._memo_kind = None
        self._heap_base = 0
        self._stack_limit = 0

    def attach(self, program, memory, allocator):
        self._logic = MemoryCheckLogic(program, memory, allocator)
        self._heap_base = allocator.heap_base
        self._stack_limit = memory.stack_limit

    def _check(self, addr, interp, op):
        if addr == self._memo_addr:
            kind = self._memo_kind
        else:
            kind = self._logic.classify(addr)
            if not self._heap_base <= addr < self._stack_limit:
                self._memo_addr = addr
                self._memo_kind = kind
        if kind is None:
            return 0
        self.triggers += 1
        self._report_access(kind, interp, op, addr)
        return self.trigger_cost

    def on_load(self, addr, value, interp):
        return self._check(addr, interp, 'load')

    def on_store(self, addr, value, interp):
        return self._check(addr, interp, 'store')

    def on_free(self, addr, ok, interp):
        if not ok:
            self.triggers += 1
            self._report(ReportKind.INVALID_FREE, interp,
                         detail='free(%d)' % addr, mem_addr=addr)
            return self.trigger_cost
        return 0
