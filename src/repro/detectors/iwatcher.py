"""iWatcher-style hardware-assisted dynamic memory checker.

iWatcher [41] associates monitoring functions with memory ranges; the
hardware triggers the check only when a watched word is touched, so
untriggered accesses are free.  We watch the same illegal intervals the
CCured model checks (red zones, freed objects, global gaps), but the
cost model is hardware-like: zero cycles unless a watchpoint fires.
"""

from __future__ import annotations

from repro.detectors.base import Detector, ReportKind
from repro.detectors.memcheck import MemoryCheckLogic


class IWatcherDetector(Detector):

    name = 'iwatcher'

    def __init__(self, trigger_cost=30):
        super().__init__()
        self.trigger_cost = trigger_cost
        self._logic = None
        self.triggers = 0

    def attach(self, program, memory, allocator):
        self._logic = MemoryCheckLogic(program, memory, allocator)

    def _check(self, addr, interp, detail):
        kind = self._logic.classify(addr)
        if kind is None:
            return 0
        self.triggers += 1
        self._report(kind, interp, detail=detail, mem_addr=addr)
        return self.trigger_cost

    def on_load(self, addr, value, interp):
        return self._check(addr, interp, 'load @%d' % addr)

    def on_store(self, addr, value, interp):
        return self._check(addr, interp, 'store @%d' % addr)

    def on_free(self, addr, ok, interp):
        if not ok:
            self.triggers += 1
            self._report(ReportKind.INVALID_FREE, interp,
                         detail='free(%d)' % addr, mem_addr=addr)
            return self.trigger_cost
        return 0
