"""Assertion-based bug detection.

Assertions are the third dynamic method evaluated in the paper (used
for the semantic bugs of the Siemens suite).  MiniC's
``assert(cond, "id")`` compiles to an ASSERT instruction; this detector
records a report each time one fails.  The assertion's own evaluation
is program code, so the detector itself costs nothing extra.
"""

from __future__ import annotations

from repro.detectors.base import Detector, ReportKind


class AssertionDetector(Detector):

    name = 'assertions'

    def on_assert_fail(self, assert_id, code_addr, interp):
        self._report(ReportKind.ASSERTION, interp,
                     detail='assert %s failed' % assert_id,
                     assert_id=assert_id)
        return 1

    @property
    def failed_ids(self):
        return {report.assert_id for report in self.reports}
