"""Detector plugin interface and bug reports.

PathExpander is detector-agnostic (Section 1.4 "Generality"): any tool
that observes loads, stores, frees and assertions plugs in here.  The
engines call the hooks on both the taken path and NT-paths; reports
made during an NT-path are flagged and -- matching the monitor-memory-
area semantics of Section 4.1 -- are never rolled back.

Each hook returns the number of *cycles* the check costs, so software
checkers (CCured) dilate execution while hardware-assisted checkers
(iWatcher) stay nearly free; this is what differentiates their overhead
in the evaluation.
"""

from __future__ import annotations


class BugReport:
    """One report from a dynamic bug detection tool."""

    __slots__ = ('kind', 'detail', 'code_addr', 'location', 'mem_addr',
                 'in_nt_path', 'assert_id')

    def __init__(self, kind, detail='', code_addr=None, location='',
                 mem_addr=None, in_nt_path=False, assert_id=None):
        self.kind = kind
        self.detail = detail
        self.code_addr = code_addr
        self.location = location
        self.mem_addr = mem_addr
        self.in_nt_path = in_nt_path
        self.assert_id = assert_id

    @property
    def site_key(self):
        """Dedup key: one report per (kind, site)."""
        return (self.kind, self.assert_id or self.code_addr)

    def to_dict(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**{slot: data[slot] for slot in cls.__slots__})

    def __repr__(self):
        where = 'NT-path' if self.in_nt_path else 'taken path'
        return '<BugReport %s at %s (%s)%s>' % (
            self.kind, self.location, where,
            ' id=%s' % self.assert_id if self.assert_id else '')


class ReportKind:
    OVERRUN = 'buffer_overrun'
    DANGLING = 'dangling_access'
    WILD = 'wild_access'
    INVALID_FREE = 'invalid_free'
    ASSERTION = 'assertion_failure'
    LEAKED_NULL = 'null_dereference'

    MEMORY_KINDS = frozenset({OVERRUN, DANGLING, WILD, INVALID_FREE,
                              LEAKED_NULL})


class Detector:
    """Base class; hooks return the cycle cost of the check."""

    name = 'none'

    def __init__(self):
        self.reports = []
        self._seen_sites = set()

    def _report(self, kind, interp, detail='', mem_addr=None,
                assert_id=None):
        # Dedup before constructing anything: a site that already
        # reported (the common case on hot loops) costs one set lookup,
        # not a BugReport + source-location string build.
        code_addr = interp.core.pc
        site_key = (kind, assert_id or code_addr)
        if site_key in self._seen_sites:
            return None
        self._seen_sites.add(site_key)
        report = BugReport(
            kind, detail=detail, code_addr=code_addr,
            location=interp.program.location(code_addr),
            mem_addr=mem_addr, in_nt_path=interp.in_nt_path,
            assert_id=assert_id)
        self.reports.append(report)
        return report

    def _report_access(self, kind, interp, op, mem_addr):
        """:meth:`_report` for a load/store check site.

        The detail string (``'<op> @<addr>'``) is only formatted for
        *new* sites: on hot loops the same site re-reports every
        iteration, and building a throwaway string per access is a
        measurable share of a software checker's cost.
        """
        code_addr = interp.core.pc
        site_key = (kind, code_addr)
        if site_key in self._seen_sites:
            return None
        self._seen_sites.add(site_key)
        report = BugReport(
            kind, detail='%s @%d' % (op, mem_addr),
            code_addr=code_addr,
            location=interp.program.location(code_addr),
            mem_addr=mem_addr, in_nt_path=interp.in_nt_path)
        self.reports.append(report)
        return report

    # hooks ------------------------------------------------------------

    def on_load(self, addr, value, interp):
        return 0

    def on_store(self, addr, value, interp):
        return 0

    def on_assert_fail(self, assert_id, code_addr, interp):
        return 0

    def on_alloc(self, base, size, interp):
        return 0

    def on_free(self, addr, ok, interp):
        return 0

    def reset(self):
        self.reports = []
        self._seen_sites = set()
