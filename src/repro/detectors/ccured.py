"""CCured-style software-only dynamic memory checker.

Models the dynamic half of CCured [27]: every load and store is guarded
by an inserted software check.  The check costs
``check_cost`` cycles, which is what makes CCured a *software* tool in
the overhead comparison; the detection power is the interval/red-zone
logic shared with iWatcher (see ``memcheck.py``).
"""

from __future__ import annotations

from repro.detectors.base import Detector, ReportKind
from repro.detectors.memcheck import MemoryCheckLogic


class CCuredDetector(Detector):

    name = 'ccured'

    def __init__(self, check_cost=5, free_check_cost=12):
        super().__init__()
        self.check_cost = check_cost
        self.free_check_cost = free_check_cost
        self._logic = None
        self.checks_performed = 0
        # Single-entry classification memo for addresses outside the
        # heap region: globals layout and region bounds are fixed for
        # the run, so their classification never changes and a hot
        # loop touching one word costs two compares, not a classify.
        # Heap addresses are never memoised (malloc/free move them
        # between object/red-zone/freed states).
        self._memo_addr = None
        self._memo_kind = None
        self._heap_base = 0
        self._stack_limit = 0

    def attach(self, program, memory, allocator):
        self._logic = MemoryCheckLogic(program, memory, allocator)
        self._heap_base = allocator.heap_base
        self._stack_limit = memory.stack_limit

    def on_load(self, addr, value, interp):
        self.checks_performed += 1
        if addr == self._memo_addr:
            kind = self._memo_kind
        else:
            kind = self._logic.classify(addr)
            if not self._heap_base <= addr < self._stack_limit:
                self._memo_addr = addr
                self._memo_kind = kind
        if kind is not None \
                and (kind, interp.core.pc) not in self._seen_sites:
            self._report_access(kind, interp, 'load', addr)
        return self.check_cost

    def on_store(self, addr, value, interp):
        self.checks_performed += 1
        if addr == self._memo_addr:
            kind = self._memo_kind
        else:
            kind = self._logic.classify(addr)
            if not self._heap_base <= addr < self._stack_limit:
                self._memo_addr = addr
                self._memo_kind = kind
        if kind is not None \
                and (kind, interp.core.pc) not in self._seen_sites:
            self._report_access(kind, interp, 'store', addr)
        return self.check_cost

    def on_free(self, addr, ok, interp):
        self.checks_performed += 1
        if not ok:
            self._report(ReportKind.INVALID_FREE, interp,
                         detail='free(%d)' % addr, mem_addr=addr)
        return self.free_check_cost
