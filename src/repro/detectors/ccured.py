"""CCured-style software-only dynamic memory checker.

Models the dynamic half of CCured [27]: every load and store is guarded
by an inserted software check.  The check costs
``check_cost`` cycles, which is what makes CCured a *software* tool in
the overhead comparison; the detection power is the interval/red-zone
logic shared with iWatcher (see ``memcheck.py``).
"""

from __future__ import annotations

from repro.detectors.base import Detector, ReportKind
from repro.detectors.memcheck import MemoryCheckLogic


class CCuredDetector(Detector):

    name = 'ccured'

    def __init__(self, check_cost=5, free_check_cost=12):
        super().__init__()
        self.check_cost = check_cost
        self.free_check_cost = free_check_cost
        self._logic = None
        self.checks_performed = 0

    def attach(self, program, memory, allocator):
        self._logic = MemoryCheckLogic(program, memory, allocator)

    def on_load(self, addr, value, interp):
        self.checks_performed += 1
        kind = self._logic.classify(addr)
        if kind is not None:
            self._report(kind, interp, detail='load @%d' % addr,
                         mem_addr=addr)
        return self.check_cost

    def on_store(self, addr, value, interp):
        self.checks_performed += 1
        kind = self._logic.classify(addr)
        if kind is not None:
            self._report(kind, interp, detail='store @%d' % addr,
                         mem_addr=addr)
        return self.check_cost

    def on_free(self, addr, ok, interp):
        self.checks_performed += 1
        if not ok:
            self._report(ReportKind.INVALID_FREE, interp,
                         detail='free(%d)' % addr, mem_addr=addr)
        return self.free_check_cost
