"""Fault injection and graceful degradation (see DESIGN.md, "Failure
model & degradation invariant").

The subsystem has three parts:

* :mod:`repro.resilience.faults` -- deterministic, seeded
  :class:`FaultPlan`/:class:`FaultInjector` machinery plus the named
  injection sites wired through the engine, backends, job pool, result
  store and checkpoints;
* :mod:`repro.resilience.watchdog` -- the engine deadman (wall-clock /
  cycle budgets that truncate, ambient job deadlines that raise);
* :mod:`repro.resilience.events` -- the process-local record of every
  survived failure (degradations, truncations, injected faults).

Installing a plan and running any workload is the chaos harness: the
regression suite (``tests/test_resilience.py``) asserts that each
single injected fault leaves a batch either completed with fault-free
results or failed with one structured, spec-attributed error.
"""

from __future__ import annotations

from repro.resilience import events
from repro.resilience.faults import (SITES, ChaosDetector, FaultInjector,
                                     FaultPlan, FaultSpec, clear_plan,
                                     get_injector, install_plan,
                                     site_hook, worker_faults)
from repro.resilience.watchdog import (Watchdog, current_deadline,
                                       deadline)

__all__ = ['FaultPlan', 'FaultSpec', 'FaultInjector', 'ChaosDetector',
           'SITES', 'install_plan', 'clear_plan', 'get_injector',
           'site_hook', 'worker_faults', 'Watchdog', 'deadline',
           'current_deadline', 'events']
