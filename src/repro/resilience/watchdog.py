"""Engine deadman: wall-clock / cycle budgets and ambient job deadlines.

Two distinct protections share one mechanism (a periodic check at
instruction-count boundaries of the engine's main loop):

* **Run budgets** (``PathExpanderConfig.max_wall_seconds`` /
  ``max_cycles``): when exceeded, the engine *truncates* the run into a
  partial, well-formed :class:`RunResult` flagged ``truncated`` --
  long experiment batches degrade instead of stalling.

* **Ambient job deadlines** (:func:`deadline`): installed by the job
  pool around serial in-process execution so ``JobPool(jobs=1,
  timeout=...)`` behaves like pooled mode.  Expiry *raises*
  :class:`~repro.core.errors.WatchdogTimeout`, which the pool accounts
  for exactly like a pooled future timeout (retry, then a structured
  spec-attributed failure).

The checks are cooperative: the engine polls between instruction
chunks, so enforcement granularity is ``check_interval`` retired
instructions (default 10k -- milliseconds of wall time on either
backend), and a run adds zero per-instruction overhead when nothing is
armed.
"""

from __future__ import annotations

import contextlib
import contextvars
import time

from repro.core.errors import WatchdogTimeout

DEFAULT_CHECK_INTERVAL = 10_000

_job_deadline = contextvars.ContextVar('repro_job_deadline',
                                       default=None)


@contextlib.contextmanager
def deadline(seconds):
    """Ambient deadline scope: engines started inside raise
    :class:`WatchdogTimeout` once ``seconds`` of wall time elapse."""
    if seconds is None:
        yield
        return
    token = _job_deadline.set(time.monotonic() + seconds)
    try:
        yield
    finally:
        _job_deadline.reset(token)


def current_deadline():
    """The ambient monotonic deadline, or None."""
    return _job_deadline.get()


class Watchdog:
    """Per-run deadman combining budgets and the ambient deadline."""

    __slots__ = ('job_deadline', 'wall_deadline', 'max_cycles',
                 'check_interval')

    def __init__(self, job_deadline=None, wall_deadline=None,
                 max_cycles=None,
                 check_interval=DEFAULT_CHECK_INTERVAL):
        self.job_deadline = job_deadline
        self.wall_deadline = wall_deadline
        self.max_cycles = max_cycles
        self.check_interval = max(1, int(check_interval))

    @classmethod
    def for_config(cls, config):
        """A watchdog for one engine run, or None when nothing is
        armed (the common case: the engine then runs its unchunked
        main loop)."""
        job = current_deadline()
        wall = getattr(config, 'max_wall_seconds', None)
        cycles = getattr(config, 'max_cycles', None)
        if job is None and wall is None and cycles is None:
            return None
        now = time.monotonic()
        return cls(
            job_deadline=job,
            wall_deadline=(now + wall) if wall is not None else None,
            max_cycles=cycles,
            check_interval=getattr(config, 'watchdog_interval',
                                   DEFAULT_CHECK_INTERVAL))

    def poll(self, core):
        """One periodic check.

        Raises :class:`WatchdogTimeout` when the ambient job deadline
        has passed; returns a truncation reason string
        (``'wall_clock'`` / ``'cycles'``) when a run budget is
        exhausted; returns None otherwise.
        """
        if self.job_deadline is not None or \
                self.wall_deadline is not None:
            now = time.monotonic()
            if self.job_deadline is not None \
                    and now >= self.job_deadline:
                raise WatchdogTimeout('job deadline expired',
                                      instret=core.instret)
            if self.wall_deadline is not None \
                    and now >= self.wall_deadline:
                return 'wall_clock'
        if self.max_cycles is not None \
                and core.cycles >= self.max_cycles:
            return 'cycles'
        return None
