"""Deterministic fault injection: plans, the injector, and site hooks.

A :class:`FaultPlan` is a seeded, serializable description of *which*
named sites misbehave and *when* (by invocation index or seeded rate).
A :class:`FaultInjector` executes a plan: instrumented sites poll it,
and when a site is armed for the current invocation the injector either
raises (:class:`~repro.core.errors.InjectedFault` /
:class:`~repro.core.errors.WorkerCrash`) or hands the site its
:class:`FaultSpec` so the site can apply a site-specific corruption
(scribble a cache record, flip a checkpointed register, sleep).

Determinism: a plan is a pure function of its seed and the sites'
invocation order -- two runs of the same workload under the same plan
inject the same faults at the same points.  Plans propagate to job-pool
worker processes through ``$REPRO_FAULT_PLAN`` (JSON), loaded lazily on
the worker's first site poll.

The known sites (:data:`SITES`) cover every layer the graceful-
degradation machinery protects: the fast backend's block dispatch,
detector hooks, spawn checkpoints, result-store records, and pool
workers.  All of this is a no-op at steady state: uninstrumented
processes pay one cached ``None`` check per site lookup.
"""

from __future__ import annotations

import json
import os
import random

from repro.core.errors import InjectedFault, WorkerCrash
from repro.resilience import events

ENV_VAR = 'REPRO_FAULT_PLAN'

# Every named injection site, with the failure it simulates:
SITES = (
    'fastinterp.block',      # internal error in fast-backend dispatch
    'detector.hook',         # detector on_load/on_store raises
    'checkpoint.corrupt',    # spawn checkpoint silently corrupted
    'store.corrupt_record',  # cache record corrupted after write
    'pool.worker_crash',     # worker raises (or hard-exits) mid-job
    'pool.worker_hang',      # worker stalls before running its job
)


class FaultSpec:
    """When and how one site misbehaves.

    ``fires`` -- tuple of 0-based invocation indices that fire; ``rate``
    -- per-invocation probability (seeded per site); neither -- every
    invocation fires.  ``max_fires`` caps total firings (``None`` =
    unlimited).  ``mode``/``duration`` parameterize the site action
    (e.g. ``'exit'`` vs ``'exception'`` for worker crashes, seconds for
    hangs).  ``match_key`` restricts job-level sites to one spec key;
    non-matching invocations neither fire nor advance the counter.
    """

    __slots__ = ('site', 'fires', 'rate', 'max_fires', 'mode',
                 'duration', 'match_key')

    def __init__(self, site, fires=(0,), rate=None, max_fires=1,
                 mode=None, duration=None, match_key=None):
        if site not in SITES:
            raise ValueError('unknown fault site %r (choose from %s)'
                             % (site, ', '.join(SITES)))
        self.site = site
        self.fires = tuple(fires) if fires is not None else None
        self.rate = rate
        self.max_fires = max_fires
        self.mode = mode
        self.duration = duration
        self.match_key = match_key

    def to_dict(self):
        return {slot: (list(self.fires) if slot == 'fires'
                       and self.fires is not None
                       else getattr(self, slot))
                for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        return cls(**{slot: data.get(slot) for slot in cls.__slots__})

    def __repr__(self):
        return '<FaultSpec %s fires=%r rate=%r mode=%r>' % (
            self.site, self.fires, self.rate, self.mode)


class FaultPlan:
    """A seeded set of fault specs, one per misbehaving site."""

    def __init__(self, specs=(), seed=0):
        self.seed = int(seed)
        self.specs = {}
        for spec in specs:
            if spec.site in self.specs:
                raise ValueError('duplicate spec for site %r'
                                 % spec.site)
            self.specs[spec.site] = spec

    def has_site(self, site):
        return site in self.specs

    def for_site(self, site):
        return self.specs.get(site)

    def to_json(self):
        return json.dumps(
            {'seed': self.seed,
             'specs': [self.specs[site].to_dict()
                       for site in sorted(self.specs)]},
            sort_keys=True)

    @classmethod
    def from_json(cls, payload):
        data = json.loads(payload)
        return cls(specs=[FaultSpec.from_dict(item)
                          for item in data.get('specs', ())],
                   seed=data.get('seed', 0))

    @classmethod
    def single(cls, site, seed=0, **spec_kwargs):
        """A plan arming exactly one site."""
        return cls(specs=[FaultSpec(site, **spec_kwargs)], seed=seed)

    @classmethod
    def default_matrix(cls, seed=0):
        """One single-site plan per known site (the chaos-suite matrix).

        Each plan fires exactly once, at a small invocation index
        derived deterministically from the seed, so different seeds
        exercise different injection points of the same workload.
        """
        plans = []
        for site in SITES:
            # String seeds hash via sha512, so the derived indices are
            # stable across processes (tuple seeds would depend on
            # PYTHONHASHSEED).
            rng = random.Random('%d:%s' % (seed, site))
            kwargs = {'fires': (rng.randrange(0, 3),), 'max_fires': 1}
            if site == 'pool.worker_hang':
                kwargs['duration'] = 0.05
            plans.append(cls.single(site, seed=seed, **kwargs))
        return plans

    def __repr__(self):
        return '<FaultPlan seed=%d sites=%s>' % (
            self.seed, ','.join(sorted(self.specs)) or '-')


class FaultInjector:
    """Executes a plan: counts site invocations, decides firings."""

    def __init__(self, plan):
        self.plan = plan
        self._counts = {}
        self._fired = {}
        self._rngs = {}
        self.fired_log = []      # (site, invocation index)

    # ------------------------------------------------------------------

    def poll(self, site, key=None):
        """The armed :class:`FaultSpec` for this invocation, or None.

        Advances the site's invocation counter (except for
        key-restricted specs polled with a non-matching key).
        """
        spec = self.plan.for_site(site)
        if spec is None:
            return None
        if spec.match_key is not None and key != spec.match_key:
            return None
        index = self._counts.get(site, 0)
        self._counts[site] = index + 1
        if spec.fires is not None:
            fire = index in spec.fires
        elif spec.rate is not None:
            rng = self._rngs.get(site)
            if rng is None:
                rng = self._rngs[site] = random.Random(
                    '%d:%s' % (self.plan.seed, site))
            fire = rng.random() < spec.rate
        else:
            fire = True
        if fire and spec.max_fires is not None \
                and self._fired.get(site, 0) >= spec.max_fires:
            fire = False
        if not fire:
            return None
        self._fired[site] = self._fired.get(site, 0) + 1
        self.fired_log.append((site, index))
        events.record('fault_injected', site=site, invocation=index,
                      mode=spec.mode)
        return spec

    def check(self, site, key=None):
        """Poll and raise :class:`InjectedFault` when armed."""
        if self.poll(site, key=key) is not None:
            raise InjectedFault('injected fault at %s' % site,
                                site=site)

    def fire_count(self, site=None):
        if site is not None:
            return self._fired.get(site, 0)
        return sum(self._fired.values())


# ======================================================================
# process-wide installation

_injector = None
_env_loaded = False


def install_plan(plan, propagate=False):
    """Install ``plan`` process-wide; returns its injector.

    With ``propagate=True`` the plan is also exported through
    ``$REPRO_FAULT_PLAN`` so freshly spawned pool workers load it (each
    worker gets its own injector, with its own invocation counters).
    """
    global _injector
    _injector = FaultInjector(plan)
    if propagate:
        os.environ[ENV_VAR] = plan.to_json()
    return _injector


def clear_plan():
    """Remove any installed plan (and its env propagation)."""
    global _injector, _env_loaded
    _injector = None
    _env_loaded = False
    os.environ.pop(ENV_VAR, None)


def get_injector():
    """The active injector, or None.  Lazily loads ``$REPRO_FAULT_PLAN``
    exactly once per process (how pool workers inherit a plan); a
    malformed plan is ignored rather than breaking real runs."""
    global _injector, _env_loaded
    if _injector is None and not _env_loaded:
        _env_loaded = True
        payload = os.environ.get(ENV_VAR)
        if payload:
            try:
                _injector = FaultInjector(FaultPlan.from_json(payload))
            except Exception:
                _injector = None
    return _injector


def site_hook(site):
    """A zero-arg raise-when-armed callable for ``site``, or None when
    no installed plan arms it.  Hot loops bind the result once and skip
    the per-iteration lookup entirely at steady state."""
    injector = get_injector()
    if injector is None or not injector.plan.has_site(site):
        return None

    def hook():
        injector.check(site)
    return hook


def worker_faults(key):
    """Run the worker-side crash/hang sites for job ``key``.

    Called by the job executor before the simulation starts.  A crash
    spec raises :class:`WorkerCrash` (``mode='exception'``, the
    default) or hard-exits the process (``mode='exit'`` -- downgraded
    to an exception when not inside a worker process, so an injected
    crash can never kill the batch parent).  A hang spec sleeps for
    ``duration`` seconds.
    """
    injector = get_injector()
    if injector is None:
        return
    spec = injector.poll('pool.worker_crash', key=key)
    if spec is not None:
        if spec.mode == 'exit' and _in_worker_process():
            os._exit(3)
        raise WorkerCrash('injected worker crash', key=key,
                          mode=spec.mode)
    spec = injector.poll('pool.worker_hang', key=key)
    if spec is not None:
        import time
        time.sleep(spec.duration if spec.duration is not None else 30.0)


def _in_worker_process():
    try:
        import multiprocessing
        return multiprocessing.parent_process() is not None
    except Exception:                            # pragma: no cover
        return False


class ChaosDetector:
    """Delegating detector proxy that injects ``detector.hook`` faults.

    Wraps a real detector; every load/store hook first polls the
    injector, so an armed plan makes the detector raise exactly once
    (or per its spec) while all other behaviour -- reports, attach,
    costs -- passes straight through.
    """

    def __init__(self, inner, injector):
        self._inner = inner
        self._injector = injector

    def on_load(self, addr, value, interp):
        self._injector.check('detector.hook')
        return self._inner.on_load(addr, value, interp)

    def on_store(self, addr, value, interp):
        self._injector.check('detector.hook')
        return self._inner.on_store(addr, value, interp)

    def __getattr__(self, name):
        return getattr(self._inner, name)
