"""Process-local resilience event log.

Degradations, watchdog truncations, injected faults and backend
fallbacks are *survived*, so by design they leave no trace in a
:class:`RunResult` (degraded runs must stay byte-identical to clean
reference runs).  This recorder is where they leave their trace
instead: a bounded in-process ring of structured events that tests,
benchmarks and operators can inspect after the fact.

Events recorded inside pool *worker processes* stay in those processes;
the parent-side audit trail for batches is the
:class:`~repro.jobs.metrics.RunMetrics` event log.  Serial (in-process)
execution shares this recorder with the caller.
"""

from __future__ import annotations

import threading
import time

_MAX_EVENTS = 1000

_lock = threading.Lock()
_events = []
_seq = 0


def record(kind, **fields):
    """Append one event; returns the stored entry."""
    global _seq
    entry = {'event': kind, 'ts': time.time()}
    entry.update(fields)
    with _lock:
        _seq += 1
        entry['seq'] = _seq
        _events.append(entry)
        if len(_events) > _MAX_EVENTS:
            del _events[:len(_events) - _MAX_EVENTS]
    return entry


def recent(kind=None):
    """Recorded events, oldest first, optionally filtered by kind."""
    with _lock:
        snapshot = list(_events)
    if kind is None:
        return snapshot
    return [entry for entry in snapshot if entry['event'] == kind]


def counts():
    """``{event kind: occurrences}`` over the retained window."""
    tally = {}
    for entry in recent():
        tally[entry['event']] = tally.get(entry['event'], 0) + 1
    return tally


def clear():
    """Drop all retained events (test isolation)."""
    global _seq
    with _lock:
        del _events[:]
        _seq = 0
