"""PathExpander reproduction (MICRO 2006).

PathExpander increases the path coverage of dynamic bug detection by
transparently executing non-taken paths (NT-paths) in a sandbox, so
bugs on paths the input never exercises are still observed by the
detector.  This package reproduces the paper's full system on a
Python-simulated machine: a MiniC compiler with the Section 4.4
variable-fixing pass, a cost-modelled CPU with BTB exercise counters
and a versioned L1, the standard / CMP / software PathExpander
implementations, three dynamic detectors, the benchmark applications
with their seeded bugs, and the evaluation harness.

Quickstart::

    from repro import compile_minic, run_with_and_without

    program = compile_minic(source, name='demo')
    base, expanded = run_with_and_without(program, 'assertions')
    print(base.reports, expanded.reports)
"""

from repro.core.config import Mode, PathExpanderConfig
from repro.core.result import NTPathTermination, RunResult
from repro.core.runner import (make_detector, run_program, run_source,
                               run_with_and_without)
from repro.minic.codegen import compile_minic

__version__ = '1.0.0'

__all__ = ['Mode', 'PathExpanderConfig', 'RunResult', 'NTPathTermination',
           'run_program', 'run_source', 'run_with_and_without',
           'make_detector', 'compile_minic', '__version__']
