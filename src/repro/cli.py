"""Command-line interface.

::

    python -m repro run FILE.mc [--detector ccured] [--mode standard]
                                [--input TEXT] [--ints 1,2,3] [--trace]
    python -m repro disasm FILE.mc [--function NAME]
    python -m repro apps
    python -m repro bugs APP [--version N]
    python -m repro experiment ID [--jobs N] [--cache DIR] [--json]
    python -m repro batch [IDS... | --all] [--jobs N] [--cache DIR]
    python -m repro report [PATH]            # regenerate EXPERIMENTS.md
    python -m repro cache fsck DIR [--repair] [--json]

``--jobs N`` fans an experiment's simulations out over N worker
processes; ``--cache DIR`` keeps an on-disk result store so re-runs
with unchanged inputs perform zero simulations.  Both print a job
metrics summary after the tables.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.apps.bugs import classify_reports
from repro.apps.registry import ALL_APPS, get_app
from repro.core.config import (BACKEND_CHOICES, Mode, PathExpanderConfig,
                               set_default_backend)
from repro.core.runner import make_detector, run_program
from repro.harness import experiments
from repro.harness.trace import TracedRun
from repro.isa.disasm import disassemble, function_listing
from repro.minic.codegen import compile_minic

EXPERIMENT_RUNNERS = {
    'table2': experiments.run_table2,
    'table3': experiments.run_table3,
    'table4': experiments.run_table4,
    'table5': experiments.run_table5,
    'fig3': lambda: experiments.run_fig3()[0],
    'fig7': experiments.run_fig7,
    'fig8': experiments.run_fig8,
    'fig9': experiments.run_fig9,
    'table6': experiments.run_table6,
    'fig10': experiments.run_fig10,
    'abl1': experiments.run_ablation_nt_from_nt,
    'ext1': experiments.run_ext_os_sandbox,
    'ext2': experiments.run_ext_random_selection,
    'val1': experiments.run_val_cmp_model,
}

# Drivers that accept a JobPool (pool=) and an app subset (apps=).
POOLED_EXPERIMENTS = frozenset({'fig7', 'fig8', 'fig9', 'table6'})
APPS_EXPERIMENTS = frozenset({'fig7', 'fig8', 'fig9', 'table6'})


def _parse_ints(text):
    if not text:
        return []
    return [int(piece) for piece in text.split(',')]


def _build_parser():
    parser = argparse.ArgumentParser(
        prog='repro',
        description='PathExpander reproduction (MICRO 2006)')
    sub = parser.add_subparsers(dest='command', required=True)

    run_cmd = sub.add_parser('run', help='compile and run a MiniC file')
    run_cmd.add_argument('file')
    run_cmd.add_argument('--detector', default='ccured',
                         choices=['none', 'ccured', 'iwatcher',
                                  'assertions'])
    run_cmd.add_argument('--mode', default=Mode.STANDARD,
                         choices=list(Mode.ALL))
    run_cmd.add_argument('--input', default='',
                         help='text served to getc()')
    run_cmd.add_argument('--ints', default='',
                         help='comma-separated ints for read_int()')
    run_cmd.add_argument('--trace', action='store_true',
                         help='print the NT-path event log')
    run_cmd.add_argument('--no-fixing', action='store_true',
                         help='disable variable fixing (Section 4.4)')
    run_cmd.add_argument('--backend', default=None,
                         choices=list(BACKEND_CHOICES),
                         help='execution backend (default: fast, or '
                              '$REPRO_BACKEND)')

    disasm_cmd = sub.add_parser('disasm',
                                help='disassemble a MiniC file')
    disasm_cmd.add_argument('file')
    disasm_cmd.add_argument('--function', default=None)

    sub.add_parser('apps', help='list the benchmark applications')

    bugs_cmd = sub.add_parser('bugs',
                              help='run one buggy app and classify')
    bugs_cmd.add_argument('app')
    bugs_cmd.add_argument('--version', type=int, default=0)

    exp_cmd = sub.add_parser('experiment', help='run one experiment')
    exp_cmd.add_argument('id', choices=sorted(EXPERIMENT_RUNNERS))
    exp_cmd.add_argument('--plot', action='store_true',
                         help='render ASCII charts (fig3, fig7)')
    _add_jobs_options(exp_cmd)

    batch_cmd = sub.add_parser(
        'batch', help='run several experiments through one job pool')
    batch_cmd.add_argument('ids', nargs='*',
                           metavar='ID',
                           help='experiment ids (see "experiment")')
    batch_cmd.add_argument('--all', action='store_true',
                           help='run every experiment')
    _add_jobs_options(batch_cmd)

    report_cmd = sub.add_parser('report',
                                help='regenerate EXPERIMENTS.md')
    report_cmd.add_argument('path', nargs='?', default='EXPERIMENTS.md')

    cache_cmd = sub.add_parser('cache',
                               help='manage an on-disk result cache')
    cache_sub = cache_cmd.add_subparsers(dest='cache_command',
                                         required=True)
    fsck_cmd = cache_sub.add_parser(
        'fsck', help='verify every cached record (checksums, shape)')
    fsck_cmd.add_argument('dir', help='cache directory')
    fsck_cmd.add_argument('--repair', action='store_true',
                          help='delete corrupt records so the jobs '
                               'rerun (results are reproducible)')
    fsck_cmd.add_argument('--json', action='store_true',
                          help='emit the report as JSON')
    return parser


def _add_jobs_options(cmd):
    cmd.add_argument('--jobs', type=int, default=1,
                     help='worker processes (1 = in-process serial)')
    cmd.add_argument('--cache', default=None, metavar='DIR',
                     help='on-disk result cache directory')
    cmd.add_argument('--timeout', type=float, default=None,
                     help='per-job timeout in seconds (pooled mode)')
    cmd.add_argument('--json', action='store_true',
                     help='emit results (and metrics) as JSON')
    cmd.add_argument('--apps', default=None,
                     help='comma-separated app subset for the '
                          'coverage/overhead experiments')
    cmd.add_argument('--backend', default=None,
                     choices=list(BACKEND_CHOICES),
                     help='execution backend for every simulation '
                          '(default: fast, or $REPRO_BACKEND)')


def _apply_backend(args):
    """Make ``--backend`` the process-wide default, including for job
    pool workers (which inherit it through ``$REPRO_BACKEND``).  Cache
    keys ignore the backend on purpose: the two backends are
    result-equivalent, so cached results stay valid either way."""
    if getattr(args, 'backend', None):
        set_default_backend(args.backend)
        os.environ['REPRO_BACKEND'] = args.backend


def _make_pool(args):
    """A JobPool wired to the CLI's cache/metrics options, or None."""
    if args.jobs <= 1 and not args.cache:
        return None
    from repro.jobs import JobPool, ResultStore, RunMetrics
    store = None
    log_path = None
    if args.cache:
        store = ResultStore(args.cache)
        os.makedirs(args.cache, exist_ok=True)
        log_path = os.path.join(args.cache, 'events.jsonl')
    metrics = RunMetrics(log_path=log_path)
    return JobPool(jobs=max(args.jobs, 1), store=store,
                   metrics=metrics, timeout=args.timeout)


def _runner_kwargs(exp_id, args, pool):
    kwargs = {}
    if pool is not None and exp_id in POOLED_EXPERIMENTS:
        kwargs['pool'] = pool
    if args.apps and exp_id in APPS_EXPERIMENTS:
        kwargs['apps'] = tuple(
            name.strip() for name in args.apps.split(',')
            if name.strip())
    return kwargs


def _cmd_run(args):
    with open(args.file) as handle:
        source = handle.read()
    program = compile_minic(source, name=args.file)
    config = PathExpanderConfig(
        mode=args.mode, variable_fixing=not args.no_fixing,
        collect_nt_details=args.trace, backend=args.backend)
    detector = make_detector(args.detector)
    if args.trace:
        traced = TracedRun(program, detector=detector, config=config,
                           text_input=args.input,
                           int_input=_parse_ints(args.ints))
        result = traced.run()
        print(traced.format(limit=60))
    else:
        result = run_program(program, detector=detector, config=config,
                             text_input=args.input,
                             int_input=_parse_ints(args.ints))
        print(result)
    if result.output:
        print('--- program output ---')
        sys.stdout.write(result.output)
    for report in result.reports:
        print('REPORT: %r' % report)
    return 0


def _cmd_disasm(args):
    with open(args.file) as handle:
        source = handle.read()
    program = compile_minic(source, name=args.file)
    if args.function:
        print(function_listing(program, args.function))
    else:
        print(disassemble(program))
    return 0


def _cmd_apps(_args):
    print('%-14s %-28s %-9s %s' % ('name', 'tools', 'versions',
                                   'tested bugs'))
    for name in sorted(ALL_APPS):
        app = ALL_APPS[name]
        bug_count = sum((2 if bug.is_memory_bug else 1)
                        for bugs in app.versions.values()
                        for bug in bugs)
        print('%-14s %-28s %-9d %d'
              % (name, '+'.join(app.tools) or '-', len(app.versions),
                 bug_count))
    return 0


def _cmd_bugs(args):
    app = get_app(args.app)
    program = app.compile(args.version)
    bugs = app.bugs(args.version)
    text, ints = app.default_input()
    detector_name = app.tools[0] if app.tools else 'none'
    for mode in (Mode.BASELINE, Mode.STANDARD):
        result = run_program(program,
                             detector=make_detector(detector_name),
                             config=app.make_config(mode=mode),
                             text_input=text, int_input=ints)
        found, false_positives = classify_reports(result.reports, bugs)
        print('%-9s detected=%s false-positives=%d NT-paths=%d'
              % (mode, sorted(found) or '[]', len(false_positives),
                 result.nt_spawned))
    for bug in bugs:
        status = 'expected DETECTED' if bug.expected_detected else \
            'expected MISSED (%s)' % bug.miss_reason
        print('  %-12s %s -- %s' % (bug.bug_id, status,
                                    bug.description))
    return 0


def _cmd_experiment(args):
    _apply_backend(args)
    if args.plot and args.id == 'fig3':
        from repro.harness.plots import fig3_plot
        result, details = experiments.run_fig3()
        print(result.format())
        print()
        print(fig3_plot(details))
        return 0
    pool = _make_pool(args)
    result = EXPERIMENT_RUNNERS[args.id](
        **_runner_kwargs(args.id, args, pool))
    if args.json:
        payload = result.to_dict()
        if pool is not None:
            payload['metrics'] = pool.metrics.to_dict()
        print(json.dumps(payload, indent=2))
        return 0
    print(result.format())
    if args.plot and args.id == 'fig7':
        from repro.harness.plots import coverage_bars
        print()
        print(coverage_bars(result.rows))
    if pool is not None:
        print()
        print(pool.metrics.format_summary())
    return 0


def _cmd_batch(args):
    ids = list(args.ids)
    if args.all:
        ids = sorted(EXPERIMENT_RUNNERS)
    if not ids:
        print('batch: give experiment IDs or --all', file=sys.stderr)
        return 2
    unknown = [exp_id for exp_id in ids
               if exp_id not in EXPERIMENT_RUNNERS]
    if unknown:
        print('batch: unknown experiment id(s): %s (choose from %s)'
              % (', '.join(unknown), ', '.join(sorted(
                  EXPERIMENT_RUNNERS))), file=sys.stderr)
        return 2
    _apply_backend(args)
    pool = _make_pool(args)
    payloads = []
    for exp_id in ids:
        result = EXPERIMENT_RUNNERS[exp_id](
            **_runner_kwargs(exp_id, args, pool))
        if args.json:
            payloads.append(result.to_dict())
        else:
            print(result.format())
            print()
    if args.json:
        payload = {'experiments': payloads}
        if pool is not None:
            payload['metrics'] = pool.metrics.to_dict()
        print(json.dumps(payload, indent=2))
    elif pool is not None:
        print(pool.metrics.format_summary())
    return 0


def _cmd_report(args):
    from repro.harness.generate_report import main as report_main
    report_main([args.path])
    return 0


def _cmd_cache(args):
    from repro.jobs import ResultStore
    if not os.path.isdir(args.dir):
        print('cache fsck: no such directory: %s' % args.dir,
              file=sys.stderr)
        return 2
    report = ResultStore(args.dir).fsck(repair=args.repair)
    if args.json:
        payload = dict(report)
        payload['corrupt'] = [{'key': key, 'reason': reason}
                              for key, reason in report['corrupt']]
        print(json.dumps(payload, indent=2))
    else:
        print('checked   %d record(s)' % report['checked'])
        print('stale tmp %d removed' % report['stale_tmp'])
        for key, reason in report['corrupt']:
            print('corrupt   %s  (%s)' % (key, reason))
        if report['repaired']:
            print('repaired  %d record(s) removed'
                  % len(report['repaired']))
        if not report['corrupt']:
            print('ok        no corruption found')
    # Corrupt records that remain on disk are an error condition.
    remaining = len(report['corrupt']) - len(report['repaired'])
    return 1 if remaining else 0


_COMMANDS = {
    'run': _cmd_run,
    'disasm': _cmd_disasm,
    'apps': _cmd_apps,
    'bugs': _cmd_bugs,
    'experiment': _cmd_experiment,
    'batch': _cmd_batch,
    'report': _cmd_report,
    'cache': _cmd_cache,
}


def main(argv=None):
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == '__main__':
    sys.exit(main())
