"""MiniC lexer."""

from __future__ import annotations

from repro.minic.types import MiniCError

KEYWORDS = frozenset({
    'int', 'char', 'void', 'struct', 'if', 'else', 'while', 'for',
    'return', 'break', 'continue', 'assert', 'sizeof',
})

# Longest-match-first operator table.
OPERATORS = [
    '<<', '>>', '<=', '>=', '==', '!=', '&&', '||', '->',
    '+', '-', '*', '/', '%', '=', '<', '>', '!', '&', '|', '^', '~',
    '(', ')', '{', '}', '[', ']', ';', ',', '.',
]

_ESCAPES = {'n': '\n', 't': '\t', 'r': '\r', '0': '\0',
            '\\': '\\', "'": "'", '"': '"'}


class Token:
    __slots__ = ('kind', 'value', 'line')

    def __init__(self, kind, value, line):
        self.kind = kind        # 'num', 'id', 'kw', 'op', 'str', 'eof'
        self.value = value
        self.line = line

    def __repr__(self):
        return '<Token %s %r @%d>' % (self.kind, self.value, self.line)


def tokenize(source):
    tokens = []
    pos = 0
    line = 1
    length = len(source)
    while pos < length:
        char = source[pos]
        if char == '\n':
            line += 1
            pos += 1
            continue
        if char in ' \t\r':
            pos += 1
            continue
        if source.startswith('//', pos):
            end = source.find('\n', pos)
            pos = length if end < 0 else end
            continue
        if source.startswith('/*', pos):
            end = source.find('*/', pos + 2)
            if end < 0:
                raise MiniCError('unterminated comment', line)
            line += source.count('\n', pos, end)
            pos = end + 2
            continue
        if char.isdigit():
            start = pos
            if source.startswith('0x', pos) or source.startswith('0X', pos):
                pos += 2
                while pos < length and source[pos] in '0123456789abcdefABCDEF':
                    pos += 1
                tokens.append(Token('num', int(source[start:pos], 16), line))
            else:
                while pos < length and source[pos].isdigit():
                    pos += 1
                tokens.append(Token('num', int(source[start:pos]), line))
            continue
        if char.isalpha() or char == '_':
            start = pos
            while pos < length and (source[pos].isalnum()
                                    or source[pos] == '_'):
                pos += 1
            word = source[start:pos]
            kind = 'kw' if word in KEYWORDS else 'id'
            tokens.append(Token(kind, word, line))
            continue
        if char == "'":
            pos += 1
            if pos >= length:
                raise MiniCError('unterminated char literal', line)
            if source[pos] == '\\':
                pos += 1
                escape = source[pos]
                if escape not in _ESCAPES:
                    raise MiniCError('bad escape %r' % escape, line)
                value = ord(_ESCAPES[escape])
                pos += 1
            else:
                value = ord(source[pos])
                pos += 1
            if pos >= length or source[pos] != "'":
                raise MiniCError('unterminated char literal', line)
            pos += 1
            tokens.append(Token('num', value, line))
            continue
        if char == '"':
            pos += 1
            chars = []
            while pos < length and source[pos] != '"':
                if source[pos] == '\\':
                    pos += 1
                    escape = source[pos]
                    if escape not in _ESCAPES:
                        raise MiniCError('bad escape %r' % escape, line)
                    chars.append(_ESCAPES[escape])
                else:
                    chars.append(source[pos])
                pos += 1
            if pos >= length:
                raise MiniCError('unterminated string literal', line)
            pos += 1
            tokens.append(Token('str', ''.join(chars), line))
            continue
        for op in OPERATORS:
            if source.startswith(op, pos):
                tokens.append(Token('op', op, line))
                pos += len(op)
                break
        else:
            raise MiniCError('unexpected character %r' % char, line)
    tokens.append(Token('eof', None, line))
    return tokens
