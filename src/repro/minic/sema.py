"""MiniC semantic tables: struct layouts, symbols, function signatures."""

from __future__ import annotations

from repro.minic.types import (INT, ArrayType, MiniCError, PtrType,
                               StructType)

# Builtin functions the code generator lowers specially.
BUILTINS = frozenset({
    'malloc', 'free', 'putc', 'getc', 'print_int', 'read_int',
    'rand', 'time', 'exit',
})


class GlobalSym:
    __slots__ = ('name', 'type', 'address')

    def __init__(self, name, type_, address):
        self.name = name
        self.type = type_
        self.address = address


class LocalSym:
    __slots__ = ('name', 'type', 'offset')

    def __init__(self, name, type_, offset):
        self.name = name
        self.type = type_
        self.offset = offset        # relative to FP (negative)


class FuncSym:
    __slots__ = ('name', 'ret_type', 'param_types', 'decl')

    def __init__(self, name, ret_type, param_types, decl):
        self.name = name
        self.ret_type = ret_type
        self.param_types = param_types
        self.decl = decl


class TypeTable:
    """Resolves parser type specs into :mod:`repro.minic.types` types."""

    def __init__(self):
        self.structs = {}

    def declare_struct(self, decl):
        if decl.name in self.structs:
            raise MiniCError('duplicate struct %s' % decl.name, decl.line)
        struct = StructType(decl.name)
        # Register before laying out fields so self-referential
        # pointers (struct node *next) resolve.
        self.structs[decl.name] = struct
        for field_spec, field_name in decl.fields:
            struct.add_field(field_name, self.resolve(field_spec,
                                                      decl.line))
        if struct.size == 0:
            raise MiniCError('empty struct %s' % decl.name, decl.line)
        return struct

    def resolve(self, spec, line=None):
        if len(spec) == 3:
            base_name, depth, count = spec
            inner = self.resolve((base_name, depth), line)
            return ArrayType(inner, count)
        base_name, depth = spec
        if base_name == 'int':
            base = INT
        elif base_name == 'void':
            if depth == 0:
                return None         # void: only valid as a return type
            base = INT              # void* modelled as int*
        else:
            if base_name not in self.structs:
                raise MiniCError('unknown struct %s' % base_name, line)
            base = self.structs[base_name]
        for _ in range(depth):
            base = PtrType(base)
        if depth == 0 and isinstance(base, StructType):
            return base
        return base


class Scope:
    """Lexically nested local scopes within a function."""

    def __init__(self, parent=None):
        self.parent = parent
        self.symbols = {}

    def define(self, sym, line=None):
        if sym.name in self.symbols:
            raise MiniCError('duplicate local %r' % sym.name, line)
        self.symbols[sym.name] = sym

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None
