"""MiniC recursive-descent parser."""

from __future__ import annotations

from repro.minic import ast_nodes as ast
from repro.minic.lexer import tokenize
from repro.minic.types import MiniCError

# type_spec is represented pre-semantically as (base_name, ptr_depth),
# where base_name is 'int', 'char', 'void' or a struct name.

_TYPE_KEYWORDS = ('int', 'char', 'void', 'struct')


class Parser:

    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0
        self.struct_names = set()

    # ------------------------------------------------------------------
    # token plumbing

    @property
    def tok(self):
        return self.tokens[self.pos]

    def peek(self, offset=1):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, kind, value=None):
        token = self.tok
        if token.kind != kind or (value is not None and token.value != value):
            raise MiniCError('expected %s %r, got %r'
                             % (kind, value, token.value), token.line)
        return self.advance()

    def accept(self, kind, value=None):
        token = self.tok
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    # ------------------------------------------------------------------
    # top level

    def parse(self):
        structs = []
        globals_ = []
        functions = []
        while self.tok.kind != 'eof':
            if (self.tok.kind == 'kw' and self.tok.value == 'struct'
                    and self.peek(2).value == '{'):
                structs.append(self._struct_decl())
                continue
            type_spec = self._type_spec()
            name = self.expect('id').value
            if self.tok.value == '(':
                functions.append(self._function(type_spec, name))
            else:
                globals_.append(self._global_tail(type_spec, name))
        return ast.TranslationUnit(structs, globals_, functions)

    def _struct_decl(self):
        line = self.expect('kw', 'struct').line
        name = self.expect('id').value
        self.struct_names.add(name)
        self.expect('op', '{')
        fields = []
        while not self.accept('op', '}'):
            field_type = self._type_spec()
            field_name = self.expect('id').value
            if self.accept('op', '['):
                count = self.expect('num').value
                self.expect('op', ']')
                field_type = (field_type[0], field_type[1], count)
            self.expect('op', ';')
            fields.append((field_type, field_name))
        self.expect('op', ';')
        return ast.StructDecl(name, fields, line)

    def _type_spec(self):
        token = self.tok
        if token.kind == 'kw' and token.value in ('int', 'char', 'void'):
            base = 'int' if token.value == 'char' else token.value
            self.advance()
        elif token.kind == 'kw' and token.value == 'struct':
            self.advance()
            base = self.expect('id').value
        else:
            raise MiniCError('expected type, got %r' % token.value,
                             token.line)
        depth = 0
        while self.accept('op', '*'):
            depth += 1
        return (base, depth)

    def _is_type_start(self):
        token = self.tok
        return token.kind == 'kw' and token.value in _TYPE_KEYWORDS

    def _global_tail(self, type_spec, name):
        line = self.tok.line
        array_size = None
        init = None
        if self.accept('op', '['):
            array_size = self.expect('num').value
            self.expect('op', ']')
        if self.accept('op', '='):
            if self.accept('op', '{'):
                values = [self._const_int()]
                while self.accept('op', ','):
                    values.append(self._const_int())
                self.expect('op', '}')
                init = values
            elif self.tok.kind == 'str':
                init = self.advance().value
            else:
                init = self._const_int()
        self.expect('op', ';')
        return ast.GlobalDecl(type_spec, name, array_size, init, line)

    def _const_int(self):
        negative = bool(self.accept('op', '-'))
        value = self.expect('num').value
        return -value if negative else value

    def _function(self, ret_type, name):
        line = self.tok.line
        self.expect('op', '(')
        params = []
        if not self.accept('op', ')'):
            while True:
                if self.tok.kind == 'kw' and self.tok.value == 'void' \
                        and self.peek().value == ')':
                    self.advance()
                    break
                param_type = self._type_spec()
                param_name = self.expect('id').value
                params.append((param_type, param_name))
                if not self.accept('op', ','):
                    break
            self.expect('op', ')')
        body = self._block()
        return ast.FuncDecl(ret_type, name, params, body, line)

    # ------------------------------------------------------------------
    # statements

    def _block(self):
        line = self.expect('op', '{').line
        stmts = []
        while not self.accept('op', '}'):
            stmts.append(self._statement())
        return ast.Block(stmts, line)

    def _statement(self):
        token = self.tok
        if token.kind == 'op' and token.value == '{':
            return self._block()
        if token.kind == 'kw':
            keyword = token.value
            if keyword == 'if':
                return self._if_stmt()
            if keyword == 'while':
                return self._while_stmt()
            if keyword == 'for':
                return self._for_stmt()
            if keyword == 'return':
                self.advance()
                expr = None
                if not (self.tok.kind == 'op' and self.tok.value == ';'):
                    expr = self._expression()
                self.expect('op', ';')
                return ast.Return(expr, token.line)
            if keyword == 'break':
                self.advance()
                self.expect('op', ';')
                node = ast.Break()
                node.line = token.line
                return node
            if keyword == 'continue':
                self.advance()
                self.expect('op', ';')
                node = ast.Continue()
                node.line = token.line
                return node
            if keyword == 'assert':
                self.advance()
                self.expect('op', '(')
                cond = self._expression()
                self.expect('op', ',')
                label = self.expect('str').value
                self.expect('op', ')')
                self.expect('op', ';')
                return ast.Assert(cond, label, token.line)
            if keyword in _TYPE_KEYWORDS:
                return self._local_decl()
        expr = self._expression()
        self.expect('op', ';')
        return ast.ExprStmt(expr, token.line)

    def _local_decl(self):
        line = self.tok.line
        type_spec = self._type_spec()
        name = self.expect('id').value
        array_size = None
        init = None
        if self.accept('op', '['):
            array_size = self.expect('num').value
            self.expect('op', ']')
        elif self.accept('op', '='):
            init = self._expression()
        self.expect('op', ';')
        return ast.Decl(type_spec, name, array_size, init, line)

    def _if_stmt(self):
        line = self.expect('kw', 'if').line
        self.expect('op', '(')
        cond = self._expression()
        self.expect('op', ')')
        then = self._statement()
        els = None
        if self.accept('kw', 'else'):
            els = self._statement()
        return ast.If(cond, then, els, line)

    def _while_stmt(self):
        line = self.expect('kw', 'while').line
        self.expect('op', '(')
        cond = self._expression()
        self.expect('op', ')')
        body = self._statement()
        return ast.While(cond, body, line)

    def _for_stmt(self):
        line = self.expect('kw', 'for').line
        self.expect('op', '(')
        init = None
        if not (self.tok.kind == 'op' and self.tok.value == ';'):
            if self._is_type_start():
                init = self._local_decl()
            else:
                expr = self._expression()
                self.expect('op', ';')
                init = ast.ExprStmt(expr, line)
        else:
            self.expect('op', ';')
        if init is not None and not isinstance(init, (ast.Decl,
                                                      ast.ExprStmt)):
            raise MiniCError('bad for-initializer', line)
        cond = None
        if not (self.tok.kind == 'op' and self.tok.value == ';'):
            cond = self._expression()
        self.expect('op', ';')
        step = None
        if not (self.tok.kind == 'op' and self.tok.value == ')'):
            step = self._expression()
        self.expect('op', ')')
        body = self._statement()
        return ast.For(init, cond, step, body, line)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)

    def _expression(self):
        return self._assignment()

    def _assignment(self):
        left = self._logical_or()
        if self.tok.kind == 'op' and self.tok.value == '=':
            line = self.advance().line
            value = self._assignment()
            return ast.Assign(left, value, line)
        return left

    def _binary_level(self, operators, next_level):
        left = next_level()
        while self.tok.kind == 'op' and self.tok.value in operators:
            op = self.advance()
            right = next_level()
            left = ast.Binary(op.value, left, right, op.line)
        return left

    def _logical_or(self):
        return self._binary_level(('||',), self._logical_and)

    def _logical_and(self):
        return self._binary_level(('&&',), self._bit_or)

    def _bit_or(self):
        return self._binary_level(('|',), self._bit_xor)

    def _bit_xor(self):
        return self._binary_level(('^',), self._bit_and)

    def _bit_and(self):
        return self._binary_level(('&',), self._equality)

    def _equality(self):
        return self._binary_level(('==', '!='), self._relational)

    def _relational(self):
        return self._binary_level(('<', '<=', '>', '>='), self._shift)

    def _shift(self):
        return self._binary_level(('<<', '>>'), self._additive)

    def _additive(self):
        return self._binary_level(('+', '-'), self._multiplicative)

    def _multiplicative(self):
        return self._binary_level(('*', '/', '%'), self._unary)

    def _unary(self):
        token = self.tok
        if token.kind == 'op' and token.value in ('!', '-', '~', '*', '&'):
            self.advance()
            operand = self._unary()
            if token.value == '*':
                return ast.Deref(operand, token.line)
            if token.value == '&':
                return ast.AddrOf(operand, token.line)
            return ast.Unary(token.value, operand, token.line)
        if token.kind == 'kw' and token.value == 'sizeof':
            self.advance()
            self.expect('op', '(')
            type_spec = self._type_spec()
            self.expect('op', ')')
            return ast.SizeOf(type_spec, token.line)
        return self._postfix()

    def _postfix(self):
        node = self._primary()
        while True:
            token = self.tok
            if token.kind != 'op':
                return node
            if token.value == '[':
                self.advance()
                index = self._expression()
                self.expect('op', ']')
                node = ast.Index(node, index, token.line)
            elif token.value == '.':
                self.advance()
                field = self.expect('id').value
                node = ast.Member(node, field, False, token.line)
            elif token.value == '->':
                self.advance()
                field = self.expect('id').value
                node = ast.Member(node, field, True, token.line)
            elif token.value == '(':
                if not isinstance(node, ast.Var):
                    raise MiniCError('calls must use a function name',
                                     token.line)
                self.advance()
                args = []
                if not self.accept('op', ')'):
                    args.append(self._expression())
                    while self.accept('op', ','):
                        args.append(self._expression())
                    self.expect('op', ')')
                node = ast.Call(node.name, args, token.line)
            else:
                return node

    def _primary(self):
        token = self.tok
        if token.kind == 'num':
            self.advance()
            return ast.Num(token.value, token.line)
        if token.kind == 'str':
            self.advance()
            return ast.Str(token.value, token.line)
        if token.kind == 'id':
            self.advance()
            return ast.Var(token.value, token.line)
        if token.kind == 'op' and token.value == '(':
            self.advance()
            expr = self._expression()
            self.expect('op', ')')
            return expr
        raise MiniCError('unexpected token %r' % (token.value,), token.line)


def parse(source):
    return Parser(source).parse()
