"""MiniC code generator.

Lowers the AST onto the PathExpander ISA via
:class:`~repro.isa.builder.ProgramBuilder`.  Two properties matter to
PathExpander and are established here:

* **Memory-resident variables.**  Locals live in stack frames and
  globals in the data segment; every use re-loads from memory.  This is
  what makes the Section 4.4 variable fixes (predicated *stores*)
  effective on NT-paths.
* **Fix blocks on both edges.**  At every conditional branch whose
  condition the :mod:`repro.minic.fixer` analysis understands, both the
  taken-edge head and the fall-through-edge head begin with predicated
  instructions that force the condition variable to a value consistent
  with that edge.  On a normal run the predicate register is clear and
  they cost a NOP; at an NT-path entrance they execute once.

Global objects are laid out with 2-word guard gaps (the global
analogue of heap red zones) and the compiler emits one *blank data
structure* per pointed-to type for the pointer fixes of Section 4.4.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.isa.instructions import Reg, Syscall
from repro.isa.program import BlankStructInfo
from repro.minic import ast_nodes as ast
from repro.minic.fixer import analyze_condition
from repro.minic.parser import parse
from repro.minic.sema import (BUILTINS, FuncSym, GlobalSym, LocalSym,
                              Scope, TypeTable)
from repro.minic.types import (INT, ArrayType, MiniCError, PtrType,
                               StructType)

_MAX_ARGS = 6
_BLANK_MIN_WORDS = 32
_GLOBAL_GAP = 2


class _LoopContext:
    __slots__ = ('break_label', 'continue_label')

    def __init__(self, break_label, continue_label):
        self.break_label = break_label
        self.continue_label = continue_label


class _ExtendedFix:
    """A fix recipe for lvalues beyond simple variables.

    Implements the paper's future-work direction of "more sophisticated
    consistency fix": conditions over struct fields and
    constant-indexed array elements whose addresses are statically
    known.  ``store(compiler)`` emits the predicated store of the FIX
    register into the condition lvalue.
    """

    __slots__ = ('op', 'const_value', 'store', 'pointee_type')

    def __init__(self, op, const_value, store, pointee_type=None):
        self.op = op
        self.const_value = const_value
        self.store = store
        self.pointee_type = pointee_type

    def delta(self, branch_true):
        from repro.minic.fixer import _DELTAS
        true_delta, false_delta = _DELTAS[self.op]
        return true_delta if branch_true else false_delta

    def pointer_is_null(self, branch_true):
        if self.op == '==':
            return branch_true
        return not branch_true


class Compiler:
    """Compiles one MiniC translation unit into a Program."""

    def __init__(self, name='program', insert_fixes=True,
                 extended_fixes=False):
        self.name = name
        self.insert_fixes = insert_fixes
        self.extended_fixes = extended_fixes
        self.builder = ProgramBuilder(name)
        self.types = TypeTable()
        self.globals = {}
        self.functions = {}
        self._blank_addrs = {}
        self._scope = None
        self._next_temp = Reg.T_FIRST
        self._frame_words = 0
        self._frame_max = 0
        self._epilogue = None
        self._loops = []
        self._current_ret = None
        self._string_pool = {}

    # ==================================================================
    # top level

    def compile(self, source):
        unit = parse(source)
        for struct in unit.structs:
            self.types.declare_struct(struct)
        # Blank data structures (Section 4.4) come first in the data
        # segment: one per struct type plus the generic int blank.
        # Placing them below the first user global also means small
        # negative indexing off the first global lands in checkable
        # data (as it would on real hardware) instead of the null page.
        self._blank_addr(INT)
        for struct in self.types.structs.values():
            self._blank_addr(struct)
        for decl in unit.globals:
            self._declare_global(decl)
        for func in unit.functions:
            if func.name in self.functions or func.name in BUILTINS:
                raise MiniCError('duplicate function %r' % func.name,
                                 func.line)
            ret_type = self.types.resolve(func.ret_type, func.line)
            param_types = [self.types.resolve(spec, func.line)
                           for spec, _name in func.params]
            for ptype in param_types:
                if isinstance(ptype, (StructType, ArrayType)):
                    raise MiniCError('struct/array parameters are not '
                                     'supported', func.line)
            if isinstance(ret_type, (StructType, ArrayType)):
                raise MiniCError('struct/array return is not supported',
                                 func.line)
            self.functions[func.name] = FuncSym(func.name, ret_type,
                                                param_types, func)
        if 'main' not in self.functions:
            raise MiniCError('no main() function')
        builder = self.builder
        builder.func('_start')
        builder.call('main')
        builder.emit('halt')
        for func in self.functions.values():
            self._compile_function(func)
        return builder.build(entry='_start')

    def _declare_global(self, decl):
        if decl.name in self.globals:
            raise MiniCError('duplicate global %r' % decl.name, decl.line)
        base_type = self.types.resolve(decl.type_spec, decl.line)
        if decl.array_size is not None:
            if decl.array_size <= 0:
                raise MiniCError('bad array size', decl.line)
            var_type = ArrayType(base_type, decl.array_size)
        else:
            var_type = base_type
        address = self.builder.alloc_global(decl.name, var_type.size)
        self.builder.alloc_gap(_GLOBAL_GAP)
        self.globals[decl.name] = GlobalSym(decl.name, var_type, address)
        self._init_global(address, var_type, decl)

    def _init_global(self, address, var_type, decl):
        init = decl.init
        if init is None:
            return
        if isinstance(init, str):
            if not isinstance(var_type, ArrayType):
                raise MiniCError('string initialiser needs an array',
                                 decl.line)
            if len(init) + 1 > var_type.size:
                raise MiniCError('string initialiser too long', decl.line)
            for offset, char in enumerate(init):
                self.builder.set_data(address + offset, ord(char))
            self.builder.set_data(address + len(init), 0)
        elif isinstance(init, list):
            if not isinstance(var_type, ArrayType) \
                    or len(init) > var_type.count:
                raise MiniCError('bad array initialiser', decl.line)
            for offset, value in enumerate(init):
                self.builder.set_data(address + offset, value)
        else:
            self.builder.set_data(address, init)

    def _blank_addr(self, pointee):
        key = repr(pointee)
        if key not in self._blank_addrs:
            size = max(pointee.size, _BLANK_MIN_WORDS)
            address = self.builder.alloc_global('blank:%s' % key, size)
            self.builder.alloc_gap(_GLOBAL_GAP)
            self._blank_addrs[key] = address
            self.builder.register_blank_struct(
                BlankStructInfo(key, address, size))
        return self._blank_addrs[key]

    # ==================================================================
    # functions

    def _compile_function(self, func_sym):
        decl = func_sym.decl
        builder = self.builder
        builder.func(decl.name)
        self._scope = Scope()
        self._frame_words = 0
        self._frame_max = 0
        self._epilogue = builder.new_label('epi_%s' % decl.name)
        self._current_ret = func_sym.ret_type
        if len(decl.params) > _MAX_ARGS:
            raise MiniCError('too many parameters', decl.line)

        builder.emit('push', Reg.FP)
        builder.emit('mov', Reg.FP, Reg.SP)
        frame_instr = builder.emit('addi', Reg.SP, Reg.SP, 0)
        for index, (spec, name) in enumerate(decl.params):
            ptype = self.types.resolve(spec, decl.line)
            offset = self._alloc_frame(ptype.size)
            self._scope.define(LocalSym(name, ptype, offset), decl.line)
            builder.emit('st', Reg.A0 + index, Reg.FP, offset)

        self._stmt(decl.body)

        builder.bind(self._epilogue)
        builder.emit('mov', Reg.SP, Reg.FP)
        builder.emit('pop', Reg.FP)
        builder.emit('ret')
        frame_instr.c = -self._frame_max
        self._scope = None

    def _alloc_frame(self, size):
        self._frame_words += size
        if self._frame_words > self._frame_max:
            self._frame_max = self._frame_words
        return -self._frame_words

    # ==================================================================
    # temp registers

    def _alloc_temp(self):
        reg = self._next_temp
        if reg > Reg.T_LAST:
            raise MiniCError('expression too complex (temps exhausted)')
        self._next_temp = reg + 1
        return reg

    # ==================================================================
    # statements

    def _stmt(self, node):
        mark = self._next_temp
        method = self._STMTS[type(node)]
        method(self, node)
        self._next_temp = mark

    def _stmt_block(self, node):
        self._scope = Scope(self._scope)
        saved_frame = self._frame_words
        for stmt in node.stmts:
            self._stmt(stmt)
        self._frame_words = saved_frame
        self._scope = self._scope.parent

    def _stmt_decl(self, node):
        base_type = self.types.resolve(node.type_spec, node.line)
        if node.array_size is not None:
            if node.array_size <= 0:
                raise MiniCError('bad array size', node.line)
            var_type = ArrayType(base_type, node.array_size)
        else:
            var_type = base_type
        offset = self._alloc_frame(var_type.size)
        self._scope.define(LocalSym(node.name, var_type, offset),
                           node.line)
        if node.init is not None:
            if isinstance(var_type, (ArrayType, StructType)):
                raise MiniCError('cannot initialise aggregates',
                                 node.line)
            reg, _rtype = self._expr(node.init)
            self.builder.emit('st', reg, Reg.FP, offset)

    def _stmt_expr(self, node):
        self._expr(node.expr)

    def _stmt_if(self, node):
        builder = self.builder
        then_label = builder.new_label('then')
        end_label = builder.new_label('endif')
        fix = self._condition_fix(node.cond)
        reg, _ = self._expr(node.cond)
        builder.br(reg, then_label)
        # fall-through: FALSE edge head
        self._emit_fix(fix, branch_true=False)
        if node.els is not None:
            self._stmt(node.els)
        builder.jmp(end_label)
        builder.bind(then_label)
        self._emit_fix(fix, branch_true=True)
        self._stmt(node.then)
        builder.bind(end_label)

    def _stmt_while(self, node):
        builder = self.builder
        cond_label = builder.new_label('wcond')
        body_label = builder.new_label('wbody')
        end_label = builder.new_label('wend')
        builder.bind(cond_label)
        fix = self._condition_fix(node.cond)
        mark = self._next_temp
        reg, _ = self._expr(node.cond)
        self._next_temp = mark
        builder.br(reg, body_label)
        self._emit_fix(fix, branch_true=False)
        builder.jmp(end_label)
        builder.bind(body_label)
        self._emit_fix(fix, branch_true=True)
        self._loops.append(_LoopContext(end_label, cond_label))
        self._stmt(node.body)
        self._loops.pop()
        builder.jmp(cond_label)
        builder.bind(end_label)

    def _stmt_for(self, node):
        builder = self.builder
        self._scope = Scope(self._scope)
        saved_frame = self._frame_words
        if node.init is not None:
            self._stmt(node.init)
        cond_label = builder.new_label('fcond')
        body_label = builder.new_label('fbody')
        step_label = builder.new_label('fstep')
        end_label = builder.new_label('fend')
        builder.bind(cond_label)
        if node.cond is not None:
            fix = self._condition_fix(node.cond)
            mark = self._next_temp
            reg, _ = self._expr(node.cond)
            self._next_temp = mark
            builder.br(reg, body_label)
            self._emit_fix(fix, branch_true=False)
            builder.jmp(end_label)
            builder.bind(body_label)
            self._emit_fix(fix, branch_true=True)
        self._loops.append(_LoopContext(end_label, step_label))
        self._stmt(node.body)
        self._loops.pop()
        builder.bind(step_label)
        if node.step is not None:
            mark = self._next_temp
            self._expr(node.step)
            self._next_temp = mark
        builder.jmp(cond_label)
        builder.bind(end_label)
        self._frame_words = saved_frame
        self._scope = self._scope.parent

    def _stmt_return(self, node):
        if node.expr is not None:
            reg, _ = self._expr(node.expr)
            self.builder.emit('mov', Reg.RV, reg)
        self.builder.jmp(self._epilogue)

    def _stmt_break(self, node):
        if not self._loops:
            raise MiniCError('break outside loop', node.line)
        self.builder.jmp(self._loops[-1].break_label)

    def _stmt_continue(self, node):
        if not self._loops:
            raise MiniCError('continue outside loop', node.line)
        self.builder.jmp(self._loops[-1].continue_label)

    def _stmt_assert(self, node):
        reg, _ = self._expr(node.cond)
        self.builder.emit('assert', reg, node.label)

    # ==================================================================
    # variable-fixing support

    def _fix_lookup_type(self, name):
        sym = self._scope.lookup(name) if self._scope else None
        if sym is None:
            sym = self.globals.get(name)
        if sym is None:
            return None
        if isinstance(sym.type, (ArrayType, StructType)):
            return None
        return sym.type

    def _condition_fix(self, cond):
        if not self.insert_fixes:
            return None
        fix = analyze_condition(cond, self._fix_lookup_type)
        if fix is None and self.extended_fixes:
            fix = self._extended_condition_fix(cond)
        return fix

    # -- extended fixing (struct fields, constant array indices) -------

    def _static_lvalue(self, node):
        """(store_emitter, value_type) for a statically addressable
        lvalue, or None."""
        if isinstance(node, ast.Member) and not node.arrow \
                and isinstance(node.base, ast.Var):
            sym = self._scope.lookup(node.base.name) if self._scope \
                else None
            if sym is None:
                sym = self.globals.get(node.base.name)
            if sym is None or not isinstance(sym.type, StructType):
                return None
            offset, ftype = sym.type.field(node.field)
            if isinstance(ftype, (ArrayType, StructType)):
                return None
            return self._make_store(sym, offset), ftype
        if isinstance(node, ast.Index) and isinstance(node.base, ast.Var) \
                and isinstance(node.index, ast.Num):
            sym = self._scope.lookup(node.base.name) if self._scope \
                else None
            if sym is None:
                sym = self.globals.get(node.base.name)
            if sym is None or not isinstance(sym.type, ArrayType):
                return None
            elem = sym.type.elem
            if isinstance(elem, (ArrayType, StructType)):
                return None
            index = node.index.value
            if not 0 <= index < sym.type.count:
                return None
            return self._make_store(sym, index * elem.size), elem
        return None

    def _make_store(self, sym, offset):
        builder = self.builder
        if isinstance(sym, LocalSym):
            def store():
                builder.emit('st', Reg.FIX, Reg.FP, sym.offset + offset,
                             pred=True)
        else:
            def store():
                builder.emit('st', Reg.FIX, Reg.ZERO,
                             sym.address + offset, pred=True)
        return store

    def _extended_condition_fix(self, cond):
        from repro.minic.fixer import _DELTAS, _MIRROR
        if not isinstance(cond, ast.Binary) or cond.op not in _DELTAS:
            # bare lvalue used as a condition
            located = self._static_lvalue(cond)
            if located is None:
                return None
            store, vtype = located
            if vtype.is_pointer():
                return _ExtendedFix('!=', 0, store,
                                    pointee_type=vtype.pointee)
            return _ExtendedFix('!=', 0, store)
        left, right, op = cond.left, cond.right, cond.op
        if isinstance(left, ast.Num) and not isinstance(right, ast.Num):
            left, right, op = right, left, _MIRROR[op]
        if not isinstance(right, ast.Num):
            return None
        located = self._static_lvalue(left)
        if located is None:
            return None
        store, vtype = located
        if vtype.is_pointer():
            if right.value == 0 and op in ('==', '!='):
                return _ExtendedFix(op, 0, store,
                                    pointee_type=vtype.pointee)
            return None
        return _ExtendedFix(op, right.value, store)

    def _fix_store(self, name):
        sym = self._scope.lookup(name) if self._scope else None
        if sym is not None:
            self.builder.emit('st', Reg.FIX, Reg.FP, sym.offset,
                              pred=True)
        else:
            gsym = self.globals[name]
            self.builder.emit('st', Reg.FIX, Reg.ZERO, gsym.address,
                              pred=True)

    def _fix_load(self, name):
        sym = self._scope.lookup(name) if self._scope else None
        if sym is not None:
            self.builder.emit('ld', Reg.FIX, Reg.FP, sym.offset,
                              pred=True)
        else:
            gsym = self.globals[name]
            self.builder.emit('ld', Reg.FIX, Reg.ZERO, gsym.address,
                              pred=True)

    def _emit_fix(self, fix, branch_true):
        if fix is None:
            return
        builder = self.builder
        if isinstance(fix, _ExtendedFix):
            if fix.pointee_type is not None:
                if fix.pointer_is_null(branch_true):
                    builder.emit('li', Reg.FIX, 0, pred=True)
                else:
                    builder.emit('li', Reg.FIX,
                                 self._blank_addr(fix.pointee_type),
                                 pred=True)
            else:
                value = fix.const_value + fix.delta(branch_true)
                builder.emit('li', Reg.FIX, value, pred=True)
            fix.store()
            return
        if fix.kind == 'const':
            value = fix.const_value + fix.delta(branch_true)
            builder.emit('li', Reg.FIX, value, pred=True)
            self._fix_store(fix.var_name)
        elif fix.kind == 'var':
            self._fix_load(fix.other_name)
            delta = fix.delta(branch_true)
            if delta:
                builder.emit('addi', Reg.FIX, Reg.FIX, delta, pred=True)
            self._fix_store(fix.var_name)
        else:   # pointer
            if fix.pointer_is_null(branch_true):
                builder.emit('li', Reg.FIX, 0, pred=True)
            else:
                builder.emit('li', Reg.FIX,
                             self._blank_addr(fix.pointee_type),
                             pred=True)
            self._fix_store(fix.var_name)

    # ==================================================================
    # expressions: every _expr returns (register, Type)

    def _expr(self, node):
        return self._EXPRS[type(node)](self, node)

    def _expr_num(self, node):
        reg = self._alloc_temp()
        self.builder.emit('li', reg, node.value)
        return reg, INT

    def _expr_str(self, node):
        if node.value not in self._string_pool:
            base = self.builder.alloc_string(node.value)
            self.builder.alloc_gap(_GLOBAL_GAP)
            self._string_pool[node.value] = base
        reg = self._alloc_temp()
        self.builder.emit('li', reg, self._string_pool[node.value])
        return reg, PtrType(INT)

    def _expr_sizeof(self, node):
        resolved = self.types.resolve(node.type_spec, node.line)
        reg = self._alloc_temp()
        self.builder.emit('li', reg, resolved.size)
        return reg, INT

    def _lookup_sym(self, name, line):
        sym = self._scope.lookup(name) if self._scope else None
        if sym is None:
            sym = self.globals.get(name)
        if sym is None:
            raise MiniCError('undeclared identifier %r' % name, line)
        return sym

    def _expr_var(self, node):
        sym = self._lookup_sym(node.name, node.line)
        reg = self._alloc_temp()
        if isinstance(sym.type, ArrayType):
            # array decays to a pointer to its first element
            if isinstance(sym, LocalSym):
                self.builder.emit('addi', reg, Reg.FP, sym.offset)
            else:
                self.builder.emit('li', reg, sym.address)
            return reg, sym.type.decay()
        if isinstance(sym.type, StructType):
            raise MiniCError('struct value used directly: %r' % node.name,
                             node.line)
        if isinstance(sym, LocalSym):
            self.builder.emit('ld', reg, Reg.FP, sym.offset)
        else:
            self.builder.emit('ld', reg, Reg.ZERO, sym.address)
        return reg, sym.type

    # lvalues ----------------------------------------------------------

    def _addr(self, node):
        """Returns (register holding address, value Type at that addr)."""
        if isinstance(node, ast.Var):
            sym = self._lookup_sym(node.name, node.line)
            reg = self._alloc_temp()
            if isinstance(sym, LocalSym):
                self.builder.emit('addi', reg, Reg.FP, sym.offset)
            else:
                self.builder.emit('li', reg, sym.address)
            return reg, sym.type
        if isinstance(node, ast.Deref):
            reg, ptype = self._expr(node.operand)
            if not ptype.is_pointer():
                raise MiniCError('dereference of non-pointer', node.line)
            return reg, ptype.pointee
        if isinstance(node, ast.Index):
            return self._index_addr(node)
        if isinstance(node, ast.Member):
            return self._member_addr(node)
        raise MiniCError('expression is not an lvalue', node.line)

    def _index_addr(self, node):
        base_reg, base_type = self._expr(node.base)
        if not base_type.is_pointer():
            raise MiniCError('indexing a non-pointer', node.line)
        index_reg, _ = self._expr(node.index)
        elem = base_type.pointee
        if elem.size != 1:
            size_reg = self._alloc_temp()
            self.builder.emit('li', size_reg, elem.size)
            self.builder.emit('mul', index_reg, index_reg, size_reg)
        self.builder.emit('add', base_reg, base_reg, index_reg)
        self._next_temp = base_reg + 1
        return base_reg, elem

    def _member_addr(self, node):
        if node.arrow:
            base_reg, base_type = self._expr(node.base)
            if not base_type.is_pointer() \
                    or not isinstance(base_type.pointee, StructType):
                raise MiniCError("'->' on non-struct-pointer", node.line)
            struct = base_type.pointee
        else:
            base_reg, struct = self._addr(node.base)
            if isinstance(struct, PtrType) \
                    and isinstance(struct.pointee, StructType):
                # auto-deref: (p).field where p is struct*
                value_reg = base_reg
                self.builder.emit('ld', value_reg, value_reg, 0)
                struct = struct.pointee
            if not isinstance(struct, StructType):
                raise MiniCError("'.' on non-struct", node.line)
        offset, ftype = struct.field(node.field)
        if offset:
            self.builder.emit('addi', base_reg, base_reg, offset)
        return base_reg, ftype

    def _load_from(self, addr_reg, vtype):
        if isinstance(vtype, ArrayType):
            return addr_reg, vtype.decay()
        if isinstance(vtype, StructType):
            raise MiniCError('struct value loads are not supported')
        self.builder.emit('ld', addr_reg, addr_reg, 0)
        return addr_reg, vtype

    def _expr_index(self, node):
        reg, vtype = self._index_addr(node)
        return self._load_from(reg, vtype)

    def _expr_deref(self, node):
        reg, ptype = self._expr(node.operand)
        if not ptype.is_pointer():
            raise MiniCError('dereference of non-pointer', node.line)
        return self._load_from(reg, ptype.pointee)

    def _expr_member(self, node):
        reg, vtype = self._member_addr(node)
        return self._load_from(reg, vtype)

    def _expr_addrof(self, node):
        reg, vtype = self._addr(node.operand)
        return reg, PtrType(vtype)

    def _expr_assign(self, node):
        target = node.target
        if isinstance(target, ast.Var):
            sym = self._lookup_sym(target.name, target.line)
            if isinstance(sym.type, (ArrayType, StructType)):
                raise MiniCError('cannot assign aggregates', node.line)
            value_reg, value_type = self._expr(node.value)
            if isinstance(sym, LocalSym):
                self.builder.emit('st', value_reg, Reg.FP, sym.offset)
            else:
                self.builder.emit('st', value_reg, Reg.ZERO, sym.address)
            return value_reg, sym.type if sym.type.is_pointer() \
                else value_type
        addr_reg, vtype = self._addr(target)
        if isinstance(vtype, (ArrayType, StructType)):
            raise MiniCError('cannot assign aggregates', node.line)
        value_reg, _ = self._expr(node.value)
        self.builder.emit('st', value_reg, addr_reg, 0)
        self.builder.emit('mov', addr_reg, value_reg)
        self._next_temp = addr_reg + 1
        return addr_reg, vtype

    def _expr_unary(self, node):
        if node.op == '-':
            reg, _ = self._expr(node.operand)
            self.builder.emit('sub', reg, Reg.ZERO, reg)
            return reg, INT
        if node.op == '!':
            reg, _ = self._expr(node.operand)
            self.builder.emit('seq', reg, reg, Reg.ZERO)
            return reg, INT
        if node.op == '~':
            reg, _ = self._expr(node.operand)
            ones = self._alloc_temp()
            self.builder.emit('li', ones, -1)
            self.builder.emit('xor', reg, reg, ones)
            self._next_temp = reg + 1
            return reg, INT
        raise MiniCError('bad unary %r' % node.op, node.line)

    _ARITH = {'+': 'add', '-': 'sub', '*': 'mul', '/': 'div',
              '%': 'mod', '&': 'and', '|': 'or', '^': 'xor',
              '<<': 'shl', '>>': 'shr'}
    _COMPARE = {'<': 'slt', '<=': 'sle', '>': 'sgt', '>=': 'sge',
                '==': 'seq', '!=': 'sne'}

    def _expr_binary(self, node):
        op = node.op
        if op in ('&&', '||'):
            return self._expr_logical(node)
        left_reg, left_type = self._expr(node.left)
        right_reg, right_type = self._expr(node.right)
        result_type = INT
        if op in ('+', '-'):
            if left_type.is_pointer() and not right_type.is_pointer():
                self._scale(right_reg, left_type.pointee.size)
                result_type = left_type
            elif right_type.is_pointer() and op == '+' \
                    and not left_type.is_pointer():
                self._scale(left_reg, right_type.pointee.size)
                result_type = right_type
            elif left_type.is_pointer() and right_type.is_pointer():
                result_type = INT       # pointer difference, unscaled
        mnemonic = self._ARITH.get(op) or self._COMPARE.get(op)
        if mnemonic is None:
            raise MiniCError('bad operator %r' % op, node.line)
        self.builder.emit(mnemonic, left_reg, left_reg, right_reg)
        self._next_temp = left_reg + 1
        return left_reg, result_type

    def _scale(self, reg, size):
        if size != 1:
            scratch = self._alloc_temp()
            self.builder.emit('li', scratch, size)
            self.builder.emit('mul', reg, reg, scratch)
            self._next_temp = scratch

    def _expr_logical(self, node):
        builder = self.builder
        dest = self._alloc_temp()
        fix = self._condition_fix(node.left)
        mark = self._next_temp
        left_reg, _ = self._expr(node.left)
        self._next_temp = mark
        if node.op == '&&':
            rhs_label = builder.new_label('and_rhs')
            end_label = builder.new_label('and_end')
            builder.emit('li', dest, 0)
            builder.br(left_reg, rhs_label)
            self._emit_fix(fix, branch_true=False)
            builder.jmp(end_label)
            builder.bind(rhs_label)
            self._emit_fix(fix, branch_true=True)
            right_reg, _ = self._expr(node.right)
            builder.emit('sne', dest, right_reg, Reg.ZERO)
            builder.bind(end_label)
        else:
            taken_label = builder.new_label('or_taken')
            end_label = builder.new_label('or_end')
            builder.emit('li', dest, 1)
            builder.br(left_reg, taken_label)
            self._emit_fix(fix, branch_true=False)
            right_reg, _ = self._expr(node.right)
            builder.emit('sne', dest, right_reg, Reg.ZERO)
            builder.jmp(end_label)
            builder.bind(taken_label)
            self._emit_fix(fix, branch_true=True)
            builder.bind(end_label)
        self._next_temp = dest + 1
        return dest, INT

    # calls ------------------------------------------------------------

    def _expr_call(self, node):
        if node.name in BUILTINS:
            return self._builtin_call(node)
        func = self.functions.get(node.name)
        if func is None:
            raise MiniCError('call to unknown function %r' % node.name,
                             node.line)
        if len(node.args) != len(func.param_types):
            raise MiniCError('%s() expects %d args, got %d'
                             % (node.name, len(func.param_types),
                                len(node.args)), node.line)
        if len(node.args) > _MAX_ARGS:
            raise MiniCError('too many arguments', node.line)
        builder = self.builder
        mark = self._next_temp
        for reg in range(Reg.T_FIRST, mark):
            builder.emit('push', reg)
        arg_regs = []
        for arg in node.args:
            reg, _ = self._expr(arg)
            arg_regs.append(reg)
        for index, reg in enumerate(arg_regs):
            builder.emit('mov', Reg.A0 + index, reg)
        self._next_temp = mark
        builder.call(node.name)
        builder.emit('mov', Reg.SCRATCH, Reg.RV)
        for reg in reversed(range(Reg.T_FIRST, mark)):
            builder.emit('pop', reg)
        dest = self._alloc_temp()
        builder.emit('mov', dest, Reg.SCRATCH)
        ret_type = func.ret_type if func.ret_type is not None else INT
        return dest, ret_type

    def _builtin_call(self, node):
        builder = self.builder
        name = node.name
        if name == 'malloc':
            self._expect_args(node, 1)
            size_reg, _ = self._expr(node.args[0])
            dest = self._alloc_temp()
            builder.emit('malloc', dest, size_reg)
            self._next_temp = dest + 1
            return dest, PtrType(INT)
        if name == 'free':
            self._expect_args(node, 1)
            ptr_reg, _ = self._expr(node.args[0])
            builder.emit('free', ptr_reg)
            return ptr_reg, INT
        if name in ('putc', 'print_int', 'exit'):
            self._expect_args(node, 1)
            reg, _ = self._expr(node.args[0])
            builder.emit('mov', Reg.A1, reg)
            code = {'putc': Syscall.PUTC,
                    'print_int': Syscall.PRINT_INT,
                    'exit': Syscall.EXIT}[name]
            builder.emit('syscall', code)
            return reg, INT
        if name in ('getc', 'read_int', 'rand', 'time'):
            self._expect_args(node, 0)
            code = {'getc': Syscall.GETC, 'read_int': Syscall.READ_INT,
                    'rand': Syscall.RAND, 'time': Syscall.TIME}[name]
            builder.emit('syscall', code)
            dest = self._alloc_temp()
            builder.emit('mov', dest, Reg.RV)
            return dest, INT
        raise MiniCError('unhandled builtin %r' % name, node.line)

    def _expect_args(self, node, count):
        if len(node.args) != count:
            raise MiniCError('%s() expects %d args' % (node.name, count),
                             node.line)

    # dispatch tables ---------------------------------------------------

    _STMTS = {
        ast.Block: _stmt_block,
        ast.Decl: _stmt_decl,
        ast.ExprStmt: _stmt_expr,
        ast.If: _stmt_if,
        ast.While: _stmt_while,
        ast.For: _stmt_for,
        ast.Return: _stmt_return,
        ast.Break: _stmt_break,
        ast.Continue: _stmt_continue,
        ast.Assert: _stmt_assert,
    }

    _EXPRS = {
        ast.Num: _expr_num,
        ast.Str: _expr_str,
        ast.SizeOf: _expr_sizeof,
        ast.Var: _expr_var,
        ast.Assign: _expr_assign,
        ast.Binary: _expr_binary,
        ast.Unary: _expr_unary,
        ast.Call: _expr_call,
        ast.Index: _expr_index,
        ast.Deref: _expr_deref,
        ast.Member: _expr_member,
        ast.AddrOf: _expr_addrof,
    }


def compile_minic(source, name='program', insert_fixes=True,
                  extended_fixes=False):
    """Compile MiniC source text into a runnable Program.

    ``extended_fixes`` enables the future-work consistency-fixing pass
    (struct fields and constant array indices in branch conditions);
    the paper's prototype -- and therefore the default -- fixes simple
    condition variables only.
    """
    return Compiler(name=name, insert_fixes=insert_fixes,
                    extended_fixes=extended_fixes).compile(source)
