"""MiniC abstract syntax tree."""

from __future__ import annotations


class Node:
    __slots__ = ('line',)

    def __init__(self, line=None):
        self.line = line


# ---------------------------------------------------------------------
# top level

class TranslationUnit(Node):
    __slots__ = ('structs', 'globals', 'functions')

    def __init__(self, structs, globals_, functions):
        super().__init__()
        self.structs = structs
        self.globals = globals_
        self.functions = functions


class StructDecl(Node):
    __slots__ = ('name', 'fields')

    def __init__(self, name, fields, line=None):
        super().__init__(line)
        self.name = name
        self.fields = fields            # list of (type_spec, name)


class GlobalDecl(Node):
    __slots__ = ('type_spec', 'name', 'array_size', 'init')

    def __init__(self, type_spec, name, array_size, init, line=None):
        super().__init__(line)
        self.type_spec = type_spec
        self.name = name
        self.array_size = array_size    # None or int
        self.init = init                # None, int const, or list of ints


class FuncDecl(Node):
    __slots__ = ('ret_type', 'name', 'params', 'body')

    def __init__(self, ret_type, name, params, body, line=None):
        super().__init__(line)
        self.ret_type = ret_type
        self.name = name
        self.params = params            # list of (type_spec, name)
        self.body = body


# ---------------------------------------------------------------------
# statements

class Block(Node):
    __slots__ = ('stmts',)

    def __init__(self, stmts, line=None):
        super().__init__(line)
        self.stmts = stmts


class Decl(Node):
    __slots__ = ('type_spec', 'name', 'array_size', 'init')

    def __init__(self, type_spec, name, array_size, init, line=None):
        super().__init__(line)
        self.type_spec = type_spec
        self.name = name
        self.array_size = array_size
        self.init = init                # expression or None


class ExprStmt(Node):
    __slots__ = ('expr',)

    def __init__(self, expr, line=None):
        super().__init__(line)
        self.expr = expr


class If(Node):
    __slots__ = ('cond', 'then', 'els')

    def __init__(self, cond, then, els, line=None):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.els = els


class While(Node):
    __slots__ = ('cond', 'body')

    def __init__(self, cond, body, line=None):
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Node):
    __slots__ = ('init', 'cond', 'step', 'body')

    def __init__(self, init, cond, step, body, line=None):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Node):
    __slots__ = ('expr',)

    def __init__(self, expr, line=None):
        super().__init__(line)
        self.expr = expr


class Break(Node):
    __slots__ = ()


class Continue(Node):
    __slots__ = ()


class Assert(Node):
    __slots__ = ('cond', 'label')

    def __init__(self, cond, label, line=None):
        super().__init__(line)
        self.cond = cond
        self.label = label


# ---------------------------------------------------------------------
# expressions

class Num(Node):
    __slots__ = ('value',)

    def __init__(self, value, line=None):
        super().__init__(line)
        self.value = value


class Str(Node):
    __slots__ = ('value',)

    def __init__(self, value, line=None):
        super().__init__(line)
        self.value = value


class Var(Node):
    __slots__ = ('name',)

    def __init__(self, name, line=None):
        super().__init__(line)
        self.name = name


class Assign(Node):
    __slots__ = ('target', 'value')

    def __init__(self, target, value, line=None):
        super().__init__(line)
        self.target = target
        self.value = value


class Binary(Node):
    __slots__ = ('op', 'left', 'right')

    def __init__(self, op, left, right, line=None):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Unary(Node):
    __slots__ = ('op', 'operand')

    def __init__(self, op, operand, line=None):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Call(Node):
    __slots__ = ('name', 'args')

    def __init__(self, name, args, line=None):
        super().__init__(line)
        self.name = name
        self.args = args


class Index(Node):
    __slots__ = ('base', 'index')

    def __init__(self, base, index, line=None):
        super().__init__(line)
        self.base = base
        self.index = index


class Deref(Node):
    __slots__ = ('operand',)

    def __init__(self, operand, line=None):
        super().__init__(line)
        self.operand = operand


class AddrOf(Node):
    __slots__ = ('operand',)

    def __init__(self, operand, line=None):
        super().__init__(line)
        self.operand = operand


class Member(Node):
    __slots__ = ('base', 'field', 'arrow')

    def __init__(self, base, field, arrow, line=None):
        super().__init__(line)
        self.base = base
        self.field = field
        self.arrow = arrow


class SizeOf(Node):
    __slots__ = ('type_spec',)

    def __init__(self, type_spec, line=None):
        super().__init__(line)
        self.type_spec = type_spec
