"""The MiniC compiler."""

from repro.minic.codegen import Compiler, compile_minic
from repro.minic.types import MiniCError

__all__ = ['compile_minic', 'Compiler', 'MiniCError']
