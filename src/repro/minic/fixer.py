"""Variable-fixing analysis (Section 4.4).

For each conditional branch the compiler tries to understand the
condition well enough to *fix* the condition variable at the entrance
of an NT-path, so that the forced branch direction is consistent with
memory state.  The analysis recognises the paper's cases:

* ``x RELOP constant`` -- fix ``x`` to the boundary value (equality:
  the exact value; inequality: the boundary or one past it);
* ``x RELOP y`` for two simple variables -- fix ``x`` relative to
  ``y``'s *runtime* value (predicated load + adjust + store);
* ``x`` / ``!x`` for an int -- fix to 1 / 0;
* pointer null tests -- fix the pointer to the compiler-emitted blank
  data structure of the pointee type, or to null.

Anything else (compound expressions, array elements, call results) is
left unfixed, matching the prototype's scope in the paper.
"""

from __future__ import annotations

from repro.minic import ast_nodes as ast

# How to satisfy ``var OP rhs`` (delta added to the rhs value), and how
# to violate it, per edge.  Maps op -> (delta_if_true, delta_if_false).
_DELTAS = {
    '<': (-1, 0),
    '<=': (0, 1),
    '>': (1, 0),
    '>=': (0, -1),
    '==': (0, 1),
    '!=': (1, 0),
}

_MIRROR = {'<': '>', '<=': '>=', '>': '<', '>=': '<=',
           '==': '==', '!=': '!='}


class FixInfo:
    """A recipe for the predicated fix code on each branch edge.

    ``kind`` is one of:

    * ``'const'``  -- set ``var`` to ``const_value + delta``
    * ``'var'``    -- set ``var`` to ``other_var`` value ``+ delta``
    * ``'pointer'`` -- set ``var`` to null or to the blank structure of
      ``pointee_type``
    """

    __slots__ = ('kind', 'var_name', 'op', 'const_value', 'other_name',
                 'pointee_type')

    def __init__(self, kind, var_name, op, const_value=None,
                 other_name=None, pointee_type=None):
        self.kind = kind
        self.var_name = var_name
        self.op = op
        self.const_value = const_value
        self.other_name = other_name
        self.pointee_type = pointee_type

    def delta(self, branch_true):
        true_delta, false_delta = _DELTAS[self.op]
        return true_delta if branch_true else false_delta

    def pointer_is_null(self, branch_true):
        """For pointer tests: should the fixed pointer be null?"""
        if self.op == '==':            # p == 0
            return branch_true
        return not branch_true         # p != 0  /  bare p


def _simple_var(node):
    return node.name if isinstance(node, ast.Var) else None


def analyze_condition(cond, lookup_type):
    """Derive a :class:`FixInfo` for a branch condition, or ``None``.

    ``lookup_type`` maps a variable name to its MiniC type (or ``None``
    if the name is not a simple fixable scalar in scope).
    """
    if isinstance(cond, ast.Unary) and cond.op == '!':
        inner = analyze_condition(cond.operand, lookup_type)
        if inner is None:
            return None
        if inner.kind == 'pointer':
            flipped = '!=' if inner.op == '==' else '=='
            return FixInfo('pointer', inner.var_name, flipped,
                           pointee_type=inner.pointee_type)
        flipped = {'<': '>=', '<=': '>', '>': '<=', '>=': '<',
                   '==': '!=', '!=': '=='}[inner.op]
        return FixInfo(inner.kind, inner.var_name, flipped,
                       const_value=inner.const_value,
                       other_name=inner.other_name)

    if isinstance(cond, ast.Var):
        var_type = lookup_type(cond.name)
        if var_type is None:
            return None
        if var_type.is_pointer():
            return FixInfo('pointer', cond.name, '!=',
                           pointee_type=var_type.pointee)
        return FixInfo('const', cond.name, '!=', const_value=0)

    if not isinstance(cond, ast.Binary) or cond.op not in _DELTAS:
        return None

    left_name = _simple_var(cond.left)
    right_name = _simple_var(cond.right)

    # Normalise "const OP var" into "var MIRROR(OP) const".
    if left_name is None and isinstance(cond.left, ast.Num) \
            and right_name is not None:
        cond = ast.Binary(_MIRROR[cond.op], cond.right, cond.left,
                          cond.line)
        left_name, right_name = right_name, None

    left_name = _simple_var(cond.left)
    if left_name is None:
        return None
    var_type = lookup_type(left_name)
    if var_type is None:
        return None

    if isinstance(cond.right, ast.Num):
        if var_type.is_pointer():
            if cond.right.value == 0 and cond.op in ('==', '!='):
                return FixInfo('pointer', left_name, cond.op,
                               pointee_type=var_type.pointee)
            return None
        return FixInfo('const', left_name, cond.op,
                       const_value=cond.right.value)

    right_name = _simple_var(cond.right)
    if right_name is None or var_type.is_pointer():
        return None
    right_type = lookup_type(right_name)
    if right_type is None or right_type.is_pointer():
        return None
    return FixInfo('var', left_name, cond.op, other_name=right_name)
