"""MiniC type system.

The machine is word-addressable, so ``sizeof(int) == 1`` and all sizes
are in words.  ``char`` is an alias for ``int`` (one character per
word), which keeps string handling simple without changing any of the
control-flow behaviour PathExpander cares about.
"""

from __future__ import annotations


class Type:
    size = 1

    def is_pointer(self):
        return False


class IntType(Type):
    size = 1

    def __repr__(self):
        return 'int'

    def __eq__(self, other):
        return isinstance(other, IntType)

    def __hash__(self):
        return hash('int')


INT = IntType()


class PtrType(Type):
    size = 1

    def __init__(self, pointee):
        self.pointee = pointee

    def is_pointer(self):
        return True

    def __repr__(self):
        return '%r*' % (self.pointee,)

    def __eq__(self, other):
        return isinstance(other, PtrType) and other.pointee == self.pointee

    def __hash__(self):
        return hash(('ptr', self.pointee))


class StructType(Type):
    def __init__(self, name):
        self.name = name
        self.fields = {}        # field name -> (offset, Type)
        self.field_order = []
        self.size = 0

    def add_field(self, name, ftype):
        if name in self.fields:
            raise MiniCError('duplicate field %r in struct %s'
                             % (name, self.name))
        self.fields[name] = (self.size, ftype)
        self.field_order.append(name)
        self.size += ftype.size

    def field(self, name):
        if name not in self.fields:
            raise MiniCError('struct %s has no field %r' % (self.name, name))
        return self.fields[name]

    def __repr__(self):
        return 'struct %s' % self.name

    def __eq__(self, other):
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self):
        return hash(('struct', self.name))


class ArrayType(Type):
    def __init__(self, elem, count):
        self.elem = elem
        self.count = count
        self.size = elem.size * count

    def is_pointer(self):
        return False

    def decay(self):
        return PtrType(self.elem)

    def __repr__(self):
        return '%r[%d]' % (self.elem, self.count)


class MiniCError(Exception):
    """Compile-time error in a MiniC program."""

    def __init__(self, message, line=None):
        if line is not None:
            message = 'line %d: %s' % (line, message)
        super().__init__(message)
        self.line = line
