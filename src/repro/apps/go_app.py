"""go_app: a 9x9 Go position evaluator (SPEC 099.go analogue).

Reads a board position and runs repeated evaluation rounds: liberty
counting, group flood fills, territory estimation and pattern scoring.
Like the real 099.go it is almost pure computation -- I/O happens only
when the final analysis is printed -- so NT-paths run long before any
unsafe event (the Figure 3 go curve).

Two seeded memory bugs, both **missed** (the paper's go row: only a
special non-bug-triggering input could surface them):

* ``go_capture``: the capture handler's buggy store sits behind a
  full-board ownership rescan, more than MaxNTPathLength instructions
  from the forced edge;
* ``go_ko``: the ko-verification bug sits behind a history-table scan,
  equally out of NT-path reach.

The evaluator also carries sentinel-index guards (fixable: false
positives only without variable fixing) and two data-dependent guards
the fixer cannot help with (residual false positives), feeding the
Table 5 numbers.
"""

from __future__ import annotations

from repro.apps.bugs import BugSpec, MissReason

NAME = 'go_app'
TOOLS = ('ccured', 'iwatcher')
IS_SIEMENS = False

_BASE_SOURCE = r'''
/* go_app -- 9x9 position evaluator */

int board[81];          /* 0 empty, 1 black, 2 white */
int libs[81];
int owner[81];
int visited[81];
int flood_stack[81];

int history[256];       /* move history ring */
int hist_len = 0;

int captured[16];
int cap_count = 0;
int ko_round = 0;       /* 0 = no ko pending */

int last_move = -1;     /* sentinel: no previous move */
int move_marks[81];
int atari_spot = -2;    /* sentinel: no atari */
int atari_flags[81];
int joseki_line = 82;   /* sentinel: past the pattern table */
int joseki_hits[81];
int hot_col = -2;       /* sentinel: no hot column */
int col_weight[9];
int eye_probe = 82;     /* sentinel: past the board */
int eye_map[81];
int ladder_pos = -2;    /* sentinel: no ladder being read */
int ladder_map[81];
int sente_idx = 82;     /* sentinel: past the sente map */
int sente_map[81];

int target_of[81];      /* -1 = no linked target */
int targets[81];
int seki_code[81];

int black_score = 0;
int white_score = 0;
int rounds = 0;
int analysis_mask = 0;  /* bit 1: influence map; bit 2: patterns;
                           bit 4: endgame counting */
int influence[81];
int pattern_score = 0;
int endgame_points = 0;

void read_board() {
  int i = 0;
  while (i < 81) {
    int c = getc();
    if (c == -1) { break; }
    if (c == '0' || c == '1' || c == '2') {
      board[i] = c - '0';
      i = i + 1;
    }
  }
  rounds = read_int();
  if (rounds < 1) { rounds = 1; }
  if (rounds > 200) { rounds = 200; }
  ko_round = read_int();
  if (ko_round < 0) { ko_round = 0; }
  analysis_mask = read_int();
  if (analysis_mask < 0) { analysis_mask = 0; }
  for (int j = 0; j < 81; j = j + 1) { target_of[j] = 0 - 1; }
}

int count_liberties(int p) {
  int n = 0;
  int row = p / 9;
  int col = p % 9;
  if (row > 0 && board[p - 9] == 0) { n = n + 1; }
  if (row < 8 && board[p + 9] == 0) { n = n + 1; }
  if (col > 0 && board[p - 1] == 0) { n = n + 1; }
  if (col < 8 && board[p + 1] == 0) { n = n + 1; }
  return n;
}

/* flood-fills the group at p; returns its total liberty count */
int group_liberties(int p) {
  int color = board[p];
  int total = 0;
  int top = 0;
  for (int i = 0; i < 81; i = i + 1) { visited[i] = 0; }
  flood_stack[0] = p;
  top = 1;
  visited[p] = 1;
  while (top > 0) {
    top = top - 1;
    int q = flood_stack[top];
    total = total + count_liberties(q);
    int row = q / 9;
    int col = q % 9;
    if (row > 0 && board[q - 9] == color && visited[q - 9] == 0) {
      visited[q - 9] = 1;
      flood_stack[top] = q - 9;
      top = top + 1;
    }
    if (row < 8 && board[q + 9] == color && visited[q + 9] == 0) {
      visited[q + 9] = 1;
      flood_stack[top] = q + 9;
      top = top + 1;
    }
    if (col > 0 && board[q - 1] == color && visited[q - 1] == 0) {
      visited[q - 1] = 1;
      flood_stack[top] = q - 1;
      top = top + 1;
    }
    if (col < 8 && board[q + 1] == color && visited[q + 1] == 0) {
      visited[q + 1] = 1;
      flood_stack[top] = q + 1;
      top = top + 1;
    }
  }
  return total;
}

/* removes a captured group -- only reachable when a group really has
   no liberties, which demands a very particular board */
void capture_group(int p) {
  /* full ownership rescan before the books are updated */
  for (int i = 0; i < 81; i = i + 1) {
    owner[i] = 0;
    if (board[i] != 0) { owner[i] = board[i]; }
  }
  for (int i = 0; i < 81; i = i + 1) {
    if (owner[i] != 0 && count_liberties(i) == 0) {
      owner[i] = 3;
    }
  }
  /*CAPBUG*/
  captured[cap_count] = p;
  /*ENDCAPBUG*/
  cap_count = (cap_count + 1) % 12;
}

/* verifies a pending ko -- only reachable during a ko fight */
void ko_check(int p) {
  int repeats = 0;
  for (int i = 0; i < 256; i = i + 1) {
    if (history[i] == p) { repeats = repeats + 1; }
  }
  /*KOBUG*/
  history[hist_len % 256] = p;
  /*ENDKOBUG*/
  hist_len = hist_len + 1;
}

/* bookkeeping applied before each point evaluation; all of these
   are no-ops unless the corresponding analysis state is armed */
void apply_marks(int p) {
  if (last_move >= 0) {
    move_marks[last_move] = p;
  }
  if (atari_spot >= 0) {
    atari_flags[atari_spot] = 1;
  }
  if (joseki_line < 81) {
    joseki_hits[joseki_line] = p;
  }
  if (hot_col >= 0) {
    col_weight[hot_col] = p;
  }
  if (eye_probe < 81) {
    eye_map[eye_probe] = 1;
  }
  if (ladder_pos >= 0) {
    ladder_map[ladder_pos] = p;
  }
  if (sente_idx < 81) {
    sente_map[sente_idx] = p;
  }
  /* data-linked guards: the fixer cannot repair the linked index */
  if (seki_code[p] == 9) {
    targets[target_of[p]] = 1;
  }
  if (board[p] == 3) {
    targets[target_of[p]] = 2;
  }
}

/* radiating influence: each stone projects strength to neighbours */
void influence_map() {
  for (int i = 0; i < 81; i = i + 1) { influence[i] = 0; }
  for (int p = 0; p < 81; p = p + 1) {
    if (board[p] == 0) { continue; }
    int sign = 1;
    if (board[p] == 2) { sign = 0 - 1; }
    int row = p / 9;
    int col = p % 9;
    for (int dr = 0 - 2; dr <= 2; dr = dr + 1) {
      for (int dc = 0 - 2; dc <= 2; dc = dc + 1) {
        int nr = row + dr;
        int nc = col + dc;
        if (nr < 0 || nr > 8 || nc < 0 || nc > 8) { continue; }
        int dist = dr;
        if (dist < 0) { dist = 0 - dist; }
        int adc = dc;
        if (adc < 0) { adc = 0 - adc; }
        dist = dist + adc;
        if (dist == 0) { influence[nr * 9 + nc] =
                           influence[nr * 9 + nc] + sign * 8; }
        else if (dist == 1) { influence[nr * 9 + nc] =
                                influence[nr * 9 + nc] + sign * 3; }
        else { influence[nr * 9 + nc] =
                 influence[nr * 9 + nc] + sign; }
      }
    }
  }
}

/* small shape library: hane, tiger mouth, empty triangle */
void match_patterns() {
  pattern_score = 0;
  for (int p = 0; p < 81; p = p + 1) {
    int row = p / 9;
    int col = p % 9;
    if (row > 7 || col > 7) { continue; }
    int a = board[p];
    int b = board[p + 1];
    int c = board[p + 9];
    int d = board[p + 10];
    if (a != 0 && a == d && b == 0 && c == 0) {
      pattern_score = pattern_score + 2;      /* diagonal */
    }
    if (a != 0 && a == b && a == c && d == 0) {
      pattern_score = pattern_score - 1;      /* empty triangle */
    }
    if (a != 0 && b == a && c != a && c != 0) {
      pattern_score = pattern_score + 1;      /* contact fight */
    }
  }
}

/* counts settled empty points for the endgame */
void count_endgame() {
  endgame_points = 0;
  for (int p = 0; p < 81; p = p + 1) {
    if (board[p] != 0) { continue; }
    int row = p / 9;
    int col = p % 9;
    int owner_color = 0;
    int mixed = 0;
    if (row > 0 && board[p - 9] != 0) {
      owner_color = board[p - 9];
    }
    if (row < 8 && board[p + 9] != 0) {
      if (owner_color != 0 && board[p + 9] != owner_color) {
        mixed = 1;
      }
      owner_color = board[p + 9];
    }
    if (col > 0 && board[p - 1] != 0) {
      if (owner_color != 0 && board[p - 1] != owner_color) {
        mixed = 1;
      }
      owner_color = board[p - 1];
    }
    if (col < 8 && board[p + 1] != 0) {
      if (owner_color != 0 && board[p + 1] != owner_color) {
        mixed = 1;
      }
      owner_color = board[p + 1];
    }
    if (owner_color != 0 && mixed == 0) {
      endgame_points = endgame_points + 1;
    }
  }
}

void evaluate_point(int p) {
  apply_marks(p);
  if (board[p] == 0) {
    int row = p / 9;
    int near_black = 0;
    int near_white = 0;
    if (row > 0 && board[p - 9] == 1) { near_black = near_black + 1; }
    if (row > 0 && board[p - 9] == 2) { near_white = near_white + 1; }
    if (row < 8 && board[p + 9] == 1) { near_black = near_black + 1; }
    if (row < 8 && board[p + 9] == 2) { near_white = near_white + 1; }
    if (near_black > near_white) { black_score = black_score + 1; }
    if (near_white > near_black) { white_score = white_score + 1; }
    return;
  }
  int total = group_liberties(p);
  libs[p] = total;
  if (total == 0) {
    capture_group(p);
  }
  if (ko_round > 0) {
    ko_check(p);
  }
  if (board[p] == 1) { black_score = black_score + total; }
  else { white_score = white_score + total; }
}

int main() {
  read_board();
  for (int r = 0; r < rounds; r = r + 1) {
    for (int p = 0; p < 81; p = p + 1) {
      evaluate_point(p);
    }
    if ((analysis_mask & 1) != 0) { influence_map(); }
    if ((analysis_mask & 2) != 0) { match_patterns(); }
    if ((analysis_mask & 4) != 0) { count_endgame(); }
  }
  print_int(black_score);
  print_int(white_score);
  print_int(cap_count);
  print_int(pattern_score + endgame_points);
  return 0;
}
'''

_BUGGY_PATCHES = [
    (
        'captured[cap_count] = p;',
        'captured[cap_count + 6] = p;',
    ),
    (
        'history[hist_len % 256] = p;',
        'history[hist_len % 256 + 2] = p;',
    ),
]

BUGS = [
    BugSpec('go_capture', NAME, False,
            miss_reason=MissReason.SPECIAL_INPUT, site_func='capture_group',
            description='capture bookkeeping writes past captured[]; '
                        'the store sits behind a full-board rescan, '
                        'beyond MaxNTPathLength from the forced edge'),
    BugSpec('go_ko', NAME, False,
            miss_reason=MissReason.SPECIAL_INPUT, site_func='ko_check',
            description='ko history write lands out of the ring; '
                        'behind a 256-entry history scan, beyond '
                        'MaxNTPathLength'),
]

VERSIONS = {0: BUGS}


def make_source(version=0):
    source = _BASE_SOURCE
    if version == -1:
        return source
    if version != 0:
        raise ValueError('go_app has no version %r' % version)
    for correct, buggy in _BUGGY_PATCHES:
        if correct not in source:
            raise AssertionError('patch anchor missing in go_app')
        source = source.replace(correct, buggy)
    return source


def _group_has_liberty(cells, start):
    color = cells[start]
    seen = {start}
    stack = [start]
    while stack:
        p = stack.pop()
        row, col = divmod(p, 9)
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            nr, nc = row + dr, col + dc
            if not (0 <= nr < 9 and 0 <= nc < 9):
                continue
            q = nr * 9 + nc
            if cells[q] == '0':
                return True
            if cells[q] == color and q not in seen:
                seen.add(q)
                stack.append(q)
    return False


def _board_text(seed):
    state = (seed * 2654435761 + 17) & 0x7FFFFFFF
    cells = []
    for _ in range(81):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        roll = state % 10
        if roll < 4:
            cells.append('0')
        elif roll < 7:
            cells.append('1')
        else:
            cells.append('2')
    # No group may be dead on entry (a capture would trigger the bug
    # path on the taken path); open a liberty next to any dead group.
    changed = True
    while changed:
        changed = False
        for p in range(81):
            if cells[p] != '0' and not _group_has_liberty(cells, p):
                cells[p] = '0'
                changed = True
    return ''.join(cells)


def default_input():
    """A midgame position (every group keeps liberties; no ko)."""
    return _board_text(3), [12, 0, 0]


def random_input(seed):
    return _board_text(seed), [6 + seed % 10, 0, 0]
