"""print_tokens: a stream tokenizer (Siemens-suite analogue).

Classifies an input character stream into identifiers, numbers,
keywords, specials, strings, character literals and comments, keeping
per-category statistics.  The input is read into a buffer up front;
tokenization is pure computation, so NT-paths can run deep into
unexercised handlers before meeting an unsafe event.

Seven buggy versions (one seeded semantic bug each), checked with
assertions, reproducing the paper's print_tokens row of Table 4:
v1/v2/v3/v5/v7 are detectable through NT-paths with a common input;
v4 is a value-coverage miss; v6 needs a special input (the bug site is
deeper than MaxNTPathLength from the explored edge).
"""

from __future__ import annotations

from repro.apps.bugs import BugSpec, MissReason

NAME = 'print_tokens'
TOOLS = ('assertions',)
IS_SIEMENS = True

_BASE_SOURCE = r'''
/* print_tokens -- stream tokenizer */

int input_buf[600];
int input_len = 0;

int tok[24];
int tok_len = 0;

int counts[8];          /* per-category token counts */
int total_tokens = 0;
int error_count = 0;
int comment_nest = 0;
int bracket_depth = 0;
int keyword_hits = 0;
int line_no = 1;

int is_alpha(int c) {
  if (c >= 'a' && c <= 'z') { return 1; }
  if (c >= 'A' && c <= 'Z') { return 1; }
  return 0;
}

int is_digit(int c) {
  return c >= '0' && c <= '9';
}

int is_space(int c) {
  if (c == ' ') { return 1; }
  if (c == '\t') { return 1; }
  if (c == '\n') { return 1; }
  return 0;
}

void read_input() {
  int c = getc();
  while (c != -1 && input_len < 599) {
    input_buf[input_len] = c;
    input_len = input_len + 1;
    c = getc();
  }
  input_buf[input_len] = -1;
}

int match_word(int *word) {
  int i = 0;
  while (word[i] != 0 && i < tok_len) {
    if (tok[i] != word[i]) { return 0; }
    i = i + 1;
  }
  if (word[i] == 0 && i == tok_len) { return 1; }
  return 0;
}

int is_keyword() {
  if (match_word("if")) { return 1; }
  if (match_word("then")) { return 1; }
  if (match_word("and")) { return 1; }
  if (match_word("or")) { return 1; }
  return 0;
}

/* returns the new position */
int handle_ident(int pos) {
  tok_len = 0;
  while (is_alpha(input_buf[pos]) || is_digit(input_buf[pos])) {
    if (tok_len < 23) { tok[tok_len] = input_buf[pos]; tok_len = tok_len + 1; }
    pos = pos + 1;
  }
  if (is_keyword()) {
    /*V5*/
    keyword_hits = keyword_hits + 1;
    counts[3] = counts[3] + 1;
    assert(keyword_hits <= total_tokens + 1, "PT_V5_GUARD");
    /*END5*/
  } else {
    counts[0] = counts[0] + 1;
  }
  return pos;
}

int handle_number(int pos) {
  int value = 0;
  while (is_digit(input_buf[pos])) {
    value = value * 10 + (input_buf[pos] - '0');
    pos = pos + 1;
  }
  counts[1] = counts[1] + 1;
  /*V4*/
  assert(value >= 0, "PT_V4_GUARD");
  /*END4*/
  return pos;
}

int handle_string(int pos) {
  int j = 0;
  pos = pos + 1;                     /* skip opening quote */
  /*V1*/
  counts[4] = counts[4] + 1;
  assert(counts[4] >= 1, "PT_V1_GUARD");
  /*END1*/
  while (input_buf[pos] != '"' && input_buf[pos] != -1 && j < 40) {
    if (j < 23) { tok[j] = input_buf[pos]; }
    j = j + 1;
    pos = pos + 1;
  }
  /*V6*/
  if (j >= 40) {
    error_count = error_count + 1;
  }
  /*END6*/
  if (input_buf[pos] == '"') { pos = pos + 1; }
  return pos;
}

int handle_charlit(int pos) {
  pos = pos + 1;
  if (input_buf[pos] != -1) {
    tok[0] = input_buf[pos];
    pos = pos + 1;
  }
  if (input_buf[pos] == 39) { pos = pos + 1; }
  counts[5] = counts[5] + 1;
  return pos;
}

int handle_comment(int pos) {
  /*V2*/
  comment_nest = comment_nest + 1;
  assert(comment_nest == 1, "PT_V2_GUARD");
  /*END2*/
  while (input_buf[pos] != '\n' && input_buf[pos] != -1) {
    pos = pos + 1;
  }
  comment_nest = comment_nest - 1;
  counts[6] = counts[6] + 1;
  return pos;
}

int handle_special(int pos) {
  int c = input_buf[pos];
  if (c == '[' || c == ']') {
    /*V7*/
    if (c == '[') { bracket_depth = bracket_depth + 1; }
    else { bracket_depth = bracket_depth - 1; }
    assert(bracket_depth + 1 >= 0, "PT_V7_GUARD");
    /*END7*/
  }
  counts[2] = counts[2] + 1;
  return pos + 1;
}

int handle_error(int pos) {
  /*V3*/
  error_count = error_count + 1;
  assert(error_count <= total_tokens + 1, "PT_V3_GUARD");
  /*END3*/
  counts[7] = counts[7] + 1;
  return pos + 1;
}

void tokenize() {
  int pos = 0;
  while (input_buf[pos] != -1 && pos < input_len) {
    int c = input_buf[pos];
    if (is_space(c)) {
      if (c == '\n') { line_no = line_no + 1; }
      pos = pos + 1;
      continue;
    }
    total_tokens = total_tokens + 1;
    if (is_alpha(c)) { pos = handle_ident(pos); }
    else if (is_digit(c)) { pos = handle_number(pos); }
    else if (c == '"') { pos = handle_string(pos); }
    else if (c == 39) { pos = handle_charlit(pos); }
    else if (c == '#') { pos = handle_comment(pos); }
    else if (c == '(' || c == ')' || c == '[' || c == ']' ||
             c == ';' || c == ',' || c == '=') {
      pos = handle_special(pos);
    }
    else { pos = handle_error(pos); }
  }
}

int main() {
  read_input();
  tokenize();
  for (int i = 0; i < 8; i = i + 1) { print_int(counts[i]); }
  print_int(total_tokens);
  print_int(error_count);
  print_int(line_no);
  return 0;
}
'''

# version -> (correct snippet, buggy snippet)
_BUG_PATCHES = {
    1: (
        '''counts[4] = counts[4] + 1;
  assert(counts[4] >= 1, "PT_V1_GUARD");''',
        '''counts[4] = counts[4] - 1;
  assert(counts[4] >= 1, "PT_V1");''',
    ),
    2: (
        '''comment_nest = comment_nest + 1;
  assert(comment_nest == 1, "PT_V2_GUARD");''',
        '''comment_nest = comment_nest + 2;
  assert(comment_nest == 1, "PT_V2");''',
    ),
    3: (
        '''error_count = error_count + 1;
  assert(error_count <= total_tokens + 1, "PT_V3_GUARD");''',
        '''error_count = error_count + total_tokens + 2;
  assert(error_count <= total_tokens + 1, "PT_V3");''',
    ),
    # v4 is a *value*-coverage bug: there is no branch guarding the
    # bad value, so NT-path exploration (a *path*-coverage tool)
    # cannot surface it -- only an input containing 777 can.
    4: (
        'assert(value >= 0, "PT_V4_GUARD");',
        'assert(value != 777, "PT_V4");',
    ),
    5: (
        '''keyword_hits = keyword_hits + 1;
    counts[3] = counts[3] + 1;
    assert(keyword_hits <= total_tokens + 1, "PT_V5_GUARD");''',
        '''keyword_hits = keyword_hits + total_tokens + 2;
    counts[3] = counts[3] + 1;
    assert(keyword_hits <= total_tokens + 1, "PT_V5");''',
    ),
    6: (
        '''if (j >= 40) {
    error_count = error_count + 1;
  }''',
        '''if (j >= 40) {
    error_count = error_count - 1;
    assert(error_count >= 0, "PT_V6");
  }''',
    ),
    7: (
        '''if (c == '[') { bracket_depth = bracket_depth + 1; }
    else { bracket_depth = bracket_depth - 1; }
    assert(bracket_depth + 1 >= 0, "PT_V7_GUARD");''',
        '''if (c == '[') { bracket_depth = bracket_depth + 1; }
    else { bracket_depth = bracket_depth - 2; }
    assert(bracket_depth + 1 >= 0, "PT_V7");''',
    ),
}

VERSIONS = {
    1: [BugSpec('pt_v1', NAME, True, assert_id='PT_V1',
                description='string handler decrements the category '
                            'counter instead of incrementing it')],
    2: [BugSpec('pt_v2', NAME, True, assert_id='PT_V2',
                description='comment handler double-increments the '
                            'nesting depth')],
    3: [BugSpec('pt_v3', NAME, True, assert_id='PT_V3',
                description='error handler jumps the error counter '
                            'past the token count')],
    4: [BugSpec('pt_v4', NAME, False,
                miss_reason=MissReason.VALUE_COVERAGE, assert_id='PT_V4',
                description='number handler corrupts only the value '
                            '777, which no common input produces')],
    5: [BugSpec('pt_v5', NAME, True, assert_id='PT_V5',
                description='keyword handler inflates keyword_hits '
                            'beyond the token count')],
    6: [BugSpec('pt_v6', NAME, False,
                miss_reason=MissReason.SPECIAL_INPUT, assert_id='PT_V6',
                description='unterminated-string handler bug sits '
                            'behind a 40-iteration scan, deeper than '
                            'MaxNTPathLength from the explored edge')],
    7: [BugSpec('pt_v7', NAME, True, assert_id='PT_V7',
                description='bracket tracking decrements by two on '
                            'every closing bracket')],
}


def make_source(version=0):
    """The MiniC source of one program version (0 = correct base)."""
    source = _BASE_SOURCE
    if version:
        if version not in _BUG_PATCHES:
            raise ValueError('print_tokens has no version %r' % version)
        correct, buggy = _BUG_PATCHES[version]
        if correct not in source:
            raise AssertionError('patch anchor missing for v%d' % version)
        source = source.replace(correct, buggy)
    return source


def default_input():
    """A common, non-bug-triggering input: identifiers, numbers and a
    few everyday specials -- no strings, comments, char literals,
    keywords, brackets or illegal characters."""
    text = 'alpha beta 12 gamma(4, 5); delta epsilon 900 zeta(alpha);\n' \
           'eta theta 77 iota(beta, 3); kappa 15 mu(nu); xi 8\n'
    return text, []


def random_input(seed):
    """Random token streams over the same common alphabet."""
    state = (seed * 2654435761 + 101) & 0x7FFFFFFF
    words = ['alpha', 'beta', 'gamma', 'delta', 'run', 'x', 'count',
             'total', 'very', 'top']
    pieces = []
    for _ in range(30):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        choice = state % 10
        if choice < 4:
            pieces.append(words[state % len(words)])
        elif choice < 7:
            pieces.append(str(state % 1000))
        elif choice == 7:
            pieces.append('(')
        elif choice == 8:
            pieces.append(')')
        else:
            pieces.append(';')
    return ' '.join(pieces) + '\n', []
