"""Seeded-bug specifications and report matching.

Every buggy application version carries :class:`BugSpec` records that
say how a detector report is recognised as *that* bug (assertion id for
semantic bugs; report kind + function for memory bugs), whether the
paper's experiment detects it with PathExpander, and -- for the missed
ones -- which of the paper's four miss mechanisms (Section 7.1) it
reproduces:

1. ``value_coverage``  -- the path is explored but the bug needs a
   specific data value that neither the input nor the fix produces;
2. ``exercised_edge``  -- the entry edge was exercised past the
   counter threshold before the bug-triggering state arose;
3. ``inconsistency``   -- NT-path state inconsistency masks the bug;
4. ``special_input``   -- the bug site is unreachable within
   MaxNTPathLength from any explored edge for this input.
"""

from __future__ import annotations

from repro.detectors.base import ReportKind


class MissReason:
    VALUE_COVERAGE = 'value_coverage'
    EXERCISED_EDGE = 'exercised_edge'
    INCONSISTENCY = 'inconsistency'
    SPECIAL_INPUT = 'special_input'

    ALL = (VALUE_COVERAGE, EXERCISED_EDGE, INCONSISTENCY, SPECIAL_INPUT)


class BugSpec:
    """One seeded bug and how to recognise its detection."""

    def __init__(self, bug_id, app, expected_detected, miss_reason=None,
                 assert_id=None, site_func=None,
                 kinds=ReportKind.MEMORY_KINDS, description=''):
        if not expected_detected and miss_reason not in MissReason.ALL:
            raise ValueError('missed bug %s needs a miss_reason' % bug_id)
        self.bug_id = bug_id
        self.app = app
        self.expected_detected = expected_detected
        self.miss_reason = miss_reason
        self.assert_id = assert_id
        self.site_func = site_func
        self.kinds = frozenset(kinds)
        self.description = description

    @property
    def is_memory_bug(self):
        return self.assert_id is None

    def matches(self, report):
        """Does a detector report correspond to this seeded bug?"""
        if self.assert_id is not None:
            return report.assert_id == self.assert_id
        if report.kind not in self.kinds:
            return False
        if self.site_func is not None:
            func = report.location.split('+')[0].split(':')[0]
            return func == self.site_func
        return True

    def __repr__(self):
        return '<BugSpec %s (%s)>' % (
            self.bug_id,
            'detected' if self.expected_detected
            else 'missed:%s' % self.miss_reason)


def classify_reports(reports, bugs):
    """Split detector reports into true detections and false positives.

    Returns ``(detected_bug_ids, false_positive_reports)``.  A report
    is a false positive (in the Table 5 sense: *introduced by
    PathExpander*, not by the checker) when it matches no seeded bug.
    """
    detected = set()
    false_positives = []
    for report in reports:
        matched = False
        for bug in bugs:
            if bug.matches(report):
                detected.add(bug.bug_id)
                matched = True
        if not matched:
            false_positives.append(report)
    return detected, false_positives
