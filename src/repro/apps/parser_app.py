"""parser_app: a dictionary-driven sentence checker (SPEC 197.parser
analogue).

Tokenizes sentences, looks every word up in a small dictionary with
part-of-speech tags, and runs a linkage check (determiner-noun-verb
agreement) over each sentence.  Mostly pure computation with a summary
printed at the end; used for the coverage and overhead experiments.

No seeded bugs.
"""

from __future__ import annotations

NAME = 'parser_app'
TOOLS = ()
IS_SIEMENS = False
VERSIONS = {}
BUGS = []

_SOURCE = r'''
/* parser_app -- sentence linkage checker */

int input_buf[900];
int input_len = 0;

int word[16];
int word_len = 0;

/* dictionary: packed 8-word entries [c0 c1 c2 c3 0 tag 0 0] */
/* tags: 1 determiner, 2 noun, 3 verb, 4 adjective, 5 preposition */
int dict[160];
int dict_count = 0;

int sent_words = 0;
int sent_state = 0;     /* 0 start, 1 saw det, 2 saw subject, 3 saw verb */
int good_sentences = 0;
int bad_sentences = 0;
int unknown_words = 0;
int total_words = 0;
int strict_mode = 0;    /* reject sentences with unknown words */
int number_tokens = 0;
int proper_nouns = 0;
int plural_hits = 0;
int quote_depth = 0;
int prep_phrases = 0;
int strict_rejects = 0;

void add_word(int a, int b, int c, int d, int tag) {
  int base = dict_count * 8;
  dict[base] = a;
  dict[base + 1] = b;
  dict[base + 2] = c;
  dict[base + 3] = d;
  dict[base + 4] = 0;
  dict[base + 5] = tag;
  dict_count = dict_count + 1;
}

void build_dictionary() {
  add_word('t', 'h', 'e', 0, 1);
  add_word('a', 0, 0, 0, 1);
  add_word('c', 'a', 't', 0, 2);
  add_word('d', 'o', 'g', 0, 2);
  add_word('m', 'a', 'n', 0, 2);
  add_word('s', 'u', 'n', 0, 2);
  add_word('r', 'u', 'n', 's', 3);
  add_word('s', 'e', 'e', 's', 3);
  add_word('h', 'a', 's', 0, 3);
  add_word('b', 'i', 'g', 0, 4);
  add_word('o', 'l', 'd', 0, 4);
  add_word('r', 'e', 'd', 0, 4);
  add_word('i', 'n', 0, 0, 5);
  add_word('o', 'n', 0, 0, 5);
}

void read_input() {
  int c = getc();
  while (c != -1 && input_len < 898) {
    input_buf[input_len] = c;
    input_len = input_len + 1;
    c = getc();
  }
  input_buf[input_len] = -1;
}

/* numbers are their own token class */
int scan_number() {
  int value = 0;
  int digits = 0;
  while (digits < word_len && word[digits] >= '0'
         && word[digits] <= '9') {
    value = value * 10 + (word[digits] - '0');
    digits = digits + 1;
  }
  if (digits == word_len) { return value + 1; }
  return 0;
}

/* strips a plural 's' and retries the dictionary */
int strip_plural() {
  if (word_len < 3) { return 0; }
  if (word[word_len - 1] != 's') { return 0; }
  word_len = word_len - 1;
  plural_hits = plural_hits + 1;
  return 1;
}

/* capitalised words act as proper nouns */
int is_proper() {
  if (word[0] >= 'A' && word[0] <= 'Z') {
    proper_nouns = proper_nouns + 1;
    return 1;
  }
  return 0;
}

int lookup_tag() {
  for (int e = 0; e < dict_count; e = e + 1) {
    int base = e * 8;
    int i = 0;
    int match = 1;
    while (i < word_len) {
      if (dict[base + i] != word[i]) { match = 0; break; }
      i = i + 1;
    }
    if (match == 1 && dict[base + word_len] == 0) {
      return dict[base + 5];
    }
  }
  return 0;
}

/* linkage automaton: det? adj* noun verb (adj|noun|prep)* */
void link_word(int tag) {
  if (tag == 0) {
    unknown_words = unknown_words + 1;
    if (strict_mode == 1) {
      strict_rejects = strict_rejects + 1;
      sent_state = 0;
    }
    return;
  }
  if (tag == 5) {
    /* prepositional phrase: needs a following det/noun to bind */
    if (sent_state == 3) { prep_phrases = prep_phrases + 1; }
    return;
  }
  if (sent_state == 0) {
    if (tag == 1) { sent_state = 1; }
    else if (tag == 2) { sent_state = 2; }
    return;
  }
  if (sent_state == 1) {
    if (tag == 2) { sent_state = 2; }
    return;
  }
  if (sent_state == 2) {
    if (tag == 3) { sent_state = 3; }
    return;
  }
}

void end_sentence() {
  if (sent_words == 0) { return; }
  if (sent_state == 3) { good_sentences = good_sentences + 1; }
  else { bad_sentences = bad_sentences + 1; }
  sent_state = 0;
  sent_words = 0;
}

void process() {
  int pos = 0;
  while (pos < input_len && input_buf[pos] != -1) {
    int c = input_buf[pos];
    if (c == ' ' || c == '\n') { pos = pos + 1; continue; }
    if (c == '.') {
      end_sentence();
      pos = pos + 1;
      continue;
    }
    if (c == 34) {
      /* quoted spans are skipped by the linker */
      quote_depth = quote_depth + 1;
      pos = pos + 1;
      while (pos < input_len && input_buf[pos] != 34
             && input_buf[pos] != -1) {
        pos = pos + 1;
      }
      if (input_buf[pos] == 34) {
        quote_depth = quote_depth - 1;
        pos = pos + 1;
      }
      continue;
    }
    word_len = 0;
    while (pos < input_len && input_buf[pos] != ' '
           && input_buf[pos] != '.' && input_buf[pos] != '\n'
           && input_buf[pos] != -1) {
      if (word_len < 15) {
        word[word_len] = input_buf[pos];
        word_len = word_len + 1;
      }
      pos = pos + 1;
    }
    total_words = total_words + 1;
    sent_words = sent_words + 1;
    if (scan_number() != 0) {
      number_tokens = number_tokens + 1;
      continue;
    }
    int tag = lookup_tag();
    if (tag == 0 && is_proper() == 1) {
      tag = 2;
    }
    if (tag == 0) {
      if (strip_plural() == 1) {
        tag = lookup_tag();
      }
    }
    link_word(tag);
  }
  end_sentence();
}

int main() {
  strict_mode = read_int();
  if (strict_mode != 1) { strict_mode = 0; }
  build_dictionary();
  read_input();
  process();
  print_int(total_words);
  print_int(good_sentences);
  print_int(bad_sentences);
  print_int(unknown_words);
  print_int(number_tokens + proper_nouns + plural_hits);
  return 0;
}
'''


def make_source(version=0):
    if version not in (0, -1):
        raise ValueError('parser_app has no version %r' % version)
    return _SOURCE


def default_input():
    base = ('the cat sees the dog. a man runs. the big sun has red. '
            'the old dog runs. a big cat sees a man. '
            'the dog has the red cat. a cat runs. ')
    variants = ('a dog sees the sun. the man has a big cat. '
                'the red sun runs. a cat has the old dog. ',
                'the big man sees a red dog. a sun runs. '
                'the cat has a dog. the old man runs. ')
    # a realistic document is many pages of such sentences; the long
    # stream is what amortises PathExpander's fixed exploration work
    text = (base + variants[0] + base + variants[1]) * 8
    return text, [0]


def random_input(seed):
    state = (seed * 1540483477 + 41) & 0x7FFFFFFF
    words = ['the', 'a', 'cat', 'dog', 'man', 'sun', 'runs', 'sees',
             'has', 'big', 'old', 'red', 'in', 'on', 'qux']
    pieces = []
    for _ in range(50):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        pieces.append(words[state % len(words)])
        if state % 7 == 0:
            pieces.append('.')
    return ' '.join(pieces) + ' .', [seed % 2]
