"""gzip_app: an LZ77-style compressor (SPEC 164.gzip analogue).

Reads the input into a window, then emits a literal or a
(length, distance) back-reference for every position -- writing output
as it goes, exactly the behaviour that makes the paper's Figure 3 gzip
curve unsafe-event dominated: most NT-paths run into a ``putc`` within
a few hundred instructions.

No seeded bugs; gzip is used for the crash-latency, coverage and
overhead experiments.
"""

from __future__ import annotations

NAME = 'gzip_app'
TOOLS = ()
IS_SIEMENS = False
VERSIONS = {}
BUGS = []

_SOURCE = r'''
/* gzip_app -- LZ77-style compressor */

struct hnode {
  int pos;
  struct hnode *next;
};

int window[2048];
int window_len = 0;

struct hnode *heads[64];     /* hash-chain buckets */
int chain_nodes = 0;

int lit_count = 0;
int match_count = 0;
int out_bytes = 0;
int checksum = 0;

int out_buf[16];        /* buffered output: syscalls only on flush */
int out_fill = 0;

int level = 1;          /* compression effort (1..3) */
int use_rle = 0;        /* run-length preprocessor */
int freq[64];           /* level-3 frequency table */
int code_len[64];       /* level-3 code lengths */
int rle_saved = 0;
int lazy_hits = 0;

int verify = 0;         /* decompress and compare (self-check mode) */
int codes[4200];        /* captured output codes for verification */
int code_count = 0;
int decoded[2048];
int decoded_len = 0;
int verify_ok = -1;     /* -1 not run, 1 round-trip ok, 0 mismatch */

void read_window() {
  level = read_int();
  if (level < 1) { level = 1; }
  if (level > 3) { level = 3; }
  use_rle = read_int();
  if (use_rle != 1) { use_rle = 0; }
  verify = read_int();
  if (verify != 1) { verify = 0; }
  int c = getc();
  while (c != -1 && window_len < 2046) {
    window[window_len] = c;
    window_len = window_len + 1;
    c = getc();
  }
}

/* run-length preprocessor: collapses runs of 4+ equal codes */
void rle_pass() {
  int w = 0;
  int r = 0;
  while (r < window_len) {
    int run = 1;
    while (r + run < window_len && window[r + run] == window[r]
           && run < 80) {
      run = run + 1;
    }
    if (run >= 4) {
      window[w] = 2;
      window[w + 1] = window[r];
      window[w + 2] = run;
      w = w + 3;
      rle_saved = rle_saved + run - 3;
    } else {
      for (int k = 0; k < run; k = k + 1) {
        window[w] = window[r + k];
        w = w + 1;
      }
    }
    r = r + run;
  }
  window_len = w;
}

/* level-3: frequency statistics and a crude canonical code build */
void build_codes() {
  for (int i = 0; i < 64; i = i + 1) { freq[i] = 0; }
  for (int i = 0; i < window_len; i = i + 1) {
    freq[window[i] & 63] = freq[window[i] & 63] + 1;
  }
  for (int i = 0; i < 64; i = i + 1) {
    if (freq[i] == 0) { code_len[i] = 0; }
    else if (freq[i] > window_len / 8) { code_len[i] = 4; }
    else if (freq[i] > window_len / 32) { code_len[i] = 6; }
    else { code_len[i] = 9; }
  }
}

void emit_header() {
  put_code(31);
  put_code(139);
  put_code(level);
  if (use_rle == 1) { put_code(2); }
  else { put_code(0); }
}

void flush_output() {
  for (int i = 0; i < out_fill; i = i + 1) {
    putc(out_buf[i]);
  }
  out_fill = 0;
}

void put_code(int c) {
  out_buf[out_fill] = c;
  out_fill = out_fill + 1;
  if (out_fill >= 16) {
    flush_output();
  }
  if (code_count < 4199) {
    codes[code_count] = c;
    code_count = code_count + 1;
  }
  out_bytes = out_bytes + 1;
  checksum = (checksum * 31 + c) % 65536;
}

int hash3(int pos) {
  return (window[pos] * 3 + window[pos + 1] * 5
          + window[pos + 2]) & 63;
}

/* records a position in its hash chain (as real gzip does) */
void insert_pos(int pos) {
  if (pos + 2 >= window_len) { return; }
  struct hnode *node = malloc(sizeof(struct hnode));
  int h = hash3(pos);
  node->pos = pos;
  node->next = heads[h];
  heads[h] = node;
  chain_nodes = chain_nodes + 1;
}

/* longest match for pos among the last few chain entries;
   returns length * 256 + distance (0 if no useful match) */
int find_match(int pos) {
  if (pos + 2 >= window_len) { return 0; }
  int best_len = 0;
  int best_dist = 0;
  int tries = 16;
  struct hnode *cur = heads[hash3(pos)];
  while (cur != 0 && tries > 0) {
    int cand = cur->pos;
    if (cand < pos && pos - cand <= 255) {
      int len = 0;
      while (len < 63
             && pos + len < window_len
             && window[cand + len] == window[pos + len]) {
        len = len + 1;
      }
      if (len > best_len) {
        best_len = len;
        best_dist = pos - cand;
      }
    }
    cur = cur->next;
    tries = tries - 1;
  }
  if (best_len < 3) { return 0; }
  return best_len * 256 + best_dist;
}

void compress() {
  int pos = 0;
  while (pos < window_len) {
    int match = find_match(pos);
    if (level >= 2 && match != 0) {
      /* lazy matching: prefer the match starting one later if longer */
      int next = find_match(pos + 1);
      if (next / 256 > match / 256 + 1) {
        match = 0;
        lazy_hits = lazy_hits + 1;
      }
    }
    if (match == 0) {
      put_code(0);
      put_code(window[pos]);
      lit_count = lit_count + 1;
      insert_pos(pos);
      pos = pos + 1;
    } else {
      int len = match / 256;
      int dist = match % 256;
      put_code(1);
      put_code(len);
      put_code(dist);
      match_count = match_count + 1;
      for (int k = 0; k < len; k = k + 1) {
        insert_pos(pos + k);
      }
      pos = pos + len;
    }
  }
}

/* inflates the captured code stream back into decoded[] */
void decompress() {
  int r = 0;
  decoded_len = 0;
  if (level >= 2) { r = 4; }          /* skip the header */
  while (r < code_count && decoded_len < 2046) {
    int kind = codes[r];
    if (kind == 0) {
      decoded[decoded_len] = codes[r + 1];
      decoded_len = decoded_len + 1;
      r = r + 2;
    } else {
      int len = codes[r + 1];
      int dist = codes[r + 2];
      for (int k = 0; k < len && decoded_len < 2046; k = k + 1) {
        decoded[decoded_len] = decoded[decoded_len - dist];
        decoded_len = decoded_len + 1;
      }
      r = r + 3;
    }
  }
}

/* round-trip check: inflate must reproduce the (post-RLE) window */
void verify_round_trip() {
  decompress();
  verify_ok = 1;
  if (decoded_len != window_len) {
    verify_ok = 0;
    return;
  }
  for (int i = 0; i < window_len; i = i + 1) {
    if (decoded[i] != window[i]) {
      verify_ok = 0;
      return;
    }
  }
}

int main() {
  read_window();
  if (use_rle == 1) {
    rle_pass();
  }
  if (level >= 3) {
    build_codes();
  }
  if (level >= 2) {
    emit_header();
  }
  compress();
  flush_output();
  if (verify == 1) {
    verify_round_trip();
  }
  print_int(verify_ok);
  print_int(lit_count);
  print_int(match_count);
  print_int(out_bytes);
  print_int(checksum);
  print_int(chain_nodes);
  return 0;
}
'''


def make_source(version=0):
    if version not in (0, -1):
        raise ValueError('gzip_app has no version %r' % version)
    return _SOURCE


def default_input():
    """Compressible text: repeated phrases with some variation."""
    phrases = ['the model of the machine ', 'a stream of tokens ',
               'the window slides on ', 'bytes repeat and repeat ']
    chunks = []
    state = 12345
    for _ in range(40):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        chunks.append(phrases[state % len(phrases)])
    return ''.join(chunks), [1, 0, 1]


def random_input(seed):
    state = (seed * 2891336453 + 13) & 0x7FFFFFFF
    chunks = []
    words = ['abcabc', 'xyzxyz', 'hello ', 'data ', 'zip ', 'block ']
    for _ in range(60):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        chunks.append(words[state % len(words)])
    return ''.join(chunks), [1 + seed % 2, 0, 1]
