"""man_fmt: a roff-style page formatter (man-1.5h1 analogue).

Reads a document into memory and formats it line by line: word
wrapping to the output width, plus a directive language (lines starting
with ``.``) for section headers, indentation, bold spans and footnotes.
Everyday documents contain no directives, so all directive machinery is
PathExpander territory.

One seeded memory bug (the paper's man-1.5h1 row of Tables 4 and 5):
``man_section`` -- the section-header formatter copies one word too
many into the fixed ``section[]`` buffer.  Its guard is a pointer null
test, so **without** variable fixing every NT-path into it crashes on
the null pointer (bug missed); **with** fixing the pointer is repointed
at the compiler's blank structure and the off-by-one store is caught.
This reproduces the Table 5 "detected only after consistency fixing"
result.

The formatter also carries several sentinel-index guards (``-1`` /
past-the-end defaults, the classic C idiom).  NT-paths forced into
them without fixing index out of bounds and raise *false positives*;
the boundary-value fixes eliminate them -- the paper's 13 -> 4
false-positive reduction mechanism.
"""

from __future__ import annotations

from repro.apps.bugs import BugSpec

NAME = 'man_fmt'
TOOLS = ('ccured', 'iwatcher')
IS_SIEMENS = False

_BASE_SOURCE = r'''
/* man_fmt -- page formatter */

int input_buf[900];
int input_len = 0;

int line[96];           /* current input line */
int line_len = 0;

int out_col = 0;
int out_width = 56;
int out_lines = 0;

int section[8];         /* current section header text */
int *sec_name = 0;      /* pending section name (directive state) */

int bold_start = -1;    /* sentinel: no bold span pending */
int indent_stack[6];
int indent_top = -1;    /* sentinel: empty stack */
int note_slot = 7;      /* sentinel: one past notes[] capacity */
int notes[6];
int tab_pos = -2;       /* sentinel: no tab stop */
int tabs[8];
int hdr_level = 9;      /* sentinel: past the header counters */
int hdr_counts[8];
int margin_slot = -2;   /* sentinel: no margin override */
int margins[6];

int directive_count = 0;
int word_count = 0;
int center_next = 0;
int fill_char = ' ';
int list_depth = 0;
int list_counters[4];

void read_input() {
  int c = getc();
  while (c != -1 && input_len < 898) {
    input_buf[input_len] = c;
    input_len = input_len + 1;
    c = getc();
  }
  input_buf[input_len] = -1;
}

/* copies the pending section name; the fixed buffer holds 8 words */
void set_section(int *name) {
  /*BUG*/
  for (int i = 0; i < 8; i = i + 1) {
    section[i] = name[i];
  }
  /*ENDBUG*/
}

/* Directive state is applied at the head of every line, before any
   output is emitted. */
void apply_pending_state() {
  if (sec_name != 0) {
    set_section(sec_name);
    sec_name = 0;
  }
  if (bold_start >= 0) {
    line[bold_start] = '*';
    bold_start = -1;
  }
  if (indent_top >= 0) {
    indent_stack[indent_top] = out_col;
  }
  if (note_slot < 6) {
    notes[note_slot] = out_lines;
  }
  if (tab_pos >= 0) {
    tabs[tab_pos] = 1;
  }
  if (hdr_level < 8) {
    hdr_counts[hdr_level] = out_lines;
  }
  if (margin_slot >= 0) {
    margins[margin_slot] = out_col;
  }
}

void handle_directive() {
  directive_count = directive_count + 1;
  int c = line[1];
  if (c == 'S') {
    /* .S name -- queue a section header */
    sec_name = &line[3];
  } else if (c == 'I') {
    if (indent_top < 5) {
      indent_top = indent_top + 1;
      indent_stack[indent_top] = 4;
    }
  } else if (c == 'U') {
    if (indent_top >= 0) { indent_top = indent_top - 1; }
  } else if (c == 'B') {
    bold_start = 0;
  } else if (c == 'N') {
    if (note_slot > 5) { note_slot = 0; }
    notes[note_slot] = out_lines;
    note_slot = note_slot + 1;
  } else if (c == 'T') {
    tab_pos = line[3] - '0';
    if (tab_pos > 7) { tab_pos = 7; }
  } else if (c == 'C') {
    center_next = 1;
  } else if (c == 'F') {
    fill_char = line[3];
    if (fill_char < ' ') { fill_char = ' '; }
  } else if (c == 'L') {
    if (list_depth < 3) {
      list_depth = list_depth + 1;
      list_counters[list_depth] = 0;
    }
  } else if (c == 'E') {
    if (list_depth > 0) { list_depth = list_depth - 1; }
  } else if (c == 'X') {
    /* item: advance the innermost list counter */
    if (list_depth > 0) {
      list_counters[list_depth] = list_counters[list_depth] + 1;
    }
  }
}

/* pads a centred line before its words are emitted */
int centering_pad(int text_len) {
  int pad = (out_width - text_len) / 2;
  if (pad < 0) { pad = 0; }
  for (int i = 0; i < pad; i = i + 1) {
    putc(fill_char);
  }
  return pad;
}

void emit_word(int start, int len) {
  word_count = word_count + 1;
  if (out_col + len + 1 > out_width) {
    putc('\n');
    out_lines = out_lines + 1;
    out_col = 0;
  }
  if (out_col > 0) {
    putc(' ');
    out_col = out_col + 1;
  }
  for (int i = 0; i < len; i = i + 1) {
    putc(line[start + i]);
    out_col = out_col + 1;
  }
}

void format_line() {
  apply_pending_state();
  if (line_len > 0 && line[0] == '.') {
    handle_directive();
    return;
  }
  if (line_len == 0) {
    putc('\n');
    out_lines = out_lines + 1;
    out_col = 0;
    return;
  }
  if (center_next == 1) {
    centering_pad(line_len);
    center_next = 0;
  }
  if (list_depth > 0) {
    for (int k = 0; k < list_depth * 2; k = k + 1) {
      putc(' ');
      out_col = out_col + 1;
    }
  }
  int i = 0;
  while (i < line_len) {
    while (i < line_len && line[i] == ' ') { i = i + 1; }
    int start = i;
    while (i < line_len && line[i] != ' ') { i = i + 1; }
    if (i > start) { emit_word(start, i - start); }
  }
}

int main() {
  read_input();
  int pos = 0;
  while (pos <= input_len && input_buf[pos] != -1) {
    line_len = 0;
    while (input_buf[pos] != '\n' && input_buf[pos] != -1
           && line_len < 95) {
      line[line_len] = input_buf[pos];
      line_len = line_len + 1;
      pos = pos + 1;
    }
    if (input_buf[pos] == '\n') { pos = pos + 1; }
    format_line();
  }
  putc('\n');
  print_int(out_lines);
  print_int(word_count);
  print_int(directive_count);
  return 0;
}
'''

_BUGGY_PATCH = (
    '''for (int i = 0; i < 8; i = i + 1) {
    section[i] = name[i];
  }''',
    '''for (int i = 0; i <= 8; i = i + 1) {
    section[i] = name[i];
  }''',
)

BUGS = [
    BugSpec('man_section', NAME, True, site_func='set_section',
            description='section-header copy writes section[8]; the '
                        'null-pointer guard means the bug is reachable '
                        'on an NT-path only after the pointer fix'),
]

VERSIONS = {0: BUGS}


def make_source(version=0):
    source = _BASE_SOURCE
    if version == -1:
        return source
    if version != 0:
        raise ValueError('man_fmt has no version %r' % version)
    correct, buggy = _BUGGY_PATCH
    if correct not in source:
        raise AssertionError('patch anchor missing in man_fmt')
    return source.replace(correct, buggy)


def default_input():
    """An everyday plain-text document: no directives at all."""
    text = ('the quick brown fox jumps over the lazy dog near the old\n'
            'river bank while morning light settles on the quiet town\n'
            'and the baker carries warm bread through narrow streets\n'
            '\n'
            'further down the road a small workshop opens its doors\n'
            'and the sound of tools fills the cool air of early spring\n')
    return text, []


def random_input(seed):
    state = (seed * 1181783497 + 5) & 0x7FFFFFFF
    words = ['stone', 'river', 'light', 'cloud', 'field', 'tree',
             'road', 'wind', 'roof', 'door', 'lamp', 'mill']
    lines = []
    for _ in range(6):
        picks = []
        for _ in range(9):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            picks.append(words[state % len(words)])
        lines.append(' '.join(picks))
    return '\n'.join(lines) + '\n', []
