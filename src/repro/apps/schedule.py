"""schedule: a priority process scheduler (Siemens-suite analogue).

Maintains three priority ready-queues, a blocked list and a running
job, driven by a command stream: ``1 prio`` add job, ``2`` schedule,
``3`` block running, ``4`` unblock, ``5 id`` upgrade priority,
``6`` finish running, ``7`` quantum expire, ``0`` end.

The common input uses only the everyday commands (add/schedule/finish),
leaving the block/unblock/upgrade/quantum handlers unexercised -- the
territory PathExpander explores.  Five buggy versions:

* v2, v4, v5 -- detected through NT-paths (bugs in the unexercised
  handlers that violate their invariants structurally);
* v1, v3 -- value-coverage misses, as in the paper ("limited by the
  value coverage problem instead of the path coverage problem"):
  the buggy computation has no guarding branch and is wrong only for
  data values the input (and any variable fix) never produces.
"""

from __future__ import annotations

from repro.apps.bugs import BugSpec, MissReason

NAME = 'schedule'
TOOLS = ('assertions',)
IS_SIEMENS = True

_BASE_SOURCE = r'''
/* schedule -- three-level priority scheduler */

int cmds[200];
int cmd_len = 0;

int queue[48];          /* 3 ready queues x 16 slots, by priority */
int qlen[3];
int blocked[16];
int blocked_len = 0;
int running = 0;        /* job id currently running, 0 = none */

int job_prio[64];       /* job id -> priority */
int next_id = 1;
int job_count = 0;
int finished_count = 0;
int block_events = 0;
int unblock_events = 0;
int upgrade_events = 0;
int quantum_events = 0;
int idle_ticks = 0;

void read_commands() {
  int v = read_int();
  while (v != -1 && cmd_len < 198) {
    cmds[cmd_len] = v;
    cmd_len = cmd_len + 1;
    v = read_int();
  }
  cmds[cmd_len] = 0;
}

void enqueue(int id, int prio) {
  if (prio < 0) { prio = 0; }
  if (prio > 2) { prio = 2; }
  if (qlen[prio] < 15) {
    queue[prio * 16 + qlen[prio]] = id;
    qlen[prio] = qlen[prio] + 1;
  }
}

int dequeue(int prio) {
  int id = queue[prio * 16];
  for (int i = 1; i < qlen[prio]; i = i + 1) {
    queue[prio * 16 + i - 1] = queue[prio * 16 + i];
  }
  qlen[prio] = qlen[prio] - 1;
  return id;
}

void cmd_new_job(int prio) {
  int id = next_id;
  next_id = next_id + 1;
  job_count = job_count + 1;
  /*V1*/
  job_prio[id & 63] = prio;
  /*END1*/
  enqueue(id, prio);
}

void cmd_schedule() {
  if (running != 0) {
    enqueue(running, job_prio[running & 63]);
    running = 0;
  }
  for (int p = 0; p < 3; p = p + 1) {
    if (qlen[p] > 0) {
      running = dequeue(p);
      /*V3*/
      idle_ticks = 0;
      /*END3*/
      return;
    }
  }
  idle_ticks = idle_ticks + 1;
}

void cmd_block() {
  if (running != 0) {
    /*V2*/
    block_events = block_events + 1;
    assert(block_events <= job_count + 1, "SCH_V2_GUARD");
    /*END2*/
    if (blocked_len < 15) {
      blocked[blocked_len] = running;
      blocked_len = blocked_len + 1;
    }
    running = 0;
  }
}

void cmd_unblock() {
  if (blocked_len > 0) {
    int id = blocked[blocked_len - 1];
    blocked_len = blocked_len - 1;
    unblock_events = unblock_events + 1;
    enqueue(id, job_prio[id & 63]);
  }
}

void cmd_upgrade(int id) {
  /*V4*/
  upgrade_events = upgrade_events + 1;
  assert(upgrade_events <= job_count + 1, "SCH_V4_GUARD");
  /*END4*/
  int p = job_prio[id & 63];
  if (p > 0) {
    job_prio[id & 63] = p - 1;
  }
}

void cmd_finish() {
  if (running != 0) {
    finished_count = finished_count + 1;
    job_count = job_count - 1;
    running = 0;
  }
}

void cmd_quantum() {
  /*V5*/
  quantum_events = quantum_events + 1;
  assert(quantum_events <= job_count + 1, "SCH_V5_GUARD");
  /*END5*/
  if (running != 0) {
    int p = job_prio[running & 63];
    if (p < 2) { job_prio[running & 63] = p + 1; }
    enqueue(running, job_prio[running & 63]);
    running = 0;
  }
}

void run_commands() {
  int pos = 0;
  while (pos < cmd_len) {
    int cmd = cmds[pos];
    pos = pos + 1;
    if (cmd == 0) { return; }
    if (cmd == 1) {
      int prio = cmds[pos];
      pos = pos + 1;
      cmd_new_job(prio);
    }
    else if (cmd == 2) { cmd_schedule(); }
    else if (cmd == 3) { cmd_block(); }
    else if (cmd == 4) { cmd_unblock(); }
    else if (cmd == 5) {
      int id = cmds[pos];
      pos = pos + 1;
      cmd_upgrade(id);
    }
    else if (cmd == 6) { cmd_finish(); }
    else if (cmd == 7) { cmd_quantum(); }
  }
}

int main() {
  read_commands();
  run_commands();
  print_int(job_count);
  print_int(finished_count);
  print_int(qlen[0] + qlen[1] + qlen[2]);
  print_int(blocked_len);
  print_int(idle_ticks);
  return 0;
}
'''

_BUG_PATCHES = {
    # v1: value-coverage miss.  Priorities are stored without
    # validation; the corruption only matters for prio == 9 (a value no
    # common input and no boundary fix produces: the dispatch has no
    # branch on prio at all).
    1: (
        'job_prio[id & 63] = prio;',
        '''job_prio[id & 63] = prio;
  assert(prio != 9, "SCH_V1");''',
    ),
    2: (
        '''block_events = block_events + 1;
    assert(block_events <= job_count + 1, "SCH_V2_GUARD");''',
        '''block_events = block_events + job_count + 2;
    assert(block_events <= job_count + 1, "SCH_V2");''',
    ),
    # v3: value-coverage miss inside the exercised scheduling loop:
    # wrong only when the dequeued job id is exactly 40.
    3: (
        '''/*V3*/
      idle_ticks = 0;
      /*END3*/''',
        '''/*V3*/
      idle_ticks = 0;
      assert(running != 40, "SCH_V3");
      /*END3*/''',
    ),
    4: (
        '''upgrade_events = upgrade_events + 1;
  assert(upgrade_events <= job_count + 1, "SCH_V4_GUARD");''',
        '''upgrade_events = upgrade_events + job_count + 2;
  assert(upgrade_events <= job_count + 1, "SCH_V4");''',
    ),
    5: (
        '''quantum_events = quantum_events + 1;
  assert(quantum_events <= job_count + 1, "SCH_V5_GUARD");''',
        '''quantum_events = quantum_events + job_count + 2;
  assert(quantum_events <= job_count + 1, "SCH_V5");''',
    ),
}

VERSIONS = {
    1: [BugSpec('sch_v1', NAME, False,
                miss_reason=MissReason.VALUE_COVERAGE, assert_id='SCH_V1',
                description='unvalidated priority corrupts state only '
                            'for prio 9')],
    2: [BugSpec('sch_v2', NAME, True, assert_id='SCH_V2',
                description='block handler inflates block_events past '
                            'the job count')],
    3: [BugSpec('sch_v3', NAME, False,
                miss_reason=MissReason.VALUE_COVERAGE, assert_id='SCH_V3',
                description='scheduling is wrong only for job id 40')],
    4: [BugSpec('sch_v4', NAME, True, assert_id='SCH_V4',
                description='upgrade handler inflates upgrade_events')],
    5: [BugSpec('sch_v5', NAME, True, assert_id='SCH_V5',
                description='quantum handler inflates quantum_events')],
}


def make_source(version=0):
    source = _BASE_SOURCE
    if version:
        if version not in _BUG_PATCHES:
            raise ValueError('schedule has no version %r' % version)
        correct, buggy = _BUG_PATCHES[version]
        if correct not in source:
            raise AssertionError('patch anchor missing for v%d' % version)
        source = source.replace(correct, buggy)
    return source


def default_input():
    """Everyday workload: add jobs, schedule, finish.  No blocking,
    upgrades or quantum expiries."""
    ints = []
    for prio in (0, 1, 2, 1, 0, 2, 1, 1):
        ints.extend([1, prio, 2])   # add a job, schedule it
    for _ in range(8):
        ints.extend([6, 2])         # finish it, schedule the next
    ints.append(0)
    return '', ints


def random_input(seed):
    state = (seed * 69621 + 3) & 0x7FFFFFFF
    ints = []
    jobs = 0
    for _ in range(40):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        choice = state % 6
        if choice < 2:
            ints.extend([1, state % 3])
            jobs += 1
        elif choice < 4:
            ints.append(2)
        elif jobs and choice == 4:
            ints.append(6)
            jobs -= 1
        else:
            ints.append(2)
    ints.append(0)
    return '', ints
