"""Application registry: every evaluated program in one place.

Mirrors Table 3 of the paper: seven buggy applications (38 tested bugs
total) plus the three SPEC-analogue workloads added for the overhead
and coverage experiments (gzip, vpr, parser).
"""

from __future__ import annotations

from repro.apps import (bc_calc, go_app, gzip_app, man_fmt, parser_app,
                        print_tokens, print_tokens2, schedule, schedule2,
                        vpr_app)
from repro.core.config import Mode, PathExpanderConfig
from repro.minic.codegen import compile_minic


class AppSpec:
    """One benchmark application and its experiment metadata."""

    def __init__(self, module):
        self.module = module
        self.name = module.NAME
        self.tools = tuple(module.TOOLS)
        self.is_siemens = module.IS_SIEMENS
        self.versions = dict(module.VERSIONS)

    # ------------------------------------------------------------------

    def source(self, version=0):
        return self.module.make_source(version)

    def compile(self, version=0):
        name = self.name if version == 0 else '%s_v%s' % (self.name,
                                                          version)
        return compile_minic(self.source(version), name=name)

    def bugs(self, version=0):
        return list(self.versions.get(version, []))

    def all_bugs(self):
        bugs = []
        for version in sorted(self.versions):
            bugs.extend(self.versions[version])
        return bugs

    def default_input(self):
        return self.module.default_input()

    def random_input(self, seed):
        return self.module.random_input(seed)

    def make_config(self, mode=Mode.STANDARD, **overrides):
        """The paper's per-app configuration: MaxNTPathLength is 100
        for the small Siemens benchmarks and 1000 for the rest
        (Section 6.3)."""
        if self.is_siemens:
            overrides.setdefault('max_nt_path_length', 100)
        return PathExpanderConfig(mode=mode, **overrides)

    @property
    def assertion_versions(self):
        """Versions whose bugs are checked with assertions."""
        return sorted(
            version for version, bugs in self.versions.items()
            if bugs and all(bug.assert_id is not None for bug in bugs))

    @property
    def memory_versions(self):
        """Versions whose bugs are memory bugs (CCured/iWatcher)."""
        return sorted(
            version for version, bugs in self.versions.items()
            if bugs and all(bug.assert_id is None for bug in bugs))

    def __repr__(self):
        return '<AppSpec %s: %d versions, tools=%s>' % (
            self.name, len(self.versions), list(self.tools))


_MODULES = (print_tokens, print_tokens2, schedule, schedule2, bc_calc,
            man_fmt, go_app, gzip_app, vpr_app, parser_app)

ALL_APPS = {module.NAME: AppSpec(module) for module in _MODULES}

# The seven buggy applications of Table 3.
BUGGY_APP_NAMES = ('go_app', 'bc_calc', 'man_fmt', 'print_tokens',
                   'print_tokens2', 'schedule', 'schedule2')

# Apps used for the overhead / coverage / crash-latency experiments.
WORKLOAD_APP_NAMES = ('go_app', 'gzip_app', 'vpr_app', 'parser_app',
                      'bc_calc', 'man_fmt', 'print_tokens',
                      'print_tokens2', 'schedule', 'schedule2')


def get_app(name):
    if name not in ALL_APPS:
        raise KeyError('unknown app %r (choose from %s)'
                       % (name, sorted(ALL_APPS)))
    return ALL_APPS[name]


def total_tested_bugs():
    """Bug count as in Table 3/4: memory bugs are tested once per
    memory tool (CCured and iWatcher), semantic bugs once."""
    total = 0
    for name in BUGGY_APP_NAMES:
        app = get_app(name)
        for bugs in app.versions.values():
            for bug in bugs:
                total += 2 if bug.is_memory_bug else 1
    return total
