"""vpr_app: a simulated-annealing placer (SPEC 175.vpr analogue).

Places cells on a grid and iteratively proposes swaps, accepting those
that reduce total wirelength (plus an annealing allowance).  Progress
is printed every few sweeps, so NT-paths meet unsafe events at a
moderate rate -- between the go and gzip profiles of Figure 3.

No seeded bugs; vpr is used for the crash-latency, coverage and
overhead experiments.
"""

from __future__ import annotations

NAME = 'vpr_app'
TOOLS = ()
IS_SIEMENS = False
VERSIONS = {}
BUGS = []

_SOURCE = r'''
/* vpr_app -- grid placement by simulated annealing */

int cell_x[64];
int cell_y[64];
int nets[128];          /* 64 net pairs: (a, b) connected cells */
int net_count = 0;

int grid_w = 12;
int grid_h = 12;
int rng_state = 1;

int next_rand() {
  rng_state = (rng_state * 1103515 + 12345) % 2147483647;
  if (rng_state < 0) { rng_state = 0 - rng_state; }
  return rng_state;
}
int temperature = 100;
int accepted = 0;
int rejected = 0;
int sweeps = 0;
int strategy = 0;       /* 0 single-move, 1 pair-swap, 2 row-rotate */
int do_route = 0;       /* run the congestion estimate each sweep */
int congestion[144];
int overflow_links = 0;
int swap_moves = 0;
int rotate_moves = 0;

void init_placement() {
  int n = read_int();
  if (n < 8) { n = 8; }
  if (n > 64) { n = 64; }
  rng_state = read_int();
  if (rng_state < 1) { rng_state = 1; }
  for (int i = 0; i < n; i = i + 1) {
    cell_x[i] = next_rand() % grid_w;
    cell_y[i] = next_rand() % grid_h;
  }
  net_count = 0;
  int pair = read_int();
  while (pair != -1 && net_count < 63) {
    int other = read_int();
    if (other == -1) { break; }
    nets[net_count * 2] = pair % n;
    nets[net_count * 2 + 1] = other % n;
    net_count = net_count + 1;
    pair = read_int();
  }
  sweeps = read_int();
  if (sweeps < 1) { sweeps = 4; }
  if (sweeps > 60) { sweeps = 60; }
  strategy = read_int();
  if (strategy < 0 || strategy > 2) { strategy = 0; }
  do_route = read_int();
  if (do_route != 1) { do_route = 0; }
}

/* swaps the placements of two cells if that lowers cost */
void pair_swap(int n) {
  int a = next_rand() % n;
  int b = next_rand() % n;
  if (a == b) { return; }
  int before = move_delta(a, cell_x[b], cell_y[b]);
  int tx = cell_x[a];
  int ty = cell_y[a];
  cell_x[a] = cell_x[b];
  cell_y[a] = cell_y[b];
  int after = move_delta(b, tx, ty);
  if (before + after <= 0) {
    cell_x[b] = tx;
    cell_y[b] = ty;
    swap_moves = swap_moves + 1;
    accepted = accepted + 1;
  } else {
    cell_x[a] = tx;
    cell_y[a] = ty;
    rejected = rejected + 1;
  }
}

/* rotates every cell in one row a column to the right */
void row_rotate(int n) {
  int row = next_rand() % grid_h;
  for (int i = 0; i < n; i = i + 1) {
    if (cell_y[i] == row) {
      cell_x[i] = (cell_x[i] + 1) % grid_w;
      rotate_moves = rotate_moves + 1;
    }
  }
}

/* bounding-box congestion estimate over the routing grid */
void estimate_congestion() {
  for (int i = 0; i < 144; i = i + 1) { congestion[i] = 0; }
  for (int i = 0; i < net_count; i = i + 1) {
    int a = nets[i * 2];
    int b = nets[i * 2 + 1];
    int x0 = cell_x[a];
    int x1 = cell_x[b];
    if (x0 > x1) { int t = x0; x0 = x1; x1 = t; }
    int y0 = cell_y[a];
    int y1 = cell_y[b];
    if (y0 > y1) { int t = y0; y0 = y1; y1 = t; }
    for (int y = y0; y <= y1; y = y + 1) {
      for (int x = x0; x <= x1; x = x + 1) {
        congestion[y * grid_w + x] = congestion[y * grid_w + x] + 1;
      }
    }
  }
  overflow_links = 0;
  for (int i = 0; i < 144; i = i + 1) {
    if (congestion[i] > 4) {
      overflow_links = overflow_links + 1;
    }
  }
}

int net_length(int a, int b) {
  int dx = cell_x[a] - cell_x[b];
  int dy = cell_y[a] - cell_y[b];
  if (dx < 0) { dx = 0 - dx; }
  if (dy < 0) { dy = 0 - dy; }
  return dx + dy;
}

int total_cost() {
  int cost = 0;
  for (int i = 0; i < net_count; i = i + 1) {
    cost = cost + net_length(nets[i * 2], nets[i * 2 + 1]);
  }
  return cost;
}

/* cost delta if cell moves to (nx, ny) */
int move_delta(int cell, int nx, int ny) {
  int before = 0;
  int after = 0;
  int ox = cell_x[cell];
  int oy = cell_y[cell];
  for (int i = 0; i < net_count; i = i + 1) {
    int a = nets[i * 2];
    int b = nets[i * 2 + 1];
    if (a == cell || b == cell) {
      before = before + net_length(a, b);
      cell_x[cell] = nx;
      cell_y[cell] = ny;
      after = after + net_length(a, b);
      cell_x[cell] = ox;
      cell_y[cell] = oy;
    }
  }
  return after - before;
}

void one_sweep(int n) {
  for (int t = 0; t < n; t = t + 1) {
    int cell = next_rand() % n;
    int nx = next_rand() % grid_w;
    int ny = next_rand() % grid_h;
    int delta = move_delta(cell, nx, ny);
    int allowance = temperature / 10;
    if (delta <= allowance) {
      cell_x[cell] = nx;
      cell_y[cell] = ny;
      accepted = accepted + 1;
    } else {
      rejected = rejected + 1;
    }
  }
  if (temperature > 5) {
    temperature = temperature - 5;
  }
}

int main() {
  init_placement();
  int n = net_count + 8;
  if (n > 64) { n = 64; }
  for (int s = 0; s < sweeps; s = s + 1) {
    if (strategy == 1) {
      pair_swap(n);
    } else if (strategy == 2) {
      row_rotate(n);
    }
    one_sweep(n);
    if (do_route == 1) {
      estimate_congestion();
    }
    if (s % 4 == 0) {
      print_int(total_cost());
    }
  }
  print_int(accepted);
  print_int(rejected);
  print_int(total_cost());
  print_int(overflow_links + swap_moves + rotate_moves);
  return 0;
}
'''


def make_source(version=0):
    if version not in (0, -1):
        raise ValueError('vpr_app has no version %r' % version)
    return _SOURCE


def default_input():
    ints = [32, 99]
    state = 777
    for _ in range(40):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        ints.append(state % 32)
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        ints.append(state % 32)
    ints.append(-1)
    ints.extend([24, 0, 0])  # sweeps, strategy, do_route
    return '', ints


def random_input(seed):
    state = (seed * 747796405 + 31) & 0x7FFFFFFF
    ints = [16 + state % 48, 1 + state % 1000]
    for _ in range(20 + seed % 20):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        ints.append(state % 64)
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        ints.append(state % 64)
    ints.append(-1)
    ints.extend([8 + seed % 16, 0, 0])
    return '', ints
