"""print_tokens2: the second Siemens tokenizer variant.

Unlike :mod:`repro.apps.print_tokens`, tokens are scanned into a fixed
token buffer by ``get_token`` first and then dispatched on the token
*kind*, which is how the paper's Figure 1 bug arises: version 10 scans
a quoted token for its closing quote without checking for the
terminator, overrunning the token buffer -- a memory bug detectable by
CCured/iWatcher only when the quoted-token path runs.

Versions 1-9 carry one semantic bug each (assertions):

* detected via NT-paths: v1, v4, v5, v7;
* missed -- value coverage: v2, v8, v9;
* missed -- NT-path state inconsistency: v3 (the assertion reads
  ``str_len``, which only the real string-scanning path sets; the
  variable fix satisfies the branch but leaves ``str_len`` stale);
* missed -- needs a special input: v6 (bug sits past an end-of-line
  scan longer than MaxNTPathLength).
"""

from __future__ import annotations

from repro.apps.bugs import BugSpec, MissReason

NAME = 'print_tokens2'
TOOLS = ('assertions', 'ccured', 'iwatcher')
IS_SIEMENS = True

_BASE_SOURCE = r'''
/* print_tokens2 -- token-buffer based tokenizer */

int input_buf[600];
int input_len = 0;

int tok[8];             /* current token text, NUL-terminated */
int strbuf[16];         /* string-token content */
int tok_kind = 0;
int str_len = 0;        /* set only while scanning string tokens */
int num_value = 0;

int counts[8];
int total_tokens = 0;
int error_count = 0;
int char_count = 0;
int keyword_hits = 0;
int paren_depth = 0;
int line_no = 1;

int bm_pos = -1;        /* sentinel: no bookmark pending */
int bm_log[8];
int col_mark = 9;       /* sentinel: past the column log */
int col_log[8];
int esc_slot = -2;      /* sentinel: no escape continuation */
int esc_log[6];

int is_alpha(int c) {
  if (c >= 'a' && c <= 'z') { return 1; }
  if (c >= 'A' && c <= 'Z') { return 1; }
  return 0;
}

int is_digit(int c) {
  return c >= '0' && c <= '9';
}

void read_input() {
  int c = getc();
  while (c != -1 && input_len < 599) {
    input_buf[input_len] = c;
    input_len = input_len + 1;
    c = getc();
  }
  input_buf[input_len] = -1;
}

int match_word(int *word) {
  int i = 0;
  while (word[i] != 0 && tok[i] != 0) {
    if (tok[i] != word[i]) { return 0; }
    i = i + 1;
  }
  return word[i] == 0 && tok[i] == 0;
}

int is_keyword() {
  if (match_word("begin")) { return 1; }
  if (match_word("end")) { return 1; }
  if (match_word("not")) { return 1; }
  return 0;
}

/* Scans one token starting at pos into tok[]; sets tok_kind.
   Returns the new position. */
int get_token(int pos) {
  int c = input_buf[pos];
  int n = 0;
  str_len = 0;
  tok[0] = 0;
  if (is_alpha(c)) {
    while (is_alpha(input_buf[pos]) || is_digit(input_buf[pos])) {
      if (n < 7) { tok[n] = input_buf[pos]; n = n + 1; }
      pos = pos + 1;
    }
    tok[n] = 0;
    tok_kind = 0;
    if (is_keyword()) { tok_kind = 6; }
    return pos;
  }
  if (is_digit(c)) {
    num_value = 0;
    while (is_digit(input_buf[pos])) {
      num_value = num_value * 10 + (input_buf[pos] - '0');
      pos = pos + 1;
    }
    tok_kind = 1;
    return pos;
  }
  if (c == '"') {
    tok[0] = '"';
    tok[1] = 0;
    pos = pos + 1;
    while (input_buf[pos] != '"' && input_buf[pos] != -1 && n < 15) {
      strbuf[n] = input_buf[pos];
      n = n + 1;
      pos = pos + 1;
    }
    strbuf[n] = 0;
    str_len = n;
    if (input_buf[pos] == '"') { pos = pos + 1; }
    tok_kind = 3;
    return pos;
  }
  if (c == 39) {
    pos = pos + 1;
    if (input_buf[pos] != -1) { tok[0] = input_buf[pos]; pos = pos + 1; }
    if (input_buf[pos] == 39) { pos = pos + 1; }
    tok_kind = 4;
    return pos;
  }
  if (c == '%') {
    tok_kind = 5;
    return pos;
  }
  if (c == '(' || c == ')' || c == ';' || c == ',' || c == '=') {
    tok[0] = c;
    tok_kind = 2;
    return pos + 1;
  }
  tok[0] = c;
  tok_kind = 7;
  return pos + 1;
}

/* Figure 1: quoted tokens are re-scanned for their closing quote.
   This check runs for every token, directly after get_token. */
int quote_scan() {
  int i = 0;
  if (tok[0] == '"') {
    /*V10*/
    i = 1;
    while (tok[i] != '"' && tok[i] != 0) { i = i + 1; }
    /*END10*/
  }
  return i;
}

void do_ident() {
  counts[0] = counts[0] + 1;
  int n = 0;
  while (tok[n] != 0) { n = n + 1; }
  /*V8*/
  assert(n <= 7, "PT2_V8_GUARD");
  /*END8*/
}

void do_number() {
  counts[1] = counts[1] + 1;
  /*V2*/
  assert(num_value >= 0, "PT2_V2_GUARD");
  /*END2*/
}

void do_string(int kind) {
  if (kind == 3) {
    /*V3*/
    assert(str_len >= 0, "PT2_V3_GUARD");
    /*END3*/
    counts[3] = counts[3] + 1;
  }
}

void do_charlit() {
  /*V1*/
  char_count = char_count + 1;
  assert(char_count <= total_tokens + 1, "PT2_V1_GUARD");
  /*END1*/
  counts[4] = counts[4] + 1;
}

int do_comment(int pos) {
  /*V6*/
  while (input_buf[pos] != '\n' && input_buf[pos] != -1) {
    pos = pos + 1;
  }
  /*END6*/
  counts[5] = counts[5] + 1;
  return pos;
}

void do_special() {
  int c = tok[0];
  if (c == '(') {
    paren_depth = paren_depth + 1;
  } else if (c == ')') {
    /*V4*/
    paren_depth = paren_depth - 1;
    assert(paren_depth + 1 >= 0, "PT2_V4_GUARD");
    /*END4*/
  }
  counts[2] = counts[2] + 1;
}

void do_keyword() {
  /*V5*/
  keyword_hits = keyword_hits + 1;
  assert(keyword_hits <= total_tokens + 1, "PT2_V5_GUARD");
  /*END5*/
  counts[6] = counts[6] + 1;
}

void do_error() {
  /*V7*/
  error_count = error_count + 1;
  assert(error_count <= total_tokens + 1, "PT2_V7_GUARD");
  /*END7*/
  counts[7] = counts[7] + 1;
}

/* tracing state applied per token; armed only by debug inputs */
void trace_state(int pos) {
  if (bm_pos >= 0) {
    bm_log[bm_pos] = pos;
    bm_pos = -1;
  }
  if (col_mark < 8) {
    col_log[col_mark] = pos;
  }
  if (esc_slot >= 0) {
    esc_log[esc_slot] = pos;
  }
}

void run() {
  int pos = 0;
  while (pos < input_len && input_buf[pos] != -1) {
    trace_state(pos);
    int c = input_buf[pos];
    if (c == ' ' || c == '\t') { pos = pos + 1; continue; }
    if (c == '\n') {
      line_no = line_no + 1;
      /*V9*/
      pos = pos + 1;
      /*END9*/
      continue;
    }
    pos = get_token(pos);
    quote_scan();
    total_tokens = total_tokens + 1;
    if (tok_kind == 6) { do_keyword(); }
    else if (tok_kind == 0) { do_ident(); }
    else if (tok_kind == 1) { do_number(); }
    else if (tok_kind == 3) { do_string(tok_kind); }
    else if (tok_kind == 4) { do_charlit(); }
    else if (tok_kind == 5) { pos = do_comment(pos); }
    else if (tok_kind == 2) { do_special(); }
    else { do_error(); }
  }
}

int main() {
  read_input();
  run();
  for (int i = 0; i < 8; i = i + 1) { print_int(counts[i]); }
  print_int(total_tokens);
  print_int(line_no);
  return 0;
}
'''

_BUG_PATCHES = {
    1: (
        '''char_count = char_count + 1;
  assert(char_count <= total_tokens + 1, "PT2_V1_GUARD");''',
        '''char_count = char_count + total_tokens + 2;
  assert(char_count <= total_tokens + 1, "PT2_V1");''',
    ),
    2: (
        'assert(num_value >= 0, "PT2_V2_GUARD");',
        'assert(num_value != 512, "PT2_V2");',
    ),
    3: (
        'assert(str_len >= 0, "PT2_V3_GUARD");',
        'assert(str_len < 12, "PT2_V3");',
    ),
    4: (
        '''paren_depth = paren_depth - 1;
    assert(paren_depth + 1 >= 0, "PT2_V4_GUARD");''',
        '''paren_depth = paren_depth - 2;
    assert(paren_depth + 1 >= 0, "PT2_V4");''',
    ),
    5: (
        '''keyword_hits = keyword_hits + 1;
  assert(keyword_hits <= total_tokens + 1, "PT2_V5_GUARD");''',
        '''keyword_hits = keyword_hits + total_tokens + 2;
  assert(keyword_hits <= total_tokens + 1, "PT2_V5");''',
    ),
    6: (
        r'''while (input_buf[pos] != '\n' && input_buf[pos] != -1) {
    pos = pos + 1;
  }''',
        r'''while (input_buf[pos] != '\n' && input_buf[pos] != -1) {
    pos = pos + 1;
  }
  counts[5] = counts[5] - 1;
  assert(counts[5] + 1 >= 0, "PT2_V6");''',
    ),
    7: (
        '''error_count = error_count + 1;
  assert(error_count <= total_tokens + 1, "PT2_V7_GUARD");''',
        '''error_count = error_count + total_tokens + 2;
  assert(error_count <= total_tokens + 1, "PT2_V7");''',
    ),
    8: (
        'assert(n <= 7, "PT2_V8_GUARD");',
        'assert(n != 15, "PT2_V8");',
    ),
    9: (
        '''pos = pos + 1;
      /*END9*/''',
        '''pos = pos + 1;
      assert(line_no != 100, "PT2_V9");
      /*END9*/''',
    ),
    10: (
        '''i = 1;
    while (tok[i] != '"' && tok[i] != 0) { i = i + 1; }''',
        '''i = 1;
    while (tok[i] != '"') { i = i + 1; }''',
    ),
}

VERSIONS = {
    1: [BugSpec('pt2_v1', NAME, True, assert_id='PT2_V1',
                description='char-literal handler inflates char_count '
                            'past the token count')],
    2: [BugSpec('pt2_v2', NAME, False,
                miss_reason=MissReason.VALUE_COVERAGE,
                assert_id='PT2_V2',
                description='number handler wrong only for value 512')],
    3: [BugSpec('pt2_v3', NAME, False,
                miss_reason=MissReason.INCONSISTENCY,
                assert_id='PT2_V3',
                description='string-length invariant: the fix satisfies '
                            'the kind==3 branch but str_len stays stale, '
                            'so the violation never shows on the NT-path')],
    4: [BugSpec('pt2_v4', NAME, True, assert_id='PT2_V4',
                description='closing-paren handler decrements depth '
                            'twice')],
    5: [BugSpec('pt2_v5', NAME, True, assert_id='PT2_V5',
                description='keyword handler inflates keyword_hits')],
    6: [BugSpec('pt2_v6', NAME, False,
                miss_reason=MissReason.SPECIAL_INPUT,
                assert_id='PT2_V6',
                description='comment handler bug sits after an '
                            'end-of-line scan longer than '
                            'MaxNTPathLength')],
    7: [BugSpec('pt2_v7', NAME, True, assert_id='PT2_V7',
                description='error handler jumps error_count past the '
                            'token count')],
    8: [BugSpec('pt2_v8', NAME, False,
                miss_reason=MissReason.VALUE_COVERAGE,
                assert_id='PT2_V8',
                description='identifier handler wrong only at the '
                            'buffer-capacity length 15')],
    9: [BugSpec('pt2_v9', NAME, False,
                miss_reason=MissReason.VALUE_COVERAGE,
                assert_id='PT2_V9',
                description='newline handler wrong only at line 100')],
    10: [BugSpec('pt2_v10', NAME, True, site_func='quote_scan',
                 description='Figure 1: quoted-token scan misses the '
                             'terminator check and overruns tok[]')],
}


def make_source(version=0):
    source = _BASE_SOURCE
    if version:
        if version not in _BUG_PATCHES:
            raise ValueError('print_tokens2 has no version %r' % version)
        correct, buggy = _BUG_PATCHES[version]
        if correct not in source:
            raise AssertionError('patch anchor missing for v%d' % version)
        source = source.replace(correct, buggy)
    return source


def default_input():
    """Common input: identifiers, numbers, separators -- token strings
    never start with a quotation mark (the Figure 1 pre-condition)."""
    text = 'foo bar 12 baz; qux, 300 = spam ham 9 eggs;\n' \
           'one two 45 three; four, 88 = five six 7 seven;\n'
    return text, []


def random_input(seed):
    state = (seed * 48271 + 7) & 0x7FFFFFFF
    words = ['foo', 'bar', 'baz', 'qux', 'data', 'y', 'val', 'node']
    pieces = []
    for _ in range(28):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        choice = state % 9
        if choice < 4:
            pieces.append(words[state % len(words)])
        elif choice < 7:
            pieces.append(str(state % 900))
        elif choice == 7:
            pieces.append(';')
        else:
            pieces.append(',')
    return ' '.join(pieces) + '\n', []
