"""bc_calc: an arbitrary-expression calculator (bc-1.06 analogue).

A recursive-descent calculator over statements separated by ``;``:
assignments (``a = 3 + 4 * 2``) and expressions (printed), with
single-letter variables, parentheses and unary minus.

Two seeded memory bugs, checked with CCured/iWatcher, reproducing the
paper's bc-1.06 row (1 of 2 detected):

* ``bc_grow`` (detected): the variable-table growth path -- never taken
  with everyday inputs -- copies one element too many out of the old
  table (the shape of the real bc-1.06 ``more_arrays`` bug).
  PathExpander forces the growth path and the checker flags the read
  past the table.
* ``bc_flush`` (missed, exercised edge): the operator-cache flush
  branch is taken benignly many times early in the run (small window
  base), saturating both edges' exercise counters; only after a late
  statement raises the window base would the flush write out of
  bounds, and by then PathExpander no longer explores the edge.
"""

from __future__ import annotations

from repro.apps.bugs import BugSpec, MissReason

NAME = 'bc_calc'
TOOLS = ('ccured', 'iwatcher')
IS_SIEMENS = False

_BASE_SOURCE = r'''
/* bc_calc -- statement calculator */

int input_buf[800];
int input_len = 0;
int pos = 0;            /* cursor into input_buf */

int var_names[8];
int var_vals[8];
int var_count = 0;

int aux[8];             /* operator-cache spill window */
int mark = 0;           /* spill window base; raised by 'z' statements */
int acc = 0;            /* operators since last flush */

int stmt_count = 0;
int error_flag = 0;

int err_pos = -2;       /* sentinel: no pending error position */
int err_log[6];
int depth_mark = 9;     /* sentinel: past the depth log */
int depth_log[8];
int last_tok = -1;      /* sentinel: no remembered token */
int tok_ring[8];

void read_input() {
  int c = getc();
  while (c != -1 && input_len < 798) {
    input_buf[input_len] = c;
    input_len = input_len + 1;
    c = getc();
  }
  input_buf[input_len] = 0;
}

void skip_spaces() {
  while (input_buf[pos] == ' ' || input_buf[pos] == '\t'
         || input_buf[pos] == '\n') {
    pos = pos + 1;
  }
}

/* The paper's bc bug #2 shape: called on every operator. */
void note_op() {
  acc = acc + 1;
  if (acc >= 3) {
    /*FLUSH*/
    aux[mark] = acc;
    /*ENDFLUSH*/
    acc = 0;
  }
}

int lookup_var(int name) {
  for (int i = 0; i < var_count; i = i + 1) {
    if (var_names[i] == name) { return var_vals[i]; }
  }
  return 0;
}

/* Grow path for the variable table (bc bug #1 shape). */
void grow_vars() {
  int *wider = malloc(var_count + 4);
  /*GROW*/
  for (int i = 0; i < var_count; i = i + 1) {
    wider[i] = var_vals[i];
  }
  /*ENDGROW*/
  free(wider);
}

void set_var(int name, int value) {
  for (int i = 0; i < var_count; i = i + 1) {
    if (var_names[i] == name) {
      var_vals[i] = value;
      return;
    }
  }
  if (var_count >= 8) {
    grow_vars();
    return;
  }
  var_names[var_count] = name;
  var_vals[var_count] = value;
  var_count = var_count + 1;
}

int parse_factor() {
  skip_spaces();
  int c = input_buf[pos];
  if (c == '(') {
    pos = pos + 1;
    int v = parse_expr();
    skip_spaces();
    if (input_buf[pos] == ')') { pos = pos + 1; }
    else { error_flag = 1; }
    return v;
  }
  if (c == '-') {
    pos = pos + 1;
    note_op();
    return 0 - parse_factor();
  }
  if (c >= '0' && c <= '9') {
    int v = 0;
    while (input_buf[pos] >= '0' && input_buf[pos] <= '9') {
      v = v * 10 + (input_buf[pos] - '0');
      pos = pos + 1;
    }
    return v;
  }
  if (c >= 'a' && c <= 'z') {
    pos = pos + 1;
    return lookup_var(c);
  }
  error_flag = 1;
  pos = pos + 1;
  return 0;
}

int parse_term() {
  int v = parse_factor();
  skip_spaces();
  while (input_buf[pos] == '*' || input_buf[pos] == '/'
         || input_buf[pos] == '%') {
    int op = input_buf[pos];
    pos = pos + 1;
    note_op();
    int rhs = parse_factor();
    if (op == '*') { v = v * rhs; }
    else if (rhs == 0) { error_flag = 1; }
    else if (op == '/') { v = v / rhs; }
    else { v = v % rhs; }
    skip_spaces();
  }
  return v;
}

int parse_expr() {
  int v = parse_term();
  skip_spaces();
  while (input_buf[pos] == '+' || input_buf[pos] == '-') {
    int op = input_buf[pos];
    pos = pos + 1;
    note_op();
    int rhs = parse_term();
    if (op == '+') { v = v + rhs; }
    else { v = v - rhs; }
    skip_spaces();
  }
  return v;
}

/* bookkeeping armed by error recovery / tracing modes (off in
   everyday sessions) */
void stmt_prologue() {
  if (err_pos >= 0) {
    err_log[err_pos] = pos;
    err_pos = -2;
  }
  if (depth_mark < 8) {
    depth_log[depth_mark] = acc;
  }
  if (last_tok >= 0) {
    tok_ring[last_tok] = pos;
  }
}

/* one statement: 'name = expr' or 'expr'; returns 1 to continue */
int do_statement() {
  skip_spaces();
  if (input_buf[pos] == 0) { return 0; }
  stmt_prologue();
  stmt_count = stmt_count + 1;
  acc = 0;                   /* the operator cache is per-statement */
  int c = input_buf[pos];
  int look = pos + 1;
  while (input_buf[look] == ' ') { look = look + 1; }
  if (c >= 'a' && c <= 'z' && input_buf[look] == '=') {
    pos = look + 1;
    int value = parse_expr();
    if (c == 'z') {
      /* window-control statement: raises the spill base; only small
         window values are meaningful */
      if (value > 0 && value < 8) {
        mark = value;
      }
    } else {
      set_var(c, value);
    }
  } else {
    int value = parse_expr();
    print_int(value);
  }
  skip_spaces();
  if (input_buf[pos] == ';') { pos = pos + 1; return 1; }
  if (input_buf[pos] == 0) { return 0; }
  return 1;
}

int main() {
  read_input();
  while (do_statement()) { }
  print_int(stmt_count);
  print_int(error_flag);
  return 0;
}
'''

# bc ships with both bugs present (a buggy release, like bc-1.06);
# version 0 is the shipped binary.
_BUGGY_PATCHES = [
    (
        '''for (int i = 0; i < var_count; i = i + 1) {
    wider[i] = var_vals[i];
  }''',
        '''for (int i = 0; i <= 8; i = i + 1) {
    wider[i] = var_vals[i];
  }''',
    ),
    (
        'aux[mark] = acc;',
        'aux[mark + 2] = acc;',
    ),
]

BUGS = [
    BugSpec('bc_grow', NAME, True, site_func='grow_vars',
            description='variable-table growth copies one element too '
                        'many (more_arrays shape)'),
    BugSpec('bc_flush', NAME, False,
            miss_reason=MissReason.EXERCISED_EDGE, site_func='note_op',
            description='spill write lands out of bounds only after a '
                        'late window-base raise; the flush edge '
                        'saturated its counter long before'),
]

VERSIONS = {0: BUGS}


def make_source(version=0):
    """bc ships as a single buggy release; version 0 carries both bugs.
    ``version=-1`` gives the corrected program (for testing)."""
    source = _BASE_SOURCE
    if version == -1:
        return source
    if version != 0:
        raise ValueError('bc_calc has no version %r' % version)
    for correct, buggy in _BUGGY_PATCHES:
        if correct not in source:
            raise AssertionError('patch anchor missing in bc_calc')
        source = source.replace(correct, buggy)
    return source


def default_input():
    """Everyday calculator session: a few variables, plenty of
    operators early (pumping the flush edge), a window raise late, and
    almost operator-free statements afterwards."""
    text = ('a = 1 + 2 + 3 + 4;'
            'b = a * 2 + a * 3 + 5;'
            'c = a + b + a + b + 1;'
            'd = c % 7 + b / 2 + a;'
            'e = a * a + b - c + 9;'
            'f = e / 3 + d * 2 + 1;'
            'g = f % 5 + e + a + b;'
            'a + b + c + d;'
            'e + f + g + 2;'
            'a = a + b * 2 + c / 3;'
            'b = b + c + d + e + f;'
            'c = (a + b) * 2 + d % 9 + 1;'
            'd = a % 11 + b % 7 + c % 5;'
            'e = a + b + c + d + e;'
            'a + e; b + d; c + 7;'
            'z = 6;'
            'a + b; c + d; b + 1; 42;'
            'a + 1; b + 2; c + 3; d + 4;'
            'e + 5; f + 6; g + 7; a + 8;'
            'b + 9; c + 10; d + 11; 99;')
    return text, []


# --------------------------------------------------------------------
# production-rule random test generation (Section 6.3: "we have used a
# production-rule based test case generation technique to generate a
# large number of random test inputs")

_RULES = {
    'stmt': [['var', ' = ', 'expr'], ['expr']],
    'expr': [['term'], ['term', ' + ', 'expr'], ['term', ' - ', 'expr']],
    'term': [['factor'], ['factor', ' * ', 'term'],
             ['factor', ' / ', 'term']],
    'factor': [['num'], ['var'], ['( ', 'expr', ' )'], ['-', 'factor']],
}


def _gen(symbol, state, depth):
    if symbol == 'num':
        state[0] = (state[0] * 1103515245 + 12345) & 0x7FFFFFFF
        return str(state[0] % 97 + 1)
    if symbol == 'var':
        state[0] = (state[0] * 1103515245 + 12345) & 0x7FFFFFFF
        return chr(ord('a') + state[0] % 6)
    if symbol not in _RULES:
        return symbol
    rules = _RULES[symbol]
    state[0] = (state[0] * 1103515245 + 12345) & 0x7FFFFFFF
    if depth > 4:
        rule = rules[0]
    else:
        rule = rules[state[0] % len(rules)]
    return ''.join(_gen(part, state, depth + 1) for part in rule)


def random_input(seed):
    state = [(seed * 2246822519 + 97) & 0x7FFFFFFF]
    statements = [_gen('stmt', state, 0) for _ in range(6)]
    return ';'.join(statements) + ';', []
