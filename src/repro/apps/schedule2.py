"""schedule2: the second Siemens scheduler variant.

A round-robin scheduler with an admission ring buffer, driven by a
command stream (``1 prio`` submit, ``2`` dispatch, ``3`` suspend,
``4`` resume, ``5`` rotate, ``6`` complete, ``0`` end).

Five buggy versions:

* v1, v3, v4 -- detected through NT-paths (bugs in the unexercised
  suspend/resume/rotate handlers);
* v2 -- value-coverage miss (wrong only for ticket value 61);
* v5 -- **exercised-edge miss** (the paper's second miss mechanism,
  same as the undetected bc bug): the overflow-maintenance branch is
  evaluated from the very first command, so its non-taken edge's
  exercise counter reaches NTPathCounterThreshold while the system is
  still empty and the buggy invariant holds vacuously; by the time
  completions make the invariant violable, the counter blocks further
  exploration.
"""

from __future__ import annotations

from repro.apps.bugs import BugSpec, MissReason

NAME = 'schedule2'
TOOLS = ('assertions',)
IS_SIEMENS = True

_BASE_SOURCE = r'''
/* schedule2 -- round-robin scheduler with admission ring */

int cmds[220];
int cmd_len = 0;

int ring[16];           /* admission ring buffer of job ids */
int ring_head = 0;
int ring_tail = 0;
int pending = 0;

int suspended[16];
int suspended_len = 0;

int active = 0;         /* currently dispatched job, 0 = none */
int next_ticket = 1;
int submit_count = 0;
int complete_count = 0;
int completed_sync = 0; /* maintenance mirror of complete_count */
int suspend_events = 0;
int resume_events = 0;
int rotate_events = 0;
int drop_count = 0;

void read_commands() {
  int v = read_int();
  while (v != -1 && cmd_len < 218) {
    cmds[cmd_len] = v;
    cmd_len = cmd_len + 1;
    v = read_int();
  }
  cmds[cmd_len] = 0;
}

void ring_push(int id) {
  if (pending >= 15) {
    drop_count = drop_count + 1;
    return;
  }
  ring[ring_tail] = id;
  ring_tail = (ring_tail + 1) % 16;
  pending = pending + 1;
}

int ring_pop() {
  int id = ring[ring_head];
  ring_head = (ring_head + 1) % 16;
  pending = pending - 1;
  return id;
}

/* Periodic maintenance, run before every command. */
void maintenance() {
  if (pending > 8) {
    /*V5*/
    completed_sync = complete_count;
    assert(completed_sync >= complete_count, "SCH2_V5_GUARD");
    /*END5*/
  }
}

void cmd_submit(int prio) {
  int ticket = next_ticket;
  next_ticket = next_ticket + 1;
  submit_count = submit_count + 1;
  /*V2*/
  ring_push(ticket);
  /*END2*/
}

void cmd_dispatch() {
  if (active != 0) {
    ring_push(active);
    active = 0;
  }
  if (pending > 0) {
    active = ring_pop();
  }
}

void cmd_suspend() {
  /*V1*/
  suspend_events = suspend_events + 1;
  assert(suspend_events <= submit_count + 1, "SCH2_V1_GUARD");
  /*END1*/
  if (active != 0 && suspended_len < 15) {
    suspended[suspended_len] = active;
    suspended_len = suspended_len + 1;
    active = 0;
  }
}

void cmd_resume() {
  /*V3*/
  resume_events = resume_events + 1;
  assert(resume_events <= submit_count + 1, "SCH2_V3_GUARD");
  /*END3*/
  if (suspended_len > 0) {
    suspended_len = suspended_len - 1;
    ring_push(suspended[suspended_len]);
  }
}

void cmd_rotate() {
  /*V4*/
  rotate_events = rotate_events + 1;
  assert(rotate_events <= submit_count + 1, "SCH2_V4_GUARD");
  /*END4*/
  if (pending > 1) {
    int id = ring_pop();
    ring_push(id);
  }
}

void cmd_complete() {
  if (active != 0) {
    complete_count = complete_count + 1;
    active = 0;
  }
}

void run_commands() {
  int pos = 0;
  while (pos < cmd_len) {
    int cmd = cmds[pos];
    pos = pos + 1;
    maintenance();
    if (cmd == 0) { return; }
    if (cmd == 1) {
      int prio = cmds[pos];
      pos = pos + 1;
      cmd_submit(prio);
    }
    else if (cmd == 2) { cmd_dispatch(); }
    else if (cmd == 3) { cmd_suspend(); }
    else if (cmd == 4) { cmd_resume(); }
    else if (cmd == 5) { cmd_rotate(); }
    else if (cmd == 6) { cmd_complete(); }
  }
}

int main() {
  read_commands();
  run_commands();
  print_int(submit_count);
  print_int(complete_count);
  print_int(pending);
  print_int(suspended_len);
  print_int(drop_count);
  return 0;
}
'''

_BUG_PATCHES = {
    1: (
        '''suspend_events = suspend_events + 1;
  assert(suspend_events <= submit_count + 1, "SCH2_V1_GUARD");''',
        '''suspend_events = suspend_events + submit_count + 2;
  assert(suspend_events <= submit_count + 1, "SCH2_V1");''',
    ),
    # v2: value-coverage miss -- the admission logic mishandles only
    # ticket 61; tickets are sequential and the run issues far fewer.
    2: (
        '''ring_push(ticket);
  /*END2*/''',
        '''ring_push(ticket);
  assert(ticket != 61, "SCH2_V2");
  /*END2*/''',
    ),
    3: (
        '''resume_events = resume_events + 1;
  assert(resume_events <= submit_count + 1, "SCH2_V3_GUARD");''',
        '''resume_events = resume_events + submit_count + 2;
  assert(resume_events <= submit_count + 1, "SCH2_V3");''',
    ),
    4: (
        '''rotate_events = rotate_events + 1;
  assert(rotate_events <= submit_count + 1, "SCH2_V4_GUARD");''',
        '''rotate_events = rotate_events + submit_count + 2;
  assert(rotate_events <= submit_count + 1, "SCH2_V4");''',
    ),
    # v5: exercised-edge miss -- the maintenance refresh forgets the
    # real counter and adds a constant instead.  Harmless while no job
    # has completed (the first five NT explorations), violable only
    # later, when the exercise counter already blocks exploration.
    5: (
        '''completed_sync = complete_count;
    assert(completed_sync >= complete_count, "SCH2_V5_GUARD");''',
        '''completed_sync = completed_sync + 2;
    assert(completed_sync >= complete_count, "SCH2_V5");''',
    ),
}

VERSIONS = {
    1: [BugSpec('sch2_v1', NAME, True, assert_id='SCH2_V1',
                description='suspend handler inflates suspend_events')],
    2: [BugSpec('sch2_v2', NAME, False,
                miss_reason=MissReason.VALUE_COVERAGE,
                assert_id='SCH2_V2',
                description='admission wrong only for ticket 61')],
    3: [BugSpec('sch2_v3', NAME, True, assert_id='SCH2_V3',
                description='resume handler inflates resume_events')],
    4: [BugSpec('sch2_v4', NAME, True, assert_id='SCH2_V4',
                description='rotate handler inflates rotate_events')],
    5: [BugSpec('sch2_v5', NAME, False,
                miss_reason=MissReason.EXERCISED_EDGE,
                assert_id='SCH2_V5',
                description='maintenance refresh drifts from '
                            'complete_count; only violable after '
                            'completions, when the branch counter '
                            'already saturated')],
}


def make_source(version=0):
    source = _BASE_SOURCE
    if version:
        if version not in _BUG_PATCHES:
            raise ValueError('schedule2 has no version %r' % version)
        correct, buggy = _BUG_PATCHES[version]
        if correct not in source:
            raise AssertionError('patch anchor missing for v%d' % version)
        source = source.replace(correct, buggy)
    return source


def default_input():
    """Submit/dispatch/complete workload; suspend, resume and rotate
    never appear.  Completions only start after several commands, so
    the maintenance branch saturates its counter while the system is
    still empty (the v5 mechanism)."""
    ints = []
    for prio in (1, 0, 2, 1, 2, 0, 1, 1):
        ints.extend([1, prio, 2])   # submit, dispatch
    for _ in range(8):
        ints.extend([6, 2])         # complete, dispatch next
    ints.append(0)
    return '', ints


def random_input(seed):
    state = (seed * 16807 + 11) & 0x7FFFFFFF
    ints = []
    for _ in range(36):
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        choice = state % 6
        if choice < 2:
            ints.extend([1, state % 3])
        elif choice < 4:
            ints.append(2)
        else:
            ints.append(6)
    ints.append(0)
    return '', ints
