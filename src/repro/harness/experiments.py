"""Experiment drivers: one function per table/figure of the paper.

Every function returns an
:class:`~repro.harness.reporting.ExperimentResult` whose rows mirror
the rows/series the paper reports; the benchmark harness prints them
and EXPERIMENTS.md records paper-vs-measured.  DESIGN.md Section 4 maps
experiment ids to paper artifacts.

The heavy drivers (``run_fig7``, ``run_fig8``, ``run_fig9``,
``run_table6``) describe their simulations as
:class:`~repro.jobs.spec.JobSpec` batches and accept an optional
``pool`` (a :class:`~repro.jobs.pool.JobPool`); with ``pool=None``
every job runs in-process.  Pooled and serial execution are required to
produce identical tables (DESIGN.md).
"""

from __future__ import annotations

from repro.apps.bugs import classify_reports
from repro.apps.registry import (BUGGY_APP_NAMES, WORKLOAD_APP_NAMES,
                                 get_app, total_tested_bugs)
from repro.core.config import Mode, PathExpanderConfig
from repro.core.result import NTPathTermination
from repro.core.runner import make_detector, run_job, run_program
from repro.harness.reporting import ExperimentResult, percent
from repro.jobs.spec import JobSpec
from repro.workloads.inputs import CUMULATIVE_APP_NAMES, input_suite

# Memory-bug applications and the versions carrying their bugs,
# evaluated with both CCured and iWatcher (Table 3).
MEMORY_BUG_TARGETS = (('go_app', 0), ('bc_calc', 0), ('man_fmt', 0),
                      ('print_tokens2', 10))
MEMORY_TOOLS = ('ccured', 'iwatcher')


def _run_app(app, program, detector, mode=Mode.STANDARD, inputs=None,
             **overrides):
    text, ints = inputs if inputs is not None else app.default_input()
    config = app.make_config(mode=mode, **overrides)
    return run_program(program, detector=make_detector(detector),
                       config=config, text_input=text, int_input=ints)


def _app_job(app_name, detector, mode=Mode.STANDARD, version=0,
             inputs=None, **overrides):
    """Describe one ``_run_app``-equivalent run as a cacheable spec."""
    app = get_app(app_name)
    text, ints = inputs if inputs is not None else app.default_input()
    return JobSpec.for_app(app_name, version=version, mode=mode,
                           detector=detector,
                           config_overrides=overrides,
                           text_input=text, int_input=ints)


def _run_jobs(pool, specs):
    """Resolve a spec batch through a JobPool, or in-process."""
    if pool is not None:
        return pool.run(specs)
    return [run_job(spec) for spec in specs]


# ---------------------------------------------------------------------
# Table 2: machine parameters (configuration inventory)

def run_table2():
    config = PathExpanderConfig()
    rows = [
        ('spawn overhead', '%d cycles' % config.spawn_overhead),
        ('squash overhead', '%d cycles' % config.squash_overhead),
        ('L1 cache', '%dKB, %d-way, %dB/line, %d cycles'
         % (config.l1_size_bytes // 1024, config.l1_ways,
            config.l1_line_bytes, config.l1_hit_latency)),
        ('L2 latency', '%d cycles' % config.l2_hit_latency),
        ('BTB', '%d entries, %d-way' % (config.btb_entries,
                                        config.btb_ways)),
        ('cores (CMP option)', str(config.num_cores)),
        ('NTPathCounterThreshold', str(config.nt_counter_threshold)),
        ('MaxNTPathLength', '%d (100 for Siemens apps)'
         % config.max_nt_path_length),
        ('MaxNumNTPaths', str(config.max_num_nt_paths)),
        ('CounterResetInterval', '%d instructions'
         % config.counter_reset_interval),
    ]
    return ExperimentResult(
        'table2', 'Simulated machine and PathExpander parameters',
        ['parameter', 'value'], rows,
        notes=['mirrors Table 2 and the Section 6.3 defaults'])


# ---------------------------------------------------------------------
# Table 3: applications and bugs

def run_table3():
    rows = []
    for name in BUGGY_APP_NAMES:
        app = get_app(name)
        source_lines = sum(
            len(app.source(version).splitlines())
            for version in (sorted(app.versions) or [0])[:1])
        bug_count = sum(
            (2 if bug.is_memory_bug else 1)
            for bugs in app.versions.values() for bug in bugs)
        tools = '+'.join(app.tools)
        rows.append((name, source_lines, bug_count, tools))
    rows.append(('TOTAL', '', total_tested_bugs(), ''))
    return ExperimentResult(
        'table3', 'Applications and tested bugs',
        ['application', 'source lines', 'tested bugs', 'tools'], rows,
        notes=['paper: 38 tested bugs across seven buggy applications',
               'memory bugs count once per memory tool '
               '(CCured and iWatcher)'])


# ---------------------------------------------------------------------
# Table 4: bug detection, baseline vs PathExpander

def _memory_bug_rows(mode=Mode.STANDARD):
    rows = []
    for tool in MEMORY_TOOLS:
        for app_name, version in MEMORY_BUG_TARGETS:
            app = get_app(app_name)
            program = app.compile(version)
            bugs = app.bugs(version)
            base = _run_app(app, program, tool, mode=Mode.BASELINE)
            expanded = _run_app(app, program, tool, mode=mode)
            base_found, _ = classify_reports(base.reports, bugs)
            pe_found, _ = classify_reports(expanded.reports, bugs)
            rows.append((tool, app_name, version, len(bugs),
                         len(base_found), len(pe_found)))
    return rows


def _assertion_bug_rows(mode=Mode.STANDARD):
    rows = []
    for app_name in BUGGY_APP_NAMES:
        app = get_app(app_name)
        for version in app.assertion_versions:
            program = app.compile(version)
            bugs = app.bugs(version)
            base = _run_app(app, program, 'assertions',
                            mode=Mode.BASELINE)
            expanded = _run_app(app, program, 'assertions', mode=mode)
            base_found, _ = classify_reports(base.reports, bugs)
            pe_found, _ = classify_reports(expanded.reports, bugs)
            rows.append((app_name, version, len(bugs), len(base_found),
                         len(pe_found)))
    return rows


def run_table4(mode=Mode.STANDARD):
    rows = []
    totals = {'tested': 0, 'baseline': 0, 'pathexpander': 0}

    memory_rows = _memory_bug_rows(mode)
    grouped = {}
    for tool, app_name, _version, tested, base, found in memory_rows:
        key = (tool, app_name)
        agg = grouped.setdefault(key, [0, 0, 0])
        agg[0] += tested
        agg[1] += base
        agg[2] += found
    for (tool, app_name), (tested, base, found) in grouped.items():
        rows.append((tool, app_name, tested, base, found))
        totals['tested'] += tested
        totals['baseline'] += base
        totals['pathexpander'] += found

    assertion_totals = {}
    for app_name, _version, tested, base, found in \
            _assertion_bug_rows(mode):
        agg = assertion_totals.setdefault(app_name, [0, 0, 0])
        agg[0] += tested
        agg[1] += base
        agg[2] += found
    for app_name, (tested, base, found) in assertion_totals.items():
        rows.append(('assertions', app_name, tested, base, found))
        totals['tested'] += tested
        totals['baseline'] += base
        totals['pathexpander'] += found

    rows.append(('TOTAL', '', totals['tested'], totals['baseline'],
                 totals['pathexpander']))
    return ExperimentResult(
        'table4', 'Bug detection results (baseline vs PathExpander)',
        ['tool', 'application', '#bugs tested', 'baseline detected',
         'PathExpander detected'], rows,
        notes=['paper: 38 tested, 0 detected at baseline, 21 with '
               'PathExpander',
               'paper constraints: print_tokens 5/7, bc 1/2, schedule '
               'v1&v3 missed (value coverage), print_tokens2 v3 missed '
               '(inconsistency), print_tokens2 v6 and go missed '
               '(special input)'])


# ---------------------------------------------------------------------
# Table 5: consistency fixing -- false positives and detections

def run_table5():
    rows = []
    fp_before_total = 0
    fp_after_total = 0
    for tool in MEMORY_TOOLS:
        for app_name, version in MEMORY_BUG_TARGETS:
            app = get_app(app_name)
            program = app.compile(version)
            bugs = app.bugs(version)
            unfixed = _run_app(app, program, tool,
                               variable_fixing=False)
            fixed = _run_app(app, program, tool, variable_fixing=True)
            found_before, fps_before = classify_reports(
                unfixed.reports, bugs)
            found_after, fps_after = classify_reports(
                fixed.reports, bugs)
            fp_before_total += len(fps_before)
            fp_after_total += len(fps_after)
            rows.append((tool, app_name, len(fps_before),
                         len(fps_after), len(found_before),
                         len(found_after)))
    count = len(rows)
    rows.append(('AVERAGE', '', round(fp_before_total / count, 2),
                 round(fp_after_total / count, 2), '', ''))
    return ExperimentResult(
        'table5', 'Effect of key-variable consistency fixing',
        ['tool', 'application', 'FP before fix', 'FP after fix',
         'bugs before fix', 'bugs after fix'], rows,
        notes=['paper: false positives drop from 13 to 4 on average; '
               'the man bug is detected only after fixing'])


# ---------------------------------------------------------------------
# Figure 3: crash-latency / unsafe-latency CDFs

FIG3_APPS = ('go_app', 'gzip_app', 'vpr_app')
FIG3_BUCKETS = (10, 50, 100, 200, 500, 999)


def run_fig3(apps=FIG3_APPS):
    rows = []
    details = {}
    for app_name in apps:
        app = get_app(app_name)
        program = app.compile(0)
        # Section 3.2 setup: spawn at every zero-count non-taken edge,
        # no variable fixing, run to the 1000-instruction threshold.
        result = _run_app(app, program, 'none',
                          nt_counter_threshold=1, variable_fixing=False,
                          max_nt_path_length=1000,
                          collect_nt_details=True)
        records = result.nt_details
        details[app_name] = records
        total = max(len(records), 1)
        stopped = [r for r in records
                   if r.reason in (NTPathTermination.CRASH,
                                   NTPathTermination.UNSAFE)]
        crash = [r for r in stopped
                 if r.reason == NTPathTermination.CRASH]
        row = [app_name, len(records)]
        for bucket in FIG3_BUCKETS:
            ratio = sum(1 for r in stopped if r.length <= bucket) / total
            row.append(percent(ratio))
        survived = 1.0 - len(stopped) / total
        row.append(percent(survived))
        row.append(percent(len(crash) / total))
        rows.append(row)
    headers = ['application', '#NT-paths'] + [
        'stopped<=%d' % b for b in FIG3_BUCKETS] + [
        'survive>=1000', 'crash ratio']
    return ExperimentResult(
        'fig3', 'Crash-latency and unsafe-latency distribution',
        headers, rows,
        notes=['paper: 65-99% of NT-paths survive 1000 instructions; '
               'go stops earliest in only ~0.5% of paths; gzip/vpr '
               'stop mostly on unsafe events']), details


# ---------------------------------------------------------------------
# Coverage, single input (Figure 7 analogue)

def run_fig7(apps=WORKLOAD_APP_NAMES, mode=Mode.STANDARD, pool=None):
    specs = [_app_job(app_name, 'none', mode=mode) for app_name in apps]
    results = _run_jobs(pool, specs)
    rows = []
    base_sum = 0.0
    total_sum = 0.0
    for app_name, result in zip(apps, results):
        base_sum += result.baseline_coverage
        total_sum += result.total_coverage
        rows.append((app_name, result.total_edges,
                     percent(result.baseline_coverage),
                     percent(result.total_coverage),
                     result.nt_spawned))
    count = len(apps)
    rows.append(('AVERAGE', '', percent(base_sum / count),
                 percent(total_sum / count), ''))
    return ExperimentResult(
        'fig7', 'Branch coverage of a single monitored run',
        ['application', '#edges', 'baseline coverage',
         'PathExpander coverage', 'NT-paths'], rows,
        notes=['paper: coverage rises from 40% to 65% on average'])


# ---------------------------------------------------------------------
# Cumulative coverage over multiple inputs (Figure 8 analogue)

def run_fig8(apps=CUMULATIVE_APP_NAMES, runs=50, pool=None):
    specs = []
    spans = []
    for app_name in apps:
        start = len(specs)
        for inputs in input_suite(app_name, count=runs):
            specs.append(_app_job(app_name, 'none', inputs=inputs))
        spans.append((app_name, start, len(specs)))
    results = _run_jobs(pool, specs)
    rows = []
    base_sum = 0.0
    total_sum = 0.0
    for app_name, start, stop in spans:
        base_cov, total_cov = _cumulative_coverage(results[start:stop])
        base_sum += base_cov
        total_sum += total_cov
        rows.append((app_name, runs, percent(base_cov),
                     percent(total_cov),
                     percent(total_cov - base_cov)))
    count = len(apps)
    rows.append(('AVERAGE', '', percent(base_sum / count),
                 percent(total_sum / count),
                 percent((total_sum - base_sum) / count)))
    return ExperimentResult(
        'fig8', 'Cumulative branch coverage over multiple inputs',
        ['application', '#inputs', 'baseline cumulative',
         'PathExpander cumulative', 'improvement'], rows,
        notes=['paper: cumulative coverage still improves by ~19% '
               'on average'])


def _cumulative_coverage(results):
    """Union per-run edge sets (Section 7 multi-input experiment)."""
    baseline_edges = set()
    all_edges = set()
    total = 1
    for result in results:
        baseline_edges |= result.taken_edges
        all_edges |= result.covered_edges
        total = max(result.total_edges, 1)
    return len(baseline_edges) / total, len(all_edges) / total


# ---------------------------------------------------------------------
# Overhead (Figure 9 analogue)

FIG9_MODES = (Mode.BASELINE, Mode.STANDARD, Mode.CMP)


def run_fig9(apps=WORKLOAD_APP_NAMES, detector='ccured', pool=None):
    specs = [_app_job(app_name, detector, mode=mode)
             for app_name in apps for mode in FIG9_MODES]
    results = _run_jobs(pool, specs)
    rows = []
    worst_cmp = 0.0
    for index, app_name in enumerate(apps):
        base, std, cmp_ = results[index * len(FIG9_MODES):
                                  (index + 1) * len(FIG9_MODES)]
        std_overhead = std.overhead_vs(base)
        cmp_overhead = cmp_.overhead_vs(base)
        worst_cmp = max(worst_cmp, cmp_overhead)
        rows.append((app_name, base.cycles, percent(std_overhead),
                     percent(cmp_overhead), std.nt_spawned,
                     cmp_.nt_skipped_busy))
    rows.append(('WORST CMP', '', '', percent(worst_cmp), '', ''))
    return ExperimentResult(
        'fig9', 'Execution overhead of PathExpander',
        ['application', 'baseline cycles', 'standard overhead',
         'CMP overhead', 'NT-paths', 'CMP skipped (busy)'], rows,
        notes=['paper: overhead below 9.9% with the CMP optimisation; '
               'hundreds to thousands of NT-paths per run'])


# ---------------------------------------------------------------------
# Hardware vs software implementation (Section 7.5)

TABLE6_MODES = (Mode.BASELINE, Mode.CMP, Mode.SOFTWARE)


def run_table6(apps=('print_tokens2', 'schedule', 'bc_calc', 'gzip_app'),
               detector='ccured', pool=None):
    import math
    specs = [_app_job(app_name, detector, mode=mode)
             for app_name in apps for mode in TABLE6_MODES]
    results = _run_jobs(pool, specs)
    rows = []
    ratios = []
    for index, app_name in enumerate(apps):
        base, cmp_, sw = results[index * len(TABLE6_MODES):
                                 (index + 1) * len(TABLE6_MODES)]
        native = base.cycles
        hw_overhead = max(cmp_.overhead_vs(base), 1e-6)
        sw_overhead = (sw.cycles - native) / native
        ratio = sw_overhead / hw_overhead
        ratios.append(ratio)
        rows.append((app_name, percent(hw_overhead),
                     '%.0fx' % sw_overhead, '%.0f' % ratio,
                     '%.1f' % math.log10(max(ratio, 1.0))))
    geo = 1.0
    for ratio in ratios:
        geo *= max(ratio, 1.0)
    geo **= 1.0 / len(ratios)
    rows.append(('GEOMEAN', '', '', '%.0f' % geo,
                 '%.1f' % math.log10(max(geo, 1.0))))
    return ExperimentResult(
        'table6', 'Hardware vs software PathExpander overhead',
        ['application', 'CMP overhead', 'software overhead',
         'overhead ratio', 'orders of magnitude'], rows,
        notes=['paper: hardware is 3-4 orders of magnitude cheaper '
               'than the pure-software implementation'])


# ---------------------------------------------------------------------
# Parameter sensitivity (Section 7.6)

def run_fig10(app_name='print_tokens2', detector='none'):
    app = get_app(app_name)
    program = app.compile(0)
    rows = []
    base = _run_app(app, program, detector, mode=Mode.BASELINE)
    for max_len in (10, 50, 100, 500, 1000):
        result = _run_app(app, program, detector,
                          max_nt_path_length=max_len)
        rows.append(('MaxNTPathLength=%d' % max_len,
                     percent(result.total_coverage),
                     percent(result.overhead_vs(base)),
                     result.nt_spawned))
    for threshold in (1, 2, 5, 10, 15):
        result = _run_app(app, program, detector,
                          nt_counter_threshold=threshold)
        rows.append(('NTPathCounterThreshold=%d' % threshold,
                     percent(result.total_coverage),
                     percent(result.overhead_vs(base)),
                     result.nt_spawned))
    for max_paths in (1, 2, 4, 8, 16, 32):
        result = _run_app(app, program, detector, mode=Mode.CMP,
                          max_num_nt_paths=max_paths)
        rows.append(('MaxNumNTPaths=%d' % max_paths,
                     percent(result.total_coverage),
                     percent(result.overhead_vs(base)),
                     result.nt_spawned))
    return ExperimentResult(
        'fig10', 'Parameter sensitivity (%s)' % app_name,
        ['setting', 'coverage', 'overhead', 'NT-paths'], rows,
        notes=['Section 7.6: longer NT-paths and higher thresholds '
               'increase coverage at higher overhead; more outstanding '
               'NT-paths recover spawns skipped while busy'])


# ---------------------------------------------------------------------
# Ablation: exploring non-taken edges from NT-paths (Section 4.2(3))

def run_ablation_nt_from_nt(app_name='gzip_app'):
    app = get_app(app_name)
    program = app.compile(0)
    rows = []
    for label, flag in (('follow taken edges only', False),
                        ('explore non-taken edges from NT-paths', True)):
        result = _run_app(app, program, 'none',
                          nt_counter_threshold=1, variable_fixing=False,
                          max_nt_path_length=1000,
                          collect_nt_details=True,
                          explore_nt_from_nt=flag)
        total = max(result.nt_spawned, 1)
        crashes = sum(1 for r in result.nt_details
                      if r.reason == NTPathTermination.CRASH
                      and r.length <= 1000)
        rows.append((label, percent(result.total_coverage),
                     percent(crashes / total), result.nt_spawned))
    return ExperimentResult(
        'abl1', 'Design choice: NT-paths follow only taken edges',
        ['policy', 'coverage', 'crash ratio (<=1000 instr)',
         'NT-paths'], rows,
        notes=['paper (164.gzip): exploring non-taken edges from '
               'NT-paths adds ~2% coverage but raises the early-crash '
               'ratio from 5% to 16%'])


# ---------------------------------------------------------------------
# Extension 1 (paper future work, Section 3.2): OS support that
# sandboxes unsafe events.  The paper predicts "more than 90% of
# NT-Paths may potentially execute up to 1000 instructions".

def run_ext_os_sandbox(apps=FIG3_APPS):
    rows = []
    for app_name in apps:
        app = get_app(app_name)
        program = app.compile(0)
        survivals = []
        for sandboxed in (False, True):
            result = _run_app(app, program, 'none',
                              nt_counter_threshold=1,
                              variable_fixing=False,
                              max_nt_path_length=1000,
                              collect_nt_details=True,
                              sandbox_unsafe_events=sandboxed)
            total = max(result.nt_spawned, 1)
            stopped = sum(
                1 for record in result.nt_details
                if record.reason in (NTPathTermination.CRASH,
                                     NTPathTermination.UNSAFE))
            survivals.append(1.0 - stopped / total)
        rows.append((app_name, percent(survivals[0]),
                     percent(survivals[1])))
    return ExperimentResult(
        'ext1', 'OS sandboxing of unsafe events (paper future work)',
        ['application', 'survival (hw only)',
         'survival (with OS sandbox)'], rows,
        notes=['paper prediction: with OS support, more than 90% of '
               'NT-paths could execute up to 1000 instructions'])


# ---------------------------------------------------------------------
# Extension 2 (paper Section 7.1, miss mechanism 2): random factor in
# NT-path selection recovers bugs whose entry edge saturated its
# exercise counter before the bug-triggering state arose.

EXERCISED_EDGE_TARGETS = (('bc_calc', 0, 'ccured', 'bc_flush'),
                          ('schedule2', 5, 'assertions', 'sch2_v5'))


def run_ext_random_selection(rate=0.3, seed=0xC0FFEE):
    rows = []
    for app_name, version, tool, bug_id in EXERCISED_EDGE_TARGETS:
        app = get_app(app_name)
        program = app.compile(version)
        bugs = [bug for bug in app.bugs(version)
                if bug.bug_id == bug_id]
        plain = _run_app(app, program, tool)
        # The seed reaches NTPathSelector via the config, so a given
        # (rate, seed) pair is reproducible and hashes into a stable
        # JobSpec key.
        randomized = _run_app(app, program, tool,
                              selection_random_rate=rate,
                              selection_random_seed=seed)
        found_plain, _ = classify_reports(plain.reports, bugs)
        found_random, _ = classify_reports(randomized.reports, bugs)
        rows.append((bug_id, app_name,
                     'yes' if found_plain else 'no',
                     'yes' if found_random else 'no',
                     randomized.nt_spawned - plain.nt_spawned))
    return ExperimentResult(
        'ext2', 'Random factor in NT-path selection (rate=%.2f, '
        'seed=%#x)' % (rate, seed),
        ['bug', 'application', 'detected (counter only)',
         'detected (with random factor)', 'extra NT-paths'], rows,
        notes=['paper: "this problem can be addressed by adding random '
               'factor into PathExpander\'s NT-Path selection"'])


# ---------------------------------------------------------------------
# Validation: the CMP scheduling model against the detailed engine.
# The detailed engine interleaves cores cycle by cycle and implements
# the Fig. 6 segment/version protocol; detections and coverage must be
# identical, and both overhead estimates must stay under the paper's
# 9.9% bound.

def run_val_cmp_model(apps=('print_tokens2', 'schedule', 'bc_calc',
                            'man_fmt'), detector='ccured'):
    from repro.core.runner import run_detailed_cmp
    rows = []
    for app_name in apps:
        app = get_app(app_name)
        program = app.compile(0)
        text, ints = app.default_input()
        base = _run_app(app, program, detector, mode=Mode.BASELINE)
        model = _run_app(app, program, detector, mode=Mode.CMP)
        detailed = run_detailed_cmp(
            program, detector=make_detector(detector),
            config=app.make_config(mode=Mode.CMP),
            text_input=text, int_input=ints)
        same_bugs = ({r.site_key for r in model.reports}
                     == {r.site_key for r in detailed.reports})
        rows.append((app_name, percent(model.overhead_vs(base)),
                     percent(detailed.overhead_vs(base)),
                     'yes' if same_bugs else 'NO',
                     model.nt_spawned, detailed.nt_spawned))
    return ExperimentResult(
        'val1', 'CMP scheduling model vs detailed engine',
        ['application', 'model overhead', 'detailed overhead',
         'same detections', 'NT-paths (model)', 'NT-paths (detailed)'],
        rows,
        notes=['the detailed engine simulates the Fig. 6 '
               'segment/version protocol with true core interleaving; '
               'both implementations must agree on detections and stay '
               'under the 9.9% bound'])
