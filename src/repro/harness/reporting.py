"""Plain-text table formatting for experiment results."""

from __future__ import annotations


class ExperimentResult:
    """One regenerated table/figure: rows plus paper-target notes."""

    def __init__(self, exp_id, title, headers, rows, notes=None):
        self.exp_id = exp_id
        self.title = title
        self.headers = list(headers)
        self.rows = [list(row) for row in rows]
        self.notes = list(notes or [])

    def format(self):
        lines = ['%s: %s' % (self.exp_id, self.title)]
        table = [self.headers] + [
            [_cell(value) for value in row] for row in self.rows]
        widths = [max(len(row[col]) for row in table)
                  for col in range(len(self.headers))]
        lines.append('  '.join(
            header.ljust(width)
            for header, width in zip(self.headers, widths)))
        lines.append('  '.join('-' * width for width in widths))
        for row in table[1:]:
            lines.append('  '.join(
                value.ljust(width) for value, width in zip(row, widths)))
        for note in self.notes:
            lines.append('  # %s' % note)
        return '\n'.join(lines)

    def row_dict(self, key_column=0):
        return {row[key_column]: row for row in self.rows}

    def to_dict(self):
        """JSON-friendly form (``repro ... --json``)."""
        return {'id': self.exp_id, 'title': self.title,
                'headers': list(self.headers),
                'rows': [list(row) for row in self.rows],
                'notes': list(self.notes)}

    def __repr__(self):
        return '<ExperimentResult %s: %d rows>' % (self.exp_id,
                                                   len(self.rows))


def _cell(value):
    if isinstance(value, float):
        return '%.2f' % value
    return str(value)


def percent(value):
    return '%.1f%%' % (100.0 * value)
