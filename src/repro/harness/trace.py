"""NT-path event tracing: a debugging view of a PathExpander run.

Wraps a :class:`~repro.core.engine.PathExpanderEngine` run and collects
a human-readable event log -- every spawn, its forced edge, its
termination, and every detector report -- which is what you want when
figuring out why a bug was (or was not) exposed.
"""

from __future__ import annotations

from repro.core.config import PathExpanderConfig
from repro.core.engine import PathExpanderEngine
from repro.cpu.syscalls import IOContext


class TraceEvent:
    __slots__ = ('kind', 'detail', 'instret')

    def __init__(self, kind, detail, instret):
        self.kind = kind
        self.detail = detail
        self.instret = instret

    def __repr__(self):
        return '[%8d] %-8s %s' % (self.instret, self.kind, self.detail)


class TracedRun:
    """Runs a program and keeps the NT-path event log."""

    def __init__(self, program, detector=None, config=None,
                 text_input='', int_input=None):
        config = config or PathExpanderConfig(collect_nt_details=True)
        if not config.collect_nt_details:
            config = config.replace(collect_nt_details=True)
        io = IOContext(text_input=text_input, int_input=int_input)
        self.engine = PathExpanderEngine(program, detector=detector,
                                         config=config, io=io)
        self.program = program
        self.events = []
        self.result = None

    def run(self):
        result = self.engine.run()
        self.result = result
        for record in result.nt_details:
            edge = 'taken' if record.edge_taken else 'fall-through'
            self.events.append(TraceEvent(
                'nt-path',
                'branch @%d (%s), forced %s edge, ran %d instrs, %s'
                % (record.branch_addr,
                   self.program.location(record.branch_addr), edge,
                   record.length, record.reason),
                record.spawn_instret))
        for report in result.reports:
            where = 'NT-path' if report.in_nt_path else 'taken path'
            self.events.append(TraceEvent(
                'report', '%s at %s (%s)' % (report.kind,
                                             report.location, where),
                -1))
        return result

    def format(self, limit=None):
        lines = ['trace of %s (%s, detector=%s)'
                 % (self.result.program_name, self.result.mode,
                    self.result.detector_name)]
        events = self.events if limit is None else self.events[:limit]
        lines.extend(repr(event) for event in events)
        if limit is not None and len(self.events) > limit:
            lines.append('... (%d more events)'
                         % (len(self.events) - limit))
        summary = self.result
        lines.append('%d NT-paths, coverage %.1f%% -> %.1f%%, '
                     '%d report(s)'
                     % (summary.nt_spawned,
                        100 * summary.baseline_coverage,
                        100 * summary.total_coverage,
                        len(summary.reports)))
        return '\n'.join(lines)
