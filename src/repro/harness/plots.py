"""ASCII plotting for experiment results.

Renders the Figure 3 cumulative-distribution curves and coverage bar
charts as terminal text, so the paper's figures can be eyeballed
directly from the CLI (``python -m repro experiment fig3``) without any
plotting dependency.
"""

from __future__ import annotations

from repro.core.result import NTPathTermination

_STOP_REASONS = (NTPathTermination.CRASH, NTPathTermination.UNSAFE)


def cdf_points(records, max_x=1000, steps=50):
    """Stopped-NT-path-ratio CDF from NT-path records.

    Returns ``[(x, stopped_ratio)]`` -- the fraction of NT-paths that
    crashed or hit an unsafe event within ``x`` executed instructions,
    exactly the y-axis of the paper's Figure 3.
    """
    total = max(len(records), 1)
    stop_lengths = sorted(record.length for record in records
                          if record.reason in _STOP_REASONS)
    points = []
    for step in range(steps + 1):
        x = max_x * step // steps
        stopped = 0
        for length in stop_lengths:
            if length > x:
                break
            stopped += 1
        points.append((x, stopped / total))
    return points


def ascii_curve(points, height=12, width=None, y_max=None,
                title='', y_label='ratio'):
    """One CDF curve as an ASCII chart."""
    width = width or len(points)
    if y_max is None:
        y_max = max((value for _x, value in points), default=0.0)
        y_max = max(y_max, 0.05)
    xs = [x for x, _v in points]
    values = [value for _x, value in points]
    # resample onto the requested width
    columns = []
    for col in range(width):
        index = col * (len(values) - 1) // max(width - 1, 1)
        columns.append(values[index])
    lines = []
    if title:
        lines.append(title)
    for row in range(height, -1, -1):
        threshold = y_max * row / height
        cells = []
        for value in columns:
            cells.append('*' if value >= threshold and value > 0
                         else ' ')
        label = '%5.2f |' % threshold if row % 3 == 0 else '      |'
        lines.append(label + ''.join(cells))
    lines.append('      +' + '-' * width)
    lines.append('       0%s%d (instructions)'
                 % (' ' * (width - len(str(xs[-1])) - 1), xs[-1]))
    return '\n'.join(lines)


def fig3_plot(details, max_x=1000, width=60):
    """The full Figure 3 as stacked ASCII charts."""
    charts = []
    for app_name, records in details.items():
        points = cdf_points(records, max_x=max_x, steps=width)
        stopped = sum(1 for r in records if r.reason in _STOP_REASONS)
        title = ('%s -- stopped NT-path ratio (%d of %d stop early)'
                 % (app_name, stopped, len(records)))
        charts.append(ascii_curve(points, title=title, width=width,
                                  y_max=1.0))
    return '\n\n'.join(charts)


def coverage_bars(rows, width=40):
    """Baseline-vs-PathExpander coverage bars from fig7-style rows."""
    lines = []
    for row in rows:
        name = row[0]
        if name in ('AVERAGE',):
            lines.append('')
        try:
            base = float(str(row[2]).rstrip('%'))
            total = float(str(row[3]).rstrip('%'))
        except (ValueError, IndexError):
            continue
        base_cols = int(round(base / 100 * width))
        extra_cols = max(int(round(total / 100 * width)) - base_cols, 0)
        bar = '#' * base_cols + '+' * extra_cols
        bar = bar.ljust(width, '.')
        lines.append('%-14s [%s] %5.1f%% -> %5.1f%%'
                     % (name, bar, base, total))
    lines.append('%14s  %s' % ('', "'#' baseline, '+' added by "
                                   "NT-paths"))
    return '\n'.join(lines)
