"""Input suites for the multi-input (cumulative coverage) experiments.

Section 6.3: the Siemens apps use 50 randomly chosen test cases each;
bc uses a production-rule random generator.  Every generator here is
deterministic in its seed so experiments are reproducible.
"""

from __future__ import annotations

from repro.apps.registry import get_app


def input_suite(app_name, count=50, base_seed=1):
    """``count`` deterministic inputs for an app, plus its default."""
    app = get_app(app_name)
    suite = [app.default_input()]
    for index in range(count - 1):
        suite.append(app.random_input(base_seed + index))
    return suite


# Apps whose multi-input experiment the paper ran: the four Siemens
# benchmarks (50 provided cases each) and bc (production-rule random
# generation).
CUMULATIVE_APP_NAMES = ('print_tokens', 'print_tokens2', 'schedule',
                        'schedule2', 'bc_calc')
