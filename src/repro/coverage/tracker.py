"""Branch-coverage measurement.

The paper's design targets *path* coverage but, like the paper
(Section 2), we report **branch coverage**: the fraction of a program's
static branch edges executed in the monitored run.  Edges executed
inside NT-paths count -- they are observed by the dynamic detector,
which is the point of PathExpander.
"""

from __future__ import annotations


class CoverageTracker:
    """Tracks executed branch edges for one program.

    Edges are stored internally as packed ints (``addr << 1 | taken``):
    the per-branch record on the hot path is then one shift-or and one
    set add, and the tuple keys the rest of the codebase consumes are
    only materialised at finalize time (:meth:`edge_sets` -- one pass,
    instead of the three separate unions the engines used to compute).
    """

    def __init__(self, program):
        self.program = program
        self.total_edges = program.num_edges
        self._taken = set()        # packed taken-path edges
        self._nt = set()           # packed NT-path edges

    def record_taken(self, branch_addr, taken):
        self._taken.add(branch_addr << 1 | taken)

    def record_nt(self, branch_addr, taken):
        self._nt.add(branch_addr << 1 | taken)

    def record(self, branch_addr, taken, in_nt_path):
        key = branch_addr << 1 | (1 if taken else 0)
        if in_nt_path:
            self._nt.add(key)
        else:
            self._taken.add(key)

    # ------------------------------------------------------------------

    @staticmethod
    def _decode(keys):
        return {(key >> 1, bool(key & 1)) for key in keys}

    def edge_sets(self):
        """``(taken_edges, covered_edges)`` as tuple-key sets.

        Computes the taken set and the taken|NT union exactly once;
        finalize code should consume both from this single call.
        """
        taken = self._decode(self._taken)
        covered = taken | self._decode(self._nt)
        return taken, covered

    @property
    def baseline_covered(self):
        """Edges the monitored run covered without PathExpander."""
        return len(self._taken)

    @property
    def total_covered(self):
        return len(self._taken | self._nt)

    @property
    def baseline_coverage(self):
        if self.total_edges == 0:
            return 0.0
        return self.baseline_covered / self.total_edges

    @property
    def total_coverage(self):
        if self.total_edges == 0:
            return 0.0
        return self.total_covered / self.total_edges

    @property
    def covered_edge_keys(self):
        return self._decode(self._taken | self._nt)

    @property
    def taken_edge_keys(self):
        return self._decode(self._taken)

    def merge_into(self, cumulative):
        """Union this run's edges into a :class:`CumulativeCoverage`."""
        cumulative.add(self._decode(self._taken), self._decode(self._nt))


class CumulativeCoverage:
    """Coverage accumulated over multiple inputs (Section 7 multi-input
    experiment: the union over 50 test cases)."""

    def __init__(self, program):
        self.total_edges = program.num_edges
        self._taken = set()
        self._all = set()
        self.runs = 0

    def add(self, taken_edges, nt_edges):
        self._taken |= taken_edges
        self._all |= taken_edges
        self._all |= nt_edges
        self.runs += 1

    @property
    def baseline_coverage(self):
        if self.total_edges == 0:
            return 0.0
        return len(self._taken) / self.total_edges

    @property
    def total_coverage(self):
        if self.total_edges == 0:
            return 0.0
        return len(self._all) / self.total_edges
