"""Branch-coverage measurement.

The paper's design targets *path* coverage but, like the paper
(Section 2), we report **branch coverage**: the fraction of a program's
static branch edges executed in the monitored run.  Edges executed
inside NT-paths count -- they are observed by the dynamic detector,
which is the point of PathExpander.
"""

from __future__ import annotations


class CoverageTracker:
    """Tracks executed branch edges for one program."""

    def __init__(self, program):
        self.program = program
        self.total_edges = program.num_edges
        self._taken_path_edges = set()
        self._nt_path_edges = set()

    def record(self, branch_addr, taken, in_nt_path):
        key = (branch_addr, taken)
        if in_nt_path:
            self._nt_path_edges.add(key)
        else:
            self._taken_path_edges.add(key)

    # ------------------------------------------------------------------

    @property
    def baseline_covered(self):
        """Edges the monitored run covered without PathExpander."""
        return len(self._taken_path_edges)

    @property
    def total_covered(self):
        return len(self._taken_path_edges | self._nt_path_edges)

    @property
    def baseline_coverage(self):
        if self.total_edges == 0:
            return 0.0
        return self.baseline_covered / self.total_edges

    @property
    def total_coverage(self):
        if self.total_edges == 0:
            return 0.0
        return self.total_covered / self.total_edges

    @property
    def covered_edge_keys(self):
        return self._taken_path_edges | self._nt_path_edges

    @property
    def taken_edge_keys(self):
        return set(self._taken_path_edges)

    def merge_into(self, cumulative):
        """Union this run's edges into a :class:`CumulativeCoverage`."""
        cumulative.add(self._taken_path_edges, self._nt_path_edges)


class CumulativeCoverage:
    """Coverage accumulated over multiple inputs (Section 7 multi-input
    experiment: the union over 50 test cases)."""

    def __init__(self, program):
        self.total_edges = program.num_edges
        self._taken = set()
        self._all = set()
        self.runs = 0

    def add(self, taken_edges, nt_edges):
        self._taken |= taken_edges
        self._all |= taken_edges
        self._all |= nt_edges
        self.runs += 1

    @property
    def baseline_coverage(self):
        if self.total_edges == 0:
            return 0.0
        return len(self._taken) / self.total_edges

    @property
    def total_coverage(self):
        if self.total_edges == 0:
            return 0.0
        return len(self._all) / self.total_edges
