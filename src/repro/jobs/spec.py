"""Frozen, content-addressed description of one simulation job.

A :class:`JobSpec` captures *everything* that determines a
:class:`~repro.core.result.RunResult`: the program (a registered app
version or raw MiniC source), the PathExpander mode, the detector, any
configuration overrides and the program input.  Its :attr:`key` is a
SHA-256 over the canonical JSON form, so two specs hash equal exactly
when they describe the same run — the property the on-disk result cache
relies on.  Hashes are stable across processes and interpreter
invocations (no dependence on ``PYTHONHASHSEED``).
"""

from __future__ import annotations

import hashlib
import json

from repro.core.config import Mode

# Override values must survive a JSON round-trip unchanged; anything
# fancier would make the content hash ambiguous.
_SCALAR_TYPES = (str, int, float, bool, type(None))


class JobSpec:
    """One simulation request, frozen after construction."""

    __slots__ = ('app', 'version', 'source', 'program_name', 'mode',
                 'detector', 'config_overrides', 'text_input',
                 'int_input', '_key')

    def __init__(self, app=None, version=0, source=None,
                 program_name='program', mode=Mode.STANDARD,
                 detector='none', config_overrides=None, text_input='',
                 int_input=()):
        if (app is None) == (source is None):
            raise ValueError('exactly one of app/source must be given')
        if mode not in Mode.ALL:
            raise ValueError('bad mode %r' % mode)
        overrides = dict(config_overrides or {})
        for name, value in overrides.items():
            if not isinstance(name, str) \
                    or not isinstance(value, _SCALAR_TYPES):
                raise TypeError(
                    'config override %r=%r is not a JSON scalar'
                    % (name, value))
        set_ = object.__setattr__
        set_(self, 'app', app)
        set_(self, 'version', int(version))
        set_(self, 'source', source)
        set_(self, 'program_name', program_name)
        set_(self, 'mode', mode)
        set_(self, 'detector', detector)
        set_(self, 'config_overrides',
             tuple(sorted(overrides.items())))
        set_(self, 'text_input', text_input)
        set_(self, 'int_input', tuple(int(v) for v in int_input or ()))
        set_(self, '_key', None)

    # -- frozenness ----------------------------------------------------

    def __setattr__(self, name, value):
        raise AttributeError('JobSpec is frozen')

    def __delattr__(self, name):
        raise AttributeError('JobSpec is frozen')

    # -- construction helpers ------------------------------------------

    @classmethod
    def for_app(cls, app_name, version=0, mode=Mode.STANDARD,
                detector='none', config_overrides=None, text_input='',
                int_input=()):
        """A job over a registered benchmark application."""
        return cls(app=app_name, version=version, mode=mode,
                   detector=detector, config_overrides=config_overrides,
                   text_input=text_input, int_input=int_input)

    @classmethod
    def for_source(cls, source, name='program', mode=Mode.STANDARD,
                   detector='none', config_overrides=None,
                   text_input='', int_input=()):
        """A job over raw MiniC source."""
        return cls(source=source, program_name=name, mode=mode,
                   detector=detector, config_overrides=config_overrides,
                   text_input=text_input, int_input=int_input)

    # -- serialization and hashing -------------------------------------

    def to_dict(self):
        return {
            'app': self.app,
            'version': self.version,
            'source': self.source,
            'program_name': self.program_name,
            'mode': self.mode,
            'detector': self.detector,
            'config_overrides': dict(self.config_overrides),
            'text_input': self.text_input,
            'int_input': list(self.int_input),
        }

    @classmethod
    def from_dict(cls, data):
        return cls(app=data.get('app'),
                   version=data.get('version', 0),
                   source=data.get('source'),
                   program_name=data.get('program_name', 'program'),
                   mode=data['mode'],
                   detector=data.get('detector', 'none'),
                   config_overrides=data.get('config_overrides'),
                   text_input=data.get('text_input', ''),
                   int_input=data.get('int_input', ()))

    @property
    def key(self):
        """Canonical content hash: the cache key for this job."""
        if self._key is None:
            canonical = json.dumps(self.to_dict(), sort_keys=True,
                                   separators=(',', ':'))
            digest = hashlib.sha256(canonical.encode('utf-8'))
            object.__setattr__(self, '_key', digest.hexdigest())
        return self._key

    # -- value semantics -----------------------------------------------

    def __eq__(self, other):
        if not isinstance(other, JobSpec):
            return NotImplemented
        return self.key == other.key

    def __hash__(self):
        return hash(self.key)

    def __repr__(self):
        target = self.app if self.app is not None \
            else '<source:%s>' % self.program_name
        return '<JobSpec %s v%d %s/%s key=%s>' % (
            target, self.version, self.mode, self.detector,
            self.key[:12])
