"""Parallel job execution with an on-disk result cache.

The experiment harness describes every simulation it needs as a frozen,
content-addressed :class:`~repro.jobs.spec.JobSpec`; a
:class:`~repro.jobs.pool.JobPool` fans the specs out across worker
processes, retries transient failures, consults a
:class:`~repro.jobs.store.ResultStore` so a run whose inputs have not
changed is never executed twice, and accounts for everything in a
:class:`~repro.jobs.metrics.RunMetrics`.

Invariant (see DESIGN.md): pooled and serial execution are required to
produce identical results — the pool only changes *where* a simulation
runs, never what it computes.
"""

from __future__ import annotations

from repro.jobs.metrics import RunMetrics
from repro.jobs.pool import JobExecutionError, JobPool
from repro.jobs.spec import JobSpec
from repro.jobs.store import ResultStore

__all__ = ['JobSpec', 'ResultStore', 'JobPool', 'JobExecutionError',
           'RunMetrics']
