"""Counters, timers and an event log for batch runs.

A :class:`RunMetrics` rides along with a
:class:`~repro.jobs.pool.JobPool` and records what actually happened:
how many jobs were submitted, how many simulations really ran, how many
were served from the cache, how often attempts were retried or timed
out, and how the batch's wall-clock time compares with the summed
simulation time (the parallel speedup).  It renders as a plain-text
summary table and, when given a path, appends every event as one JSON
line — the machine-readable audit trail for a batch.
"""

from __future__ import annotations

import json
import time

COUNTER_NAMES = ('jobs_submitted', 'jobs_run', 'cache_hits',
                 'cache_misses', 'retries', 'timeouts', 'failures',
                 'corrupt_evictions', 'serial_fallbacks',
                 'quarantined', 'hung_worker_kills')


class RunMetrics:
    """Accounting for one batch of jobs."""

    def __init__(self, log_path=None):
        self.counters = {name: 0 for name in COUNTER_NAMES}
        self.wall_seconds = 0.0
        self.sim_seconds = 0.0
        self.events = []
        self.log_path = log_path

    # ------------------------------------------------------------------

    def incr(self, name, amount=1):
        if name not in self.counters:
            raise KeyError('unknown counter %r' % name)
        self.counters[name] += amount

    def __getattr__(self, name):
        counters = self.__dict__.get('counters')
        if counters is not None and name in counters:
            return counters[name]
        raise AttributeError(name)

    def add_wall_time(self, seconds):
        self.wall_seconds += seconds

    def add_sim_time(self, seconds):
        self.sim_seconds += seconds

    # ------------------------------------------------------------------

    def event(self, kind, **fields):
        """Record one event; mirrored to the JSONL log if configured."""
        entry = {'event': kind, 'ts': time.time()}
        entry.update(fields)
        self.events.append(entry)
        if self.log_path:
            with open(self.log_path, 'a', encoding='utf-8') as handle:
                handle.write(json.dumps(entry, sort_keys=True) + '\n')
        return entry

    # ------------------------------------------------------------------

    def summary_rows(self):
        rows = [(name, self.counters[name]) for name in COUNTER_NAMES]
        rows.append(('wall_seconds', round(self.wall_seconds, 3)))
        rows.append(('sim_seconds', round(self.sim_seconds, 3)))
        if self.wall_seconds > 0:
            rows.append(('parallel_speedup',
                         round(self.sim_seconds / self.wall_seconds, 2)))
        return rows

    def format_summary(self):
        rows = self.summary_rows()
        width = max(len(name) for name, _value in rows)
        lines = ['job metrics']
        for name, value in rows:
            lines.append('  %-*s  %s' % (width, name, value))
        return '\n'.join(lines)

    def to_dict(self):
        data = dict(self.counters)
        data['wall_seconds'] = self.wall_seconds
        data['sim_seconds'] = self.sim_seconds
        return data

    def __repr__(self):
        return '<RunMetrics run=%d hits=%d retries=%d>' % (
            self.counters['jobs_run'], self.counters['cache_hits'],
            self.counters['retries'])
