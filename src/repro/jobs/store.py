"""On-disk result cache keyed by :attr:`JobSpec.key`.

One JSON record per job, sharded by key prefix
(``<root>/ab/abcdef….json``).  Writes go through a temporary file in
the same directory followed by :func:`os.replace`, so a record is
either fully present or absent — never half-written; stale ``.tmp``
files left behind by a killed writer are garbage-collected when the
store is opened.  Every record embeds a sha256 checksum over its own
canonical JSON (record version 2), so *silent* corruption — a record
that still parses but whose payload was altered — is caught, not just
truncation.  Reads are corruption-tolerant: a record that fails to
parse, fails its sanity checks or fails its checksum is *evicted*
(deleted) and reported as a miss, so the job simply reruns instead of
crashing the batch.  :meth:`fsck` walks the whole store and verifies
(or repairs, with ``repair=True``) every record offline — the CLI
exposes it as ``repro cache fsck``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

_RECORD_VERSION = 2
_CHECKSUM_FIELD = 'checksum'


def _record_checksum(record):
    """sha256 over the record's canonical JSON, checksum field excluded."""
    body = {name: value for name, value in record.items()
            if name != _CHECKSUM_FIELD}
    payload = json.dumps(body, sort_keys=True, separators=(',', ':'))
    return hashlib.sha256(payload.encode('utf-8')).hexdigest()


class ResultStore:
    """Directory-backed cache of serialized run results."""

    def __init__(self, root):
        self.root = os.fspath(root)
        self.corrupt_evictions = 0
        self._gc_stale_tmp()

    # ------------------------------------------------------------------

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + '.json')

    def _evict(self, path):
        self.corrupt_evictions += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    def _gc_stale_tmp(self):
        """Remove ``.tmp`` leftovers of writers that died mid-put.

        A ``.tmp`` file only exists between ``mkstemp`` and
        ``os.replace``; anything surviving to the next store open is
        garbage by construction.
        """
        removed = 0
        for _shard, shard_dir, name in self._walk():
            if name.endswith('.tmp'):
                try:
                    os.unlink(os.path.join(shard_dir, name))
                    removed += 1
                except OSError:
                    pass
        return removed

    def _walk(self):
        """Yield ``(shard, shard_dir, filename)`` for every file."""
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                yield shard, shard_dir, name

    # ------------------------------------------------------------------

    @staticmethod
    def _validate(record, key):
        """Why ``record`` is unusable for ``key``, or None when valid.

        Version-1 records (no checksum) are accepted unverified so a
        warm cache survives the upgrade; anything carrying a checksum
        must match it.
        """
        if not isinstance(record, dict):
            return 'not a record'
        if record.get('key') != key:
            return 'key mismatch'
        if not isinstance(record.get('result'), dict):
            return 'missing result'
        checksum = record.get(_CHECKSUM_FIELD)
        if record.get('record_version', 1) >= 2 or checksum is not None:
            if checksum != _record_checksum(record):
                return 'checksum mismatch'
        return None

    def get(self, key):
        """The cached record for ``key``, or ``None`` on miss.

        A corrupt or mismatched record counts as a miss and is removed
        so the next :meth:`put` starts clean.
        """
        path = self._path(key)
        try:
            with open(path, encoding='utf-8') as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._evict(path)
            return None
        if self._validate(record, key) is not None:
            self._evict(path)
            return None
        return record

    def put(self, key, spec_dict, result_dict, elapsed_seconds):
        """Atomically persist one job result (checksummed)."""
        record = {
            'record_version': _RECORD_VERSION,
            'key': key,
            'spec': spec_dict,
            'result': result_dict,
            'elapsed_seconds': elapsed_seconds,
        }
        record[_CHECKSUM_FIELD] = _record_checksum(record)
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix='.tmp')
        try:
            with os.fdopen(fd, 'w', encoding='utf-8') as handle:
                json.dump(record, handle, sort_keys=True,
                          separators=(',', ':'))
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        self._apply_corruption_fault(path, record)
        return path

    def invalidate(self, key):
        """Drop ``key``'s record (counted as a corrupt eviction)."""
        self._evict(self._path(key))

    # ------------------------------------------------------------------

    def fsck(self, repair=False):
        """Verify every record; returns a report dict.

        ``checked`` counts records examined; ``corrupt`` lists
        ``(key, reason)`` for every bad record found; ``repaired``
        lists the keys removed (``repair=True`` deletes bad records so
        the jobs rerun -- results are reproducible, so deletion *is*
        the repair); ``stale_tmp`` counts writer leftovers removed.
        """
        checked = 0
        corrupt = []
        repaired = []
        stale_tmp = self._gc_stale_tmp()
        for _shard, shard_dir, name in self._walk():
            if not name.endswith('.json'):
                continue
            checked += 1
            key = name[:-len('.json')]
            path = os.path.join(shard_dir, name)
            try:
                with open(path, encoding='utf-8') as handle:
                    record = json.load(handle)
            except (OSError, ValueError) as exc:
                reason = 'unreadable: %s' % exc.__class__.__name__
            else:
                reason = self._validate(record, key)
            if reason is None:
                continue
            corrupt.append((key, reason))
            if repair:
                self._evict(path)
                repaired.append(key)
        return {'checked': checked, 'corrupt': corrupt,
                'repaired': repaired, 'stale_tmp': stale_tmp}

    # ------------------------------------------------------------------

    def _apply_corruption_fault(self, path, record):
        """Chaos hook (``store.corrupt_record``): scribble the record
        that was just written, per the installed fault plan."""
        from repro.resilience import get_injector
        injector = get_injector()
        if injector is None:
            return
        spec = injector.poll('store.corrupt_record',
                             key=record.get('key'))
        if spec is None:
            return
        if spec.mode == 'silent':
            # Valid JSON, plausible shape, stale checksum: only the
            # embedded checksum can catch this one.
            mutated = dict(record)
            result = dict(mutated.get('result') or {})
            result['cycles'] = int(result.get('cycles') or 0) + 1
            mutated['result'] = result
            payload = json.dumps(mutated, sort_keys=True,
                                 separators=(',', ':'))
        else:
            payload = '{"truncated'
        try:
            with open(path, 'w', encoding='utf-8') as handle:
                handle.write(payload)
        except OSError:
            pass

    # ------------------------------------------------------------------

    def __contains__(self, key):
        return os.path.exists(self._path(key))

    def keys(self):
        for _shard, _shard_dir, name in self._walk():
            if name.endswith('.json'):
                yield name[:-len('.json')]

    def __len__(self):
        return sum(1 for _key in self.keys())

    def clear(self):
        for key in list(self.keys()):
            try:
                os.unlink(self._path(key))
            except OSError:
                pass

    def __repr__(self):
        return '<ResultStore %s: %d records>' % (self.root, len(self))
