"""On-disk result cache keyed by :attr:`JobSpec.key`.

One JSON record per job, sharded by key prefix
(``<root>/ab/abcdef….json``).  Writes go through a temporary file in
the same directory followed by :func:`os.replace`, so a record is
either fully present or absent — never half-written.  Reads are
corruption-tolerant: a record that fails to parse or fails its sanity
checks is *evicted* (deleted) and reported as a miss, so the job simply
reruns instead of crashing the batch.
"""

from __future__ import annotations

import json
import os
import tempfile

_RECORD_VERSION = 1


class ResultStore:
    """Directory-backed cache of serialized run results."""

    def __init__(self, root):
        self.root = os.fspath(root)
        self.corrupt_evictions = 0

    # ------------------------------------------------------------------

    def _path(self, key):
        return os.path.join(self.root, key[:2], key + '.json')

    def _evict(self, path):
        self.corrupt_evictions += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------------

    def get(self, key):
        """The cached record for ``key``, or ``None`` on miss.

        A corrupt or mismatched record counts as a miss and is removed
        so the next :meth:`put` starts clean.
        """
        path = self._path(key)
        try:
            with open(path, encoding='utf-8') as handle:
                record = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            self._evict(path)
            return None
        if not isinstance(record, dict) or record.get('key') != key \
                or not isinstance(record.get('result'), dict):
            self._evict(path)
            return None
        return record

    def put(self, key, spec_dict, result_dict, elapsed_seconds):
        """Atomically persist one job result."""
        record = {
            'record_version': _RECORD_VERSION,
            'key': key,
            'spec': spec_dict,
            'result': result_dict,
            'elapsed_seconds': elapsed_seconds,
        }
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix='.tmp')
        try:
            with os.fdopen(fd, 'w', encoding='utf-8') as handle:
                json.dump(record, handle, sort_keys=True,
                          separators=(',', ':'))
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------

    def __contains__(self, key):
        return os.path.exists(self._path(key))

    def keys(self):
        if not os.path.isdir(self.root):
            return
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith('.json'):
                    yield name[:-len('.json')]

    def __len__(self):
        return sum(1 for _key in self.keys())

    def clear(self):
        for key in list(self.keys()):
            try:
                os.unlink(self._path(key))
            except OSError:
                pass

    def __repr__(self):
        return '<ResultStore %s: %d records>' % (self.root, len(self))
