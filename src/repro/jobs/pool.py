"""Job scheduler: process-pool fan-out with cache, retries, fallback.

The pool resolves each :class:`~repro.jobs.spec.JobSpec` in three
steps: serve it from the :class:`~repro.jobs.store.ResultStore` if a
valid record exists, otherwise execute it — across a
``ProcessPoolExecutor`` when ``jobs > 1``, in-process otherwise — and
persist the fresh result.  Failed attempts are retried with exponential
backoff; a per-job timeout (pooled mode only) counts as a failed
attempt.  If worker processes cannot be spawned, or the pool breaks
mid-batch, the remaining jobs fall back to serial in-process execution
rather than failing the batch.

Workers return plain dicts (``RunResult.to_dict()``), the same form the
cache stores, so the pooled, serial and cached paths all rehydrate
results identically.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool

from repro.core.result import RunResult
from repro.jobs.metrics import RunMetrics
from repro.jobs.spec import JobSpec


class JobExecutionError(RuntimeError):
    """A job failed every allowed attempt."""

    def __init__(self, spec, attempts, reason):
        super().__init__('job %s failed after %d attempt(s): %s'
                         % (spec, attempts, reason))
        self.spec = spec
        self.attempts = attempts
        self.reason = reason


def execute_spec(spec_dict):
    """Worker entry point: run one job, return ``(result_dict, secs)``.

    Module-level (and fed plain dicts) so ``ProcessPoolExecutor`` can
    pickle both the callable and its argument.
    """
    from repro.core.runner import run_job
    start = time.perf_counter()
    result = run_job(JobSpec.from_dict(spec_dict))
    return result.to_dict(), time.perf_counter() - start


class JobPool:
    """Schedules job specs over workers, a cache and a retry policy."""

    def __init__(self, jobs=1, store=None, metrics=None, timeout=None,
                 retries=2, backoff=0.25, runner=None):
        if jobs < 1:
            raise ValueError('jobs must be >= 1')
        self.jobs = jobs
        self.store = store
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.runner = runner if runner is not None else execute_spec

    # ------------------------------------------------------------------

    def run(self, specs):
        """Resolve every spec; results come back in submission order."""
        specs = list(specs)
        start = time.perf_counter()
        evictions_before = self.store.corrupt_evictions if self.store \
            else 0
        results = [None] * len(specs)
        pending = []
        for index, spec in enumerate(specs):
            self.metrics.incr('jobs_submitted')
            record = self.store.get(spec.key) if self.store else None
            if record is not None:
                self.metrics.incr('cache_hits')
                self.metrics.event('cache_hit', key=spec.key)
                results[index] = RunResult.from_dict(record['result'])
            else:
                if self.store is not None:
                    self.metrics.incr('cache_misses')
                pending.append((index, spec))
        if self.store is not None:
            evicted = self.store.corrupt_evictions - evictions_before
            if evicted:
                self.metrics.incr('corrupt_evictions', evicted)
        if pending:
            if self.jobs > 1:
                executed = self._run_pooled(pending)
            else:
                executed = self._run_serial(pending)
            for index, result in executed:
                results[index] = result
        self.metrics.add_wall_time(time.perf_counter() - start)
        return results

    def run_one(self, spec):
        return self.run([spec])[0]

    # ------------------------------------------------------------------

    def _backoff_delay(self, attempt):
        return self.backoff * (2 ** (attempt - 1))

    def _finish(self, spec, result_dict, elapsed):
        self.metrics.incr('jobs_run')
        self.metrics.add_sim_time(elapsed)
        self.metrics.event('job_done', key=spec.key,
                           seconds=round(elapsed, 6))
        if self.store is not None:
            self.store.put(spec.key, spec.to_dict(), result_dict,
                           elapsed)
        return RunResult.from_dict(result_dict)

    # -- serial path ---------------------------------------------------

    def _run_serial(self, pending):
        out = []
        for index, spec in pending:
            attempts = 0
            while True:
                attempts += 1
                try:
                    result_dict, elapsed = self.runner(spec.to_dict())
                except Exception as exc:
                    self.metrics.incr('failures')
                    self.metrics.event('job_failed', key=spec.key,
                                       attempt=attempts,
                                       error=repr(exc))
                    if attempts > self.retries:
                        raise JobExecutionError(spec, attempts,
                                                repr(exc)) from exc
                    self.metrics.incr('retries')
                    time.sleep(self._backoff_delay(attempts))
                else:
                    out.append((index,
                                self._finish(spec, result_dict,
                                             elapsed)))
                    break
        return out

    # -- pooled path ---------------------------------------------------

    def _run_pooled(self, pending):
        try:
            executor = ProcessPoolExecutor(
                max_workers=min(self.jobs, len(pending)))
        except Exception as exc:
            self.metrics.incr('serial_fallbacks')
            self.metrics.event('serial_fallback', error=repr(exc))
            return self._run_serial(pending)
        out = []
        done = set()
        try:
            futures = {index: executor.submit(self.runner,
                                              spec.to_dict())
                       for index, spec in pending}
            for index, spec in pending:
                out.append((index,
                            self._await_job(executor, futures, index,
                                            spec)))
                done.add(index)
        except BrokenProcessPool as exc:
            self.metrics.incr('serial_fallbacks')
            self.metrics.event('serial_fallback', error=repr(exc))
            rest = [(i, s) for i, s in pending if i not in done]
            out.extend(self._run_serial(rest))
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        return out

    def _await_job(self, executor, futures, index, spec):
        attempts = 0
        while True:
            attempts += 1
            try:
                result_dict, elapsed = \
                    futures[index].result(timeout=self.timeout)
            except FutureTimeout:
                futures[index].cancel()
                self.metrics.incr('timeouts')
                self.metrics.event('job_timeout', key=spec.key,
                                   attempt=attempts,
                                   timeout=self.timeout)
                if attempts > self.retries:
                    raise JobExecutionError(
                        spec, attempts,
                        'timed out after %ss' % self.timeout)
            except BrokenProcessPool:
                raise
            except Exception as exc:
                self.metrics.incr('failures')
                self.metrics.event('job_failed', key=spec.key,
                                   attempt=attempts, error=repr(exc))
                if attempts > self.retries:
                    raise JobExecutionError(spec, attempts,
                                            repr(exc)) from exc
            else:
                return self._finish(spec, result_dict, elapsed)
            self.metrics.incr('retries')
            time.sleep(self._backoff_delay(attempts))
            futures[index] = executor.submit(self.runner,
                                             spec.to_dict())
