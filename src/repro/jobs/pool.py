"""Job scheduler: process-pool fan-out with cache, retries, fallback.

The pool resolves each :class:`~repro.jobs.spec.JobSpec` in three
steps: serve it from the :class:`~repro.jobs.store.ResultStore` if a
valid record exists, otherwise execute it — across a
``ProcessPoolExecutor`` when ``jobs > 1``, in-process otherwise — and
persist the fresh result.  Failed attempts are retried with exponential
backoff; a per-job timeout counts as a failed attempt in *both* pooled
and serial mode (serial execution runs under an ambient watchdog
deadline — see :mod:`repro.resilience.watchdog`).  If worker processes
cannot be spawned, or the pool breaks mid-batch, the remaining jobs
fall back to serial in-process execution rather than failing the batch,
carrying each in-flight job's attempt count with them.

Hung workers are handled, not waited on: a pooled timeout with retries
remaining terminates the worker processes, rebuilds the executor and
resubmits every unfinished job (jobs are pure simulations, so restarts
are safe).  A job that exhausts its attempts either raises a
spec-attributed :class:`JobExecutionError` (``on_error='raise'``, the
default) or is *quarantined* (``on_error='quarantine'``): recorded on
``pool.quarantined``, its slot left ``None``, and the rest of the batch
completes.

Workers return plain dicts (``RunResult.to_dict()``), the same form the
cache stores, so the pooled, serial and cached paths all rehydrate
results identically.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool

from repro.core.errors import (JobExecutionError, WatchdogTimeout,
                               classify)
from repro.core.result import RunResult
from repro.jobs.metrics import RunMetrics
from repro.jobs.spec import JobSpec
from repro.resilience import worker_faults
from repro.resilience.watchdog import deadline

__all__ = ['JobPool', 'JobExecutionError', 'execute_spec']

ON_ERROR_CHOICES = ('raise', 'quarantine')


def execute_spec(spec_dict):
    """Worker entry point: run one job, return ``(result_dict, secs)``.

    Module-level (and fed plain dicts) so ``ProcessPoolExecutor`` can
    pickle both the callable and its argument.  Polls the worker-side
    fault-injection sites (crash/hang) before the simulation starts.
    """
    from repro.core.runner import run_job
    spec = JobSpec.from_dict(spec_dict)
    worker_faults(spec.key)
    start = time.perf_counter()
    result = run_job(spec)
    return result.to_dict(), time.perf_counter() - start


class _PoolState:
    """The rebuildable part of one pooled batch."""

    __slots__ = ('executor', 'futures')

    def __init__(self, executor):
        self.executor = executor
        self.futures = {}


class JobPool:
    """Schedules job specs over workers, a cache and a retry policy."""

    def __init__(self, jobs=1, store=None, metrics=None, timeout=None,
                 retries=2, backoff=0.25, runner=None, on_error='raise',
                 heartbeat_interval=1.0):
        if jobs < 1:
            raise ValueError('jobs must be >= 1')
        if on_error not in ON_ERROR_CHOICES:
            raise ValueError('on_error must be one of %s'
                             % (ON_ERROR_CHOICES,))
        self.jobs = jobs
        self.store = store
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.runner = runner if runner is not None else execute_spec
        self.on_error = on_error
        self.heartbeat_interval = heartbeat_interval
        # (spec, JobExecutionError) per poison job of the last run().
        self.quarantined = []

    # ------------------------------------------------------------------

    def run(self, specs):
        """Resolve every spec; results come back in submission order.

        With ``on_error='quarantine'`` a slot whose job exhausted its
        attempts holds ``None`` (the failure is on ``quarantined``).
        """
        specs = list(specs)
        start = time.perf_counter()
        evictions_before = self.store.corrupt_evictions if self.store \
            else 0
        self.quarantined = []
        results = [None] * len(specs)
        pending = []
        for index, spec in enumerate(specs):
            self.metrics.incr('jobs_submitted')
            record = self.store.get(spec.key) if self.store else None
            if record is not None:
                try:
                    results[index] = \
                        RunResult.from_dict(record['result'])
                except Exception as exc:
                    # The record passed the store's shape checks but
                    # does not rehydrate: evict and rerun.
                    self.store.invalidate(spec.key)
                    self.metrics.event('cache_evict', key=spec.key,
                                       error_kind=classify(exc))
                    record = None
            if record is not None:
                self.metrics.incr('cache_hits')
                self.metrics.event('cache_hit', key=spec.key)
            else:
                if self.store is not None:
                    self.metrics.incr('cache_misses')
                pending.append((index, spec))
        if self.store is not None:
            evicted = self.store.corrupt_evictions - evictions_before
            if evicted:
                self.metrics.incr('corrupt_evictions', evicted)
        if pending:
            if self.jobs > 1:
                executed = self._run_pooled(pending)
            else:
                executed = self._run_serial(pending)
            for index, result in executed:
                results[index] = result
        self.metrics.add_wall_time(time.perf_counter() - start)
        return results

    def run_one(self, spec):
        return self.run([spec])[0]

    # ------------------------------------------------------------------

    def _backoff_delay(self, attempt):
        return self.backoff * (2 ** (attempt - 1))

    def _finish(self, spec, result_dict, elapsed):
        self.metrics.incr('jobs_run')
        self.metrics.add_sim_time(elapsed)
        self.metrics.event('job_done', key=spec.key,
                           seconds=round(elapsed, 6))
        if self.store is not None:
            self.store.put(spec.key, spec.to_dict(), result_dict,
                           elapsed)
        return RunResult.from_dict(result_dict)

    def _give_up(self, spec, error):
        """Terminal failure: quarantine the job or raise.

        Returns True when the caller should treat the job as resolved
        (quarantined, slot stays None); raises otherwise.
        """
        if self.on_error == 'quarantine':
            self.quarantined.append((spec, error))
            self.metrics.incr('quarantined')
            self.metrics.event('job_quarantined', key=spec.key,
                               attempts=error.attempts,
                               reason=error.reason)
            return True
        raise error

    # -- serial path ---------------------------------------------------

    def _run_serial(self, pending, attempt_carry=None):
        """In-process execution.  ``attempt_carry`` maps job index to
        attempts already spent in a broken pool, so recovery does not
        grant a failing job a fresh retry budget."""
        carry = attempt_carry or {}
        out = []
        for index, spec in pending:
            attempts = carry.get(index, 0)
            while True:
                attempts += 1
                try:
                    with deadline(self.timeout):
                        result_dict, elapsed = \
                            self.runner(spec.to_dict())
                except WatchdogTimeout:
                    self.metrics.incr('timeouts')
                    self.metrics.event('job_timeout', key=spec.key,
                                       attempt=attempts,
                                       timeout=self.timeout)
                    if attempts > self.retries:
                        if self._give_up(spec, JobExecutionError(
                                spec, attempts,
                                'timed out after %ss' % self.timeout)):
                            break
                except Exception as exc:
                    self.metrics.incr('failures')
                    self.metrics.event('job_failed', key=spec.key,
                                       attempt=attempts,
                                       error=repr(exc),
                                       error_kind=classify(exc))
                    if attempts > self.retries:
                        error = JobExecutionError(spec, attempts,
                                                  repr(exc))
                        error.__cause__ = exc
                        if self._give_up(spec, error):
                            break
                else:
                    out.append((index,
                                self._finish(spec, result_dict,
                                             elapsed)))
                    break
                self.metrics.incr('retries')
                time.sleep(self._backoff_delay(attempts))
        return out

    # -- pooled path ---------------------------------------------------

    def _make_executor(self, pending):
        return ProcessPoolExecutor(
            max_workers=min(self.jobs, len(pending)))

    def _run_pooled(self, pending):
        try:
            executor = self._make_executor(pending)
        except Exception as exc:
            self.metrics.incr('serial_fallbacks')
            self.metrics.event('serial_fallback', error=repr(exc))
            return self._run_serial(pending)
        state = _PoolState(executor)
        out = []
        done = set()
        attempt_carry = {}
        try:
            state.futures = {index: state.executor.submit(
                self.runner, spec.to_dict())
                for index, spec in pending}
            for index, spec in pending:
                out.append((index,
                            self._await_job(state, pending, done,
                                            index, spec,
                                            attempt_carry)))
                done.add(index)
        except BrokenProcessPool as exc:
            # A worker died hard (crash, OOM-kill, os._exit).  The
            # executor is unusable; run the remaining jobs serially,
            # preserving the in-flight attempt counts.
            self.metrics.incr('serial_fallbacks')
            self.metrics.event('serial_fallback', error=repr(exc),
                               error_kind=classify(exc))
            rest = [(i, s) for i, s in pending if i not in done]
            out.extend(self._run_serial(rest, attempt_carry))
        finally:
            state.executor.shutdown(wait=False, cancel_futures=True)
        return out

    def _await_job(self, state, pending, done, index, spec,
                   attempt_carry):
        attempts = 0
        while True:
            attempts += 1
            attempt_carry[index] = attempts
            try:
                result_dict, elapsed = self._await_future(
                    state.futures[index], spec, attempts)
            except FutureTimeout:
                self.metrics.incr('timeouts')
                self.metrics.event('job_timeout', key=spec.key,
                                   attempt=attempts,
                                   timeout=self.timeout)
                if attempts > self.retries:
                    error = JobExecutionError(
                        spec, attempts,
                        'timed out after %ss' % self.timeout)
                    if self.on_error == 'quarantine':
                        # The batch continues: replace the hung
                        # worker pool first.
                        self._replace_executor(state, pending, done,
                                               index)
                        self._give_up(spec, error)
                        return None
                    self._terminate_workers(state.executor)
                    raise error
                # Retries remain: the worker may be hung, and a
                # running future cannot be cancelled -- kill the
                # workers and rebuild.
                self._replace_executor(state, pending, done, index)
            except BrokenProcessPool:
                raise
            except Exception as exc:
                self.metrics.incr('failures')
                self.metrics.event('job_failed', key=spec.key,
                                   attempt=attempts, error=repr(exc),
                                   error_kind=classify(exc))
                if attempts > self.retries:
                    error = JobExecutionError(spec, attempts,
                                              repr(exc))
                    error.__cause__ = exc
                    if self._give_up(spec, error):
                        return None
            else:
                attempt_carry.pop(index, None)
                return self._finish(spec, result_dict, elapsed)
            self.metrics.incr('retries')
            time.sleep(self._backoff_delay(attempts))
            state.futures[index] = state.executor.submit(
                self.runner, spec.to_dict())

    def _await_future(self, future, spec, attempt):
        """Wait for one future, emitting liveness heartbeats.

        Raises :class:`concurrent.futures.TimeoutError` once
        ``self.timeout`` elapses (never waits past it).
        """
        if self.timeout is None:
            return future.result()
        expiry = time.monotonic() + self.timeout
        beat = self.heartbeat_interval
        while True:
            remaining = expiry - time.monotonic()
            if remaining <= 0:
                raise FutureTimeout()
            try:
                return future.result(timeout=min(beat, remaining)
                                     if beat else remaining)
            except FutureTimeout:
                if time.monotonic() >= expiry:
                    raise
                self.metrics.event(
                    'heartbeat', key=spec.key, attempt=attempt,
                    waited=round(self.timeout
                                 - (expiry - time.monotonic()), 3))

    def _terminate_workers(self, executor):
        """Kill the executor's worker processes (hung-worker escape)."""
        procs = list((getattr(executor, '_processes', None)
                      or {}).values())
        killed = 0
        for proc in procs:
            try:
                proc.terminate()
                killed += 1
            except Exception:
                pass
        self.metrics.incr('hung_worker_kills')
        self.metrics.event('hung_worker_kill', workers=killed)

    def _replace_executor(self, state, pending, done, current_index):
        """Kill the workers, rebuild the executor and resubmit every
        unfinished job except ``current_index`` (its retry loop
        resubmits it after the backoff).  Jobs are pure simulations,
        so restarting in-flight ones is safe."""
        self._terminate_workers(state.executor)
        state.executor.shutdown(wait=False, cancel_futures=True)
        try:
            state.executor = self._make_executor(pending)
        except Exception as exc:
            raise BrokenProcessPool(
                'executor rebuild failed: %r' % exc) from exc
        for index, spec in pending:
            if index not in done and index != current_index:
                state.futures[index] = state.executor.submit(
                    self.runner, spec.to_dict())
