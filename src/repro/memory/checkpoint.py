"""Processor-state checkpoints for NT-path spawn/rollback."""

from __future__ import annotations

from repro.core.errors import CheckpointCorruption

_MIX = 0x9E3779B97F4A7C15  # golden-ratio odd constant (order-sensitive mix)
_MASK = (1 << 64) - 1


class Checkpoint:
    """Everything needed to resume the taken path after a squash.

    Captures architectural registers, the program counter and the call
    stack bookkeeping.  Memory contents are handled separately by the
    memory journal / versioned cache, and allocator metadata by its
    lazy transaction (:meth:`Allocator.begin_txn`), matching the
    hardware split of Section 4.2(2).

    A checkpoint is *reusable*: the engine allocates one and calls
    :meth:`capture` per spawn, so the spawn hot path allocates nothing
    beyond the register-list copy.

    Every capture also computes an integrity checksum over the saved
    state; :meth:`restore` verifies it and raises
    :class:`CheckpointCorruption` on mismatch rather than silently
    resuming the taken path from a scribbled context.
    """

    __slots__ = ('regs', 'pc', 'pred', 'call_depth', 'lcg_state',
                 'checksum')

    def __init__(self):
        self.regs = []
        self.pc = 0
        self.pred = False
        self.call_depth = 0
        self.lcg_state = 0
        self.checksum = 0

    def _compute_checksum(self):
        acc = (self.pc * _MIX + self.call_depth) & _MASK
        acc = (acc * _MIX + self.lcg_state + self.pred) & _MASK
        for value in self.regs:
            acc = (acc * _MIX + value) & _MASK
        return acc

    def capture(self, core):
        self.regs[:] = core.regs
        self.pc = core.pc
        self.pred = core.pred
        self.call_depth = core.call_depth
        self.lcg_state = core.lcg_state
        self.checksum = self._compute_checksum()

    def restore(self, core):
        if self._compute_checksum() != self.checksum:
            raise CheckpointCorruption(
                'checkpoint integrity check failed at squash',
                pc=self.pc)
        core.regs[:] = self.regs
        core.pc = self.pc
        core.pred = self.pred
        core.call_depth = self.call_depth
        core.lcg_state = self.lcg_state

    def corrupt(self):
        """Scribble the saved context without refreshing the checksum
        (fault-injection helper for the ``checkpoint.corrupt`` site)."""
        if self.regs:
            self.regs[0] ^= 0x5A5A5A5A
        else:
            self.pc ^= 0x5A5A5A5A
