"""Processor-state checkpoints for NT-path spawn/rollback."""

from __future__ import annotations


class Checkpoint:
    """Everything needed to resume the taken path after a squash.

    Captures architectural registers, the program counter, the call
    stack bookkeeping, and the (small) allocator metadata.  Memory
    contents are handled separately by the memory journal / versioned
    cache, matching the hardware split of Section 4.2(2).
    """

    __slots__ = ('regs', 'pc', 'pred', 'call_depth', 'alloc_snapshot',
                 'lcg_state')

    def __init__(self, core, allocator):
        self.regs = list(core.regs)
        self.pc = core.pc
        self.pred = core.pred
        self.call_depth = core.call_depth
        self.alloc_snapshot = allocator.snapshot()
        self.lcg_state = core.lcg_state

    def restore(self, core, allocator):
        core.regs[:] = self.regs
        core.pc = self.pc
        core.pred = self.pred
        core.call_depth = self.call_depth
        core.lcg_state = self.lcg_state
        allocator.restore(self.alloc_snapshot)
