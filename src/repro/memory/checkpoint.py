"""Processor-state checkpoints for NT-path spawn/rollback."""

from __future__ import annotations


class Checkpoint:
    """Everything needed to resume the taken path after a squash.

    Captures architectural registers, the program counter and the call
    stack bookkeeping.  Memory contents are handled separately by the
    memory journal / versioned cache, and allocator metadata by its
    lazy transaction (:meth:`Allocator.begin_txn`), matching the
    hardware split of Section 4.2(2).

    A checkpoint is *reusable*: the engine allocates one and calls
    :meth:`capture` per spawn, so the spawn hot path allocates nothing
    beyond the register-list copy.
    """

    __slots__ = ('regs', 'pc', 'pred', 'call_depth', 'lcg_state')

    def __init__(self):
        self.regs = []
        self.pc = 0
        self.pred = False
        self.call_depth = 0
        self.lcg_state = 0

    def capture(self, core):
        self.regs[:] = core.regs
        self.pc = core.pc
        self.pred = core.pred
        self.call_depth = core.call_depth
        self.lcg_state = core.lcg_state

    def restore(self, core):
        core.regs[:] = self.regs
        core.pc = self.pc
        core.pred = self.pred
        core.call_depth = self.call_depth
        core.lcg_state = self.lcg_state
