"""Set-associative cache model with volatile/version tagging.

This models the L1 behaviour PathExpander relies on (Sections 4.1-4.3):

* NT-path stores are buffered in L1 lines marked with a *volatile tag*
  (standard configuration) or an 8-bit *path ID* (CMP optimisation).
* Squashing a path gang-invalidates all of its lines.
* A set that would need more volatile lines than it has ways signals a
  capacity overflow -- the NT-path cannot be sandboxed further and must
  be squashed (the paper chose the cache over a store buffer precisely
  to make this rare).
* On the taken path, displacing a dirty uncommitted line forces the
  owning segment to commit, which squashes its sibling NT-path.

The cache is a *state/timing* model: data values live in
:class:`~repro.memory.main_memory.MainMemory`; the cache tracks tags,
LRU order, latency, and ownership.
"""

from __future__ import annotations

COMMITTED = 0       # version id reserved for committed data


class CacheLine:
    __slots__ = ('tag', 'version', 'dirty', 'lru')

    def __init__(self, tag, version, dirty, lru):
        self.tag = tag
        self.version = version
        self.dirty = dirty
        self.lru = lru


class AccessResult:
    __slots__ = ('cycles', 'hit', 'volatile_overflow', 'displaced_dirty')

    def __init__(self, cycles, hit, volatile_overflow=False,
                 displaced_dirty=None):
        self.cycles = cycles
        self.hit = hit
        self.volatile_overflow = volatile_overflow
        self.displaced_dirty = displaced_dirty   # version id or None


class Cache:
    """One level of set-associative cache."""

    __slots__ = ('line_words', 'num_lines', 'num_sets', 'ways',
                 'hit_latency', 'miss_latency', '_sets', '_tick',
                 'hits', 'misses', '_hit_result',
                 '_last_tag', '_last_line', '_volatile')

    def __init__(self, size_bytes=16384, ways=4, line_bytes=32,
                 hit_latency=3, miss_latency=10, word_bytes=4):
        self.line_words = line_bytes // word_bytes
        self.num_lines = size_bytes // line_bytes
        self.num_sets = self.num_lines // ways
        self.ways = ways
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency
        self._sets = [[] for _ in range(self.num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        # Hits dominate and their result fields never vary, so one
        # preallocated result serves them all (callers treat results as
        # read-only).
        self._hit_result = AccessResult(hit_latency, True)
        # Last-line memo.  Only an *exact* version match may use it: a
        # version-v line is always inserted before a committed line of
        # the same tag can appear, so exact match coincides with the
        # first-match scan below and the memo cannot change behaviour.
        self._last_tag = -1
        self._last_line = None
        # Exact list of resident lines with version != COMMITTED.
        # Squash-time gang invalidation and segment commit then walk
        # the (typically tiny) volatile population instead of every
        # set -- the per-squash full-cache sweep would otherwise
        # dominate spawn-heavy runs.
        self._volatile = []

    def _locate(self, addr):
        line_no = addr // self.line_words
        return self._sets[line_no % self.num_sets], line_no

    def access(self, addr, is_write, version=COMMITTED):
        """Simulate one access; returns an :class:`AccessResult`."""
        tick = self._tick + 1
        self._tick = tick
        line_no = addr // self.line_words
        line = self._last_line
        if line is not None and self._last_tag == line_no \
                and line.version == version:
            if is_write:
                line.dirty = True
            line.lru = tick
            self.hits += 1
            return self._hit_result
        lines = self._sets[line_no % self.num_sets]
        tag = line_no
        for line in lines:
            if line.tag == tag and (line.version == version
                                    or line.version == COMMITTED):
                # A committed line written by a speculative path takes
                # on that path's version (copy-on-write at line level).
                if is_write:
                    line.dirty = True
                    if version != COMMITTED \
                            and line.version == COMMITTED:
                        line.version = version
                        self._volatile.append(line)
                line.lru = tick
                self.hits += 1
                self._last_tag = tag
                self._last_line = line
                return self._hit_result
        # miss: allocate
        self.misses += 1
        overflow = False
        displaced_dirty = None
        if len(lines) >= self.ways:
            victim = min(
                (line for line in lines if line.version == COMMITTED),
                key=lambda line: line.lru, default=None)
            if victim is None:
                # Every way holds an uncommitted (volatile) line.
                overflow = True
                victim = min(lines, key=lambda line: line.lru)
            if victim.dirty:
                displaced_dirty = victim.version
            lines.remove(victim)
            if victim.version != COMMITTED:
                self._volatile.remove(victim)    # rare: overflow only
            if victim is self._last_line:
                self._last_line = None
        line = CacheLine(tag, version if is_write else COMMITTED,
                         is_write, self._tick)
        lines.append(line)
        if is_write and version != COMMITTED:
            self._volatile.append(line)
        self._last_tag = tag
        self._last_line = line
        return AccessResult(self.miss_latency, False,
                            volatile_overflow=overflow,
                            displaced_dirty=displaced_dirty)

    def gang_invalidate(self, version):
        """Drop every line owned by ``version`` (NT-path squash)."""
        volatile = self._volatile
        if not volatile:
            self._last_line = None
            return 0
        dropped = 0
        keep = []
        num_sets = self.num_sets
        for line in volatile:
            if line.version == version:
                self._sets[line.tag % num_sets].remove(line)
                dropped += 1
            else:
                keep.append(line)
        self._volatile = keep
        self._last_line = None
        return dropped

    def commit_version(self, version):
        """Lazily retag ``version`` lines as committed (segment commit)."""
        changed = 0
        keep = []
        for line in self._volatile:
            if line.version == version:
                line.version = COMMITTED
                changed += 1
            else:
                keep.append(line)
        self._volatile = keep
        self._last_line = None
        return changed

    def volatile_lines(self, version=None):
        if version is None:
            return len(self._volatile)
        return sum(1 for line in self._volatile
                   if line.version == version)

    def reset(self):
        self._sets = [[] for _ in range(self.num_sets)]
        self._tick = 0
        self.hits = 0
        self.misses = 0
        self._last_tag = -1
        self._last_line = None
        self._volatile = []
