"""Word-addressable main memory with an undo-log sandbox.

Layout (word addresses)::

    [0, NULL_GUARD)                null guard -- any access faults
    [NULL_GUARD, heap_base)        globals (incl. strings, blank structs)
    [heap_base, stack_limit)       heap, managed by the allocator
    [stack_limit, size)            stack, grows downward from ``size``

The *monitor memory area* (Section 4.1) is a dedicated region carved
from the top of the globals segment: writes to it are never captured by
the sandbox undo log, so error reports produced during an NT-path
survive the rollback.
"""

from __future__ import annotations

from repro.core.errors import JournalError
from repro.cpu.exceptions import FaultKind, SimFault

NULL_GUARD = 16
DEFAULT_SIZE = 1 << 20            # 1M words
MONITOR_AREA_WORDS = 256


class MainMemory:
    """Flat memory with optional write journaling for sandboxing.

    Journaling implements the hardware sandbox functionally: while a
    journal is active every first write to an address records the old
    value, and :meth:`rollback` restores them in reverse.  The hardware
    buffers NT-path stores in volatile L1 lines instead; the observable
    semantics (all NT-path stores disappear on squash, monitor-area
    stores survive) are identical.
    """

    def __init__(self, size=DEFAULT_SIZE, globals_size=NULL_GUARD,
                 stack_words=1 << 16):
        if globals_size < NULL_GUARD:
            globals_size = NULL_GUARD
        self.size = size
        self.cells = [0] * size
        self.monitor_base = globals_size
        self.monitor_limit = globals_size + MONITOR_AREA_WORDS
        self.heap_base = self.monitor_limit
        # Leave at least half the address space to globals + heap.
        stack_words = min(stack_words, size // 2)
        self.stack_limit = size - stack_words
        if self.stack_limit <= self.heap_base:
            raise ValueError('memory too small for the requested layout')
        self.stack_top = size
        self._journal = None
        # Preallocated journal dict, reused across NT-path spawns:
        # ``begin_journal`` arms it instead of allocating, and the
        # sandboxed fast-backend blocks bind it once at compile time.
        self.nt_journal = {}

    # ------------------------------------------------------------------
    # sandboxing

    def begin_journal(self):
        if self._journal is not None:
            raise JournalError('journal already active')
        journal = self.nt_journal
        journal.clear()
        self._journal = journal

    def rollback(self):
        journal = self._journal
        if journal is None:
            raise JournalError('no active journal')
        cells = self.cells
        for addr, old in journal.items():
            cells[addr] = old
        self._journal = None
        count = len(journal)
        journal.clear()
        return count

    def commit_journal(self):
        journal = self._journal
        if journal is None:
            raise JournalError('no active journal')
        self._journal = None
        count = len(journal)
        journal.clear()
        return count

    @property
    def journal_size(self):
        return len(self._journal) if self._journal is not None else 0

    def in_monitor_area(self, addr):
        return self.monitor_base <= addr < self.monitor_limit

    # ------------------------------------------------------------------
    # access

    def _check(self, addr):
        if addr < NULL_GUARD or addr >= self.size:
            if 0 <= addr < NULL_GUARD or -NULL_GUARD < addr < 0:
                raise SimFault(FaultKind.NULL_ACCESS,
                               'address %d' % addr, addr=addr)
            raise SimFault(FaultKind.MEM_OOB, 'address %d' % addr, addr=addr)

    def read(self, addr):
        self._check(addr)
        return self.cells[addr]

    def write(self, addr, value):
        self._check(addr)
        journal = self._journal
        if journal is not None and addr not in journal \
                and not (self.monitor_base <= addr < self.monitor_limit):
            journal[addr] = self.cells[addr]
        self.cells[addr] = value

    # convenience for loaders/tests (no journaling, still checked)
    def write_block(self, base, values):
        for offset, value in enumerate(values):
            self.write(base + offset, value)

    def read_block(self, base, count):
        return [self.read(base + offset) for offset in range(count)]

    def store_string(self, base, text):
        """Store a NUL-terminated string at ``base``."""
        for offset, char in enumerate(text):
            self.write(base + offset, ord(char))
        self.write(base + len(text), 0)

    def load_string(self, base, max_len=4096):
        chars = []
        addr = base
        while len(chars) < max_len:
            value = self.read(addr)
            if value == 0:
                break
            chars.append(chr(value & 0x10FFFF))
            addr += 1
        return ''.join(chars)
