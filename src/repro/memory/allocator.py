"""Heap allocator with red zones.

The allocator serves the ``malloc``/``free`` instructions.  Every
object is surrounded by ``RED_ZONE`` guard words; the guard intervals
and the object liveness table are what the CCured-style and
iWatcher-style checkers consult to classify accesses (Purify-style
interval checking -- see DESIGN.md for the fidelity note).

Allocator state is small and snapshot-able, so the PathExpander sandbox
can roll heap metadata back together with memory contents.
"""

from __future__ import annotations

from bisect import bisect_right, insort

from repro.cpu.exceptions import FaultKind, SimFault

RED_ZONE = 2


class AllocRecord:
    __slots__ = ('base', 'size', 'live', 'serial')

    def __init__(self, base, size, live, serial):
        self.base = base
        self.size = size
        self.live = live
        self.serial = serial

    @property
    def limit(self):
        return self.base + self.size

    def __repr__(self):
        state = 'live' if self.live else 'freed'
        return '<Alloc @%d +%d %s>' % (self.base, self.size, state)


class HeapAllocator:
    """First-fit free-list allocator over ``[heap_base, heap_limit)``."""

    def __init__(self, heap_base, heap_limit):
        self.heap_base = heap_base
        self.heap_limit = heap_limit
        self._bump = heap_base
        self._free_blocks = []          # list of (base, total_words)
        self._objects = {}              # object base -> AllocRecord
        self._sorted_bases = []         # sorted keys of _objects
        self._serial = 0
        self.alloc_count = 0
        self.free_count = 0
        self._txn_armed = False
        self._txn_snap = None

    # ------------------------------------------------------------------

    def malloc(self, size):
        """Allocate ``size`` words; returns the object base address."""
        if self._txn_armed and self._txn_snap is None:
            self._txn_snap = self.snapshot()
        if size <= 0:
            size = 1
        total = size + 2 * RED_ZONE
        base = None
        for index, (block_base, block_size) in enumerate(self._free_blocks):
            if block_size >= total:
                base = block_base
                remaining = block_size - total
                if remaining > 0:
                    self._free_blocks[index] = (block_base + total, remaining)
                else:
                    del self._free_blocks[index]
                break
        if base is None:
            if self._bump + total > self.heap_limit:
                raise SimFault(FaultKind.MEM_OOB, 'heap exhausted')
            base = self._bump
            self._bump += total
        obj_base = base + RED_ZONE
        self._serial += 1
        if obj_base not in self._objects:
            insort(self._sorted_bases, obj_base)
        self._objects[obj_base] = AllocRecord(obj_base, size, True,
                                              self._serial)
        self.alloc_count += 1
        return obj_base

    def free(self, addr):
        if self._txn_armed and self._txn_snap is None:
            self._txn_snap = self.snapshot()
        record = self._objects.get(addr)
        if record is None or not record.live:
            # Invalid/double free: a program bug.  The checker reports
            # it; the allocator itself tolerates it.
            return False
        record.live = False
        self._free_blocks.append((record.base - RED_ZONE,
                                  record.size + 2 * RED_ZONE))
        self.free_count += 1
        return True

    # ------------------------------------------------------------------
    # queries used by the bug detectors

    def record_at(self, addr):
        """The allocation record owning ``addr``, live or freed."""
        index = bisect_right(self._sorted_bases, addr) - 1
        if index >= 0:
            record = self._objects[self._sorted_bases[index]]
            if record.base <= addr < record.limit:
                return record
        return None

    def classify(self, addr):
        """Classify a heap address: 'object', 'freed', 'redzone', 'wild'."""
        if not (self.heap_base <= addr < self._bump):
            return 'wild'
        record = self.record_at(addr)
        if record is not None:
            return 'object' if record.live else 'freed'
        return 'redzone'

    def in_heap(self, addr):
        return self.heap_base <= addr < self.heap_limit

    @property
    def live_objects(self):
        return [r for r in self._objects.values() if r.live]

    # ------------------------------------------------------------------
    # sandbox support

    def begin_txn(self):
        """Arm a lazy rollback transaction for one NT-path.

        The (comparatively expensive) :meth:`snapshot` is deferred to
        the first ``malloc``/``free`` inside the path; the overwhelming
        majority of NT-paths touch no allocator state and pay only the
        two attribute writes.
        """
        self._txn_armed = True
        self._txn_snap = None

    def rollback_txn(self):
        """Undo any allocator mutation since :meth:`begin_txn`."""
        snap = self._txn_snap
        if snap is not None:
            self.restore(snap)
            self._txn_snap = None
        self._txn_armed = False

    def snapshot(self):
        return (
            self._bump,
            list(self._free_blocks),
            {base: (r.size, r.live, r.serial)
             for base, r in self._objects.items()},
            self._serial, self.alloc_count, self.free_count,
        )

    def restore(self, snap):
        bump, free_blocks, objects, serial, allocs, frees = snap
        self._bump = bump
        self._free_blocks = list(free_blocks)
        self._objects = {
            base: AllocRecord(base, size, live, ser)
            for base, (size, live, ser) in objects.items()}
        self._sorted_bases = sorted(self._objects)
        self._serial = serial
        self.alloc_count = allocs
        self.free_count = frees

    def clone(self):
        twin = HeapAllocator(self.heap_base, self.heap_limit)
        twin.restore(self.snapshot())
        return twin
