"""Execution-backend registry and factory.

Two interchangeable backends execute programs (see DESIGN.md,
"Dual-backend equivalence invariant"):

``reference``
    :class:`~repro.cpu.interpreter.Interpreter` -- one fully general
    dispatch per instruction.  The semantic ground truth.

``fast``
    :class:`~repro.cpu.fastinterp.FastInterpreter` -- predecoded
    per-instruction closures plus fused basic-block closures, compiled
    in two tiers: a taken-path block table and a *sandboxed* NT-path
    table whose stores route through the active memory journal and
    honour the volatile-overflow exit and the NT length budget.  Must
    be byte-identical to the reference on every observable
    (:meth:`RunResult.to_dict`); the differential harness in
    ``tests/test_backend_equivalence.py`` enforces this.

``make_interpreter`` is the single construction point used by the
engines.  An unknown backend name raises ``ValueError`` up front (it is
a config error), but a *failure inside* the fast backend's construction
falls back to the reference backend automatically: a run should never
die because an optimisation could not be applied.
"""

from __future__ import annotations

from repro.cpu.fastinterp import FastInterpreter
from repro.cpu.interpreter import Interpreter

BACKENDS = ('reference', 'fast')

_CLASSES = {
    'reference': Interpreter,
    'fast': FastInterpreter,
}


def make_interpreter(backend, program, memory, allocator, core, io,
                     costs, cache=None, detector=None, on_branch=None):
    """Build the interpreter for ``backend`` (a name in ``BACKENDS``)."""
    try:
        cls = _CLASSES[backend]
    except KeyError:
        raise ValueError('unknown backend %r (expected one of %s)'
                         % (backend, ', '.join(BACKENDS)))
    try:
        return cls(program, memory, allocator, core, io, costs,
                   cache=cache, detector=detector, on_branch=on_branch)
    except Exception as exc:
        if cls is Interpreter:
            raise
        # Automatic fallback: the fast backend is an optimisation, not
        # a requirement.
        from repro.resilience import events
        events.record('backend_construction_fallback',
                      program=program.name, error=repr(exc))
        return Interpreter(program, memory, allocator, core, io, costs,
                           cache=cache, detector=detector,
                           on_branch=on_branch)
