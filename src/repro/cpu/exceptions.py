"""Simulator fault model.

A :class:`SimFault` is the machine-level analogue of a hardware
exception (access violation, divide by zero, ...).  On the taken path a
fault terminates the program and is reported; on an NT-path the fault is
swallowed by PathExpander -- the path is squashed and the exception is
*not* delivered (Section 4.2(3)).
"""

from __future__ import annotations


class FaultKind:
    DIV_ZERO = 'div_zero'
    MEM_OOB = 'mem_oob'            # access outside the data segment
    NULL_ACCESS = 'null_access'    # access into the null guard page
    STACK_OVERFLOW = 'stack_overflow'
    BAD_JUMP = 'bad_jump'
    CALL_DEPTH = 'call_depth'


class SimFault(Exception):
    """A machine fault raised during simulated execution."""

    def __init__(self, kind, detail='', addr=None):
        super().__init__('%s%s' % (kind, (': %s' % detail) if detail else ''))
        self.kind = kind
        self.detail = detail
        self.addr = addr


class ProgramExit(Exception):
    """Raised when the program executes ``halt`` or the EXIT syscall."""

    def __init__(self, code=0):
        super().__init__('exit(%d)' % code)
        self.code = code
