"""Cycle-cost model.

The paper evaluates on a cycle-accurate out-of-order CMP (Table 2).  A
Python reproduction cannot be microarchitecturally faithful, so this
model assigns each instruction a fixed cost and adds memory-hierarchy
latency from the cache model, using Table 2's latencies.  All reported
results are overhead *ratios*, which this preserves (see DESIGN.md,
"Fidelity losses").

Table 2 parameters carried over directly:

* squash overhead: 10 cycles
* spawn overhead: 20 cycles
* L1: 16KB, 4-way, 32B lines, 3 cycles (2 for the non-CMP machine)
* L2: 1MB, 8-way, 32B lines, 10 cycles
* memory: 200 cycles
* BTB: 2K entries, 2-way
"""

from __future__ import annotations

from repro.isa.instructions import ALL_OPS

# Cost of a *skipped* predicated instruction (Section 4.4).
#
# Intended model, shared by both execution backends: a predicated
# instruction whose predicate is false still occupies one issue slot --
# it is squashed in the front end before it reads operands or reaches a
# functional unit, so it retires as a single-cycle NOP *regardless of
# the skipped opcode's nominal cost*.  The compiler only predicates the
# variable-fixing instructions (cheap moves/loads); charging the full
# opcode cost for a skipped `div` or `ld` would overstate the taken
# path's NT-entry overhead, and charging zero would hide the fetch
# bandwidth the fix instructions consume on every pass over the branch.
PREDICATED_SKIP_COST = 1

DEFAULT_OP_COSTS = {
    'mul': 3,
    'div': 12,
    'mod': 12,
    'call': 2,
    'ret': 2,
    'syscall': 6,
    'malloc': 30,
    'free': 20,
}


class CostModel:
    """Per-instruction cycle costs plus memory latencies."""

    def __init__(self, op_costs=None, default_cost=1,
                 l1_hit=3, l2_hit=10, memory=200,
                 spawn_overhead=20, squash_overhead=10):
        costs = dict(DEFAULT_OP_COSTS)
        if op_costs:
            costs.update(op_costs)
        self.default_cost = default_cost
        self.l1_hit = l1_hit
        self.l2_hit = l2_hit
        self.memory = memory
        self.spawn_overhead = spawn_overhead
        self.squash_overhead = squash_overhead
        # Precompute a dense cost table for the interpreter's hot loop.
        self._costs = costs

    def cost(self, op):
        return self._costs.get(op, self.default_cost)

    def table(self):
        """A complete per-opcode cost dict (no misses possible).

        Both backends hoist this into their hot loops so per-step cost
        lookup is a plain dict index instead of a method call.
        """
        table = {op: self.default_cost for op in ALL_OPS}
        table.update(self._costs)
        return table

    def memory_latency(self, l1_hit):
        """Latency of one data access given the L1 outcome.

        A miss is charged the L2 hit latency; the 200-cycle memory
        latency is folded in probabilistically by the cache model being
        cold-started per run (we keep L2 abstract: every L1 miss costs
        the L2 latency -- documented simplification).
        """
        return self.l1_hit if l1_hit else self.l2_hit
