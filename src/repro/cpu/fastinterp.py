"""Fast execution backend: predecoded dispatch + basic-block closures.

Two mechanisms, layered on the reference :class:`Interpreter`:

1. **Predecode.** The first time an address executes, its instruction
   is lowered into a specialized Python closure with the operands, the
   immediate, the next PC, and the static cycle cost bound at decode
   time.  ``step()`` then becomes one list index and one call -- no
   opcode string comparison chain, no per-step cost lookup.

2. **Basic-block closure compilation.** Straight-line runs of
   register-only instructions (see :data:`repro.isa.cfg.FUSEABLE_OPS`)
   are compiled -- via one ``exec`` of generated source per program --
   into a single closure that executes the whole run in one call and
   retires its cycles/instret in one update.  ``step_fast()``
   dispatches through these blocks.

Semantics are *identical* to the reference backend by construction
(DESIGN.md, "Dual-backend equivalence invariant"):

* fused blocks contain no branch, memory access, syscall, or detector
  hook, so nothing observable happens at a finer grain than a block;
* a faulting instruction inside a block (``div`` by zero, stack
  overflow) first flushes the cycles/instret of the instructions
  already executed and restores the faulting PC, reproducing the
  reference backend's mid-run state exactly;
* a block refuses to run when it would cross the interpreter's
  ``instret_limit`` (``max_instructions`` on the taken path, the
  NT-path length budget inside the sandbox -- see ``enter_nt``) and
  executes one instruction instead, so truncation points match;
* inside NT-paths ``step_fast`` dispatches through a second,
  *sandboxed* block table compiled from the same CFG partitioning:
  stores check L1 volatile overflow (flushing the completed prefix and
  returning ``'overflow'`` exactly where the reference would) and
  route through the active memory journal with the monitor-area
  carve-out inlined; everything that can terminate a path
  (``syscall``/``malloc``/``free``, predicated execution) is never
  fused and reaches the reference semantics per instruction;
* anything exotic (predicated instructions, ``malloc``/``free``,
  out-of-range PCs) falls back to the inherited reference ``step``.

Every fallback is automatic and per-address; a program that defeats
the block compiler entirely still runs, just on predecoded dispatch.
"""

from __future__ import annotations

from repro.cpu.exceptions import FaultKind, ProgramExit, SimFault
from repro.cpu.interpreter import Interpreter
from repro.cpu.timing import PREDICATED_SKIP_COST
from repro.isa.cfg import BLOCK_OPS, basic_runs
from repro.isa.instructions import Reg
from repro.memory.main_memory import NULL_GUARD, MainMemory
from repro.resilience import site_hook

_SHIFT_MASK = 63
_SP = Reg.SP

# Upper bound on instructions stitched into one superblock trace
# (compile-time source-size control; semantics are cap-independent).
_TRACE_CAP = 64


def _is_reg(value):
    return isinstance(value, int) and 0 <= value < Reg.COUNT


def _is_imm(value):
    return isinstance(value, int) and not isinstance(value, bool)


# ======================================================================
# per-instruction closure factories (predecode)
#
# Each factory returns a zero-argument closure reproducing one arm of
# Interpreter.step for one specific (pc, instr).  Mutable interpreter
# state that the engines swap mid-run (cache, cache_version,
# in_nt_path, on_branch, sandbox_unsafe, store_count) is read through
# ``interp`` at call time; everything fixed for the interpreter's
# lifetime (core, memory, detector, costs) is bound at decode time.


def _dec_li(interp, pc, instr, cost):
    core, a, imm, npc = interp.core, instr.a, instr.b, pc + 1

    def op_li():
        if core.pred:
            core.pred = False
        core.regs[a] = imm
        core.pc = npc
        core.cycles += cost
        core.instret += 1
    return op_li


def _dec_mov(interp, pc, instr, cost):
    core, a, b, npc = interp.core, instr.a, instr.b, pc + 1

    def op_mov():
        if core.pred:
            core.pred = False
        regs = core.regs
        regs[a] = regs[b]
        core.pc = npc
        core.cycles += cost
        core.instret += 1
    return op_mov


def _dec_addi(interp, pc, instr, cost):
    core, a, b, imm, npc = interp.core, instr.a, instr.b, instr.c, pc + 1
    if a != _SP:
        def op_addi():
            if core.pred:
                core.pred = False
            regs = core.regs
            regs[a] = regs[b] + imm
            core.pc = npc
            core.cycles += cost
            core.instret += 1
        return op_addi

    stack_limit = interp.memory.stack_limit

    def op_addi_sp():
        if core.pred:
            core.pred = False
        regs = core.regs
        value = regs[b] + imm
        regs[a] = value
        if value < stack_limit:
            raise SimFault(FaultKind.STACK_OVERFLOW, 'sp=%d' % value)
        core.pc = npc
        core.cycles += cost
        core.instret += 1
    return op_addi_sp


def _make_alu(combine):
    def factory(interp, pc, instr, cost):
        core, a, b, c, npc = (interp.core, instr.a, instr.b, instr.c,
                              pc + 1)

        def op_alu():
            if core.pred:
                core.pred = False
            regs = core.regs
            regs[a] = combine(regs[b], regs[c])
            core.pc = npc
            core.cycles += cost
            core.instret += 1
        return op_alu
    return factory


def _make_cmp(test):
    def factory(interp, pc, instr, cost):
        core, a, b, c, npc = (interp.core, instr.a, instr.b, instr.c,
                              pc + 1)

        def op_cmp():
            if core.pred:
                core.pred = False
            regs = core.regs
            regs[a] = 1 if test(regs[b], regs[c]) else 0
            core.pc = npc
            core.cycles += cost
            core.instret += 1
        return op_cmp
    return factory


def _dec_div(interp, pc, instr, cost):
    core, a, b, c, npc = interp.core, instr.a, instr.b, instr.c, pc + 1

    def op_div():
        if core.pred:
            core.pred = False
        regs = core.regs
        divisor = regs[c]
        if divisor == 0:
            raise SimFault(FaultKind.DIV_ZERO, 'pc=%d' % pc)
        value = regs[b]
        quotient = abs(value) // abs(divisor)
        if (value < 0) != (divisor < 0):
            quotient = -quotient
        regs[a] = quotient
        core.pc = npc
        core.cycles += cost
        core.instret += 1
    return op_div


def _dec_mod(interp, pc, instr, cost):
    core, a, b, c, npc = interp.core, instr.a, instr.b, instr.c, pc + 1

    def op_mod():
        if core.pred:
            core.pred = False
        regs = core.regs
        divisor = regs[c]
        if divisor == 0:
            raise SimFault(FaultKind.DIV_ZERO, 'pc=%d' % pc)
        value = regs[b]
        remainder = abs(value) % abs(divisor)
        regs[a] = -remainder if value < 0 else remainder
        core.pc = npc
        core.cycles += cost
        core.instret += 1
    return op_mod


def _dec_ld(interp, pc, instr, cost):
    core, a, b, off, npc = interp.core, instr.a, instr.b, instr.c, pc + 1
    mem = interp.memory
    mem_read = mem.read
    det = interp.detector
    l1_hit = interp.costs.l1_hit
    if type(mem) is MainMemory:
        cells, msize = mem.cells, mem.size

        def read(addr):
            if addr < NULL_GUARD or addr >= msize:
                mem_read(addr)      # raises the exact reference fault
            return cells[addr]
    else:
        read = mem_read

    def op_ld():
        if core.pred:
            core.pred = False
        regs = core.regs
        addr = regs[b] + off
        value = read(addr)
        regs[a] = value
        cycles = cost
        cache = interp.cache
        if cache is not None:
            cycles += cache.access(addr, False, interp.cache_version) \
                .cycles
        else:
            cycles += l1_hit
        if det is not None:
            cycles += det.on_load(addr, value, interp)
        core.pc = npc
        core.cycles += cycles
        core.instret += 1
        return None
    return op_ld


def _dec_st(interp, pc, instr, cost):
    core, a, b, off, npc = interp.core, instr.a, instr.b, instr.c, pc + 1
    mem_write = interp.memory.write
    det = interp.detector
    l1_hit = interp.costs.l1_hit

    def op_st():
        if core.pred:
            core.pred = False
        regs = core.regs
        addr = regs[b] + off
        value = regs[a]
        interp.store_count += 1
        cycles = cost
        cache = interp.cache
        if cache is not None:
            result = cache.access(addr, True, interp.cache_version)
            cycles += result.cycles
            if result.volatile_overflow and interp.in_nt_path:
                core.cycles += cycles
                return 'overflow'
        else:
            cycles += l1_hit
        mem_write(addr, value)
        if det is not None:
            cycles += det.on_store(addr, value, interp)
        core.pc = npc
        core.cycles += cycles
        core.instret += 1
        return None
    return op_st


def _dec_br(interp, pc, instr, cost):
    core, a, target, npc = interp.core, instr.a, instr.b, pc + 1

    def op_br():
        if core.pred:
            core.pred = False
        taken = core.regs[a] != 0
        core.pc = target if taken else npc
        core.cycles += cost
        core.instret += 1
        on_branch = interp.on_branch
        if on_branch is not None:
            on_branch(pc, taken, instr)
        return None
    return op_br


def _dec_jmp(interp, pc, instr, cost):
    core, target = interp.core, instr.a

    def op_jmp():
        if core.pred:
            core.pred = False
        core.pc = target
        core.cycles += cost
        core.instret += 1
    return op_jmp


def _dec_call(interp, pc, instr, cost):
    core, target, ret_to = interp.core, instr.a, pc + 1
    mem_write = interp.memory.write
    stack_limit = interp.memory.stack_limit

    def op_call():
        if core.pred:
            core.pred = False
        if core.call_depth >= core.MAX_CALL_DEPTH:
            raise SimFault(FaultKind.CALL_DEPTH, 'pc=%d' % pc)
        regs = core.regs
        sp = regs[_SP] - 1
        if sp < stack_limit:
            raise SimFault(FaultKind.STACK_OVERFLOW, 'sp=%d' % sp)
        regs[_SP] = sp
        mem_write(sp, ret_to)
        core.call_depth += 1
        core.pc = target
        core.cycles += cost
        core.instret += 1
    return op_call


def _dec_ret(interp, pc, instr, cost):
    core = interp.core
    mem_read = interp.memory.read

    def op_ret():
        if core.pred:
            core.pred = False
        regs = core.regs
        sp = regs[_SP]
        core.pc = mem_read(sp)
        regs[_SP] = sp + 1
        core.call_depth -= 1
        core.cycles += cost
        core.instret += 1
    return op_ret


def _dec_push(interp, pc, instr, cost):
    core, a, npc = interp.core, instr.a, pc + 1
    mem_write = interp.memory.write
    stack_limit = interp.memory.stack_limit

    def op_push():
        if core.pred:
            core.pred = False
        regs = core.regs
        sp = regs[_SP] - 1
        if sp < stack_limit:
            raise SimFault(FaultKind.STACK_OVERFLOW, 'sp=%d' % sp)
        regs[_SP] = sp
        mem_write(sp, regs[a])
        core.pc = npc
        core.cycles += cost
        core.instret += 1
    return op_push


def _dec_pop(interp, pc, instr, cost):
    core, a, npc = interp.core, instr.a, pc + 1
    mem_read = interp.memory.read

    def op_pop():
        if core.pred:
            core.pred = False
        regs = core.regs
        sp = regs[_SP]
        regs[a] = mem_read(sp)
        regs[_SP] = sp + 1
        core.pc = npc
        core.cycles += cost
        core.instret += 1
    return op_pop


def _dec_syscall(interp, pc, instr, cost):
    core, code = interp.core, instr.a

    def op_syscall():
        if core.pred:
            core.pred = False
        if interp.in_nt_path and not interp.sandbox_unsafe:
            # Unsafe event: do not perform; the engine squashes.
            return 'unsafe'
        event = interp._do_syscall(code, core.regs)
        core.cycles += cost
        core.instret += 1
        return event
    return op_syscall


def _dec_assert(interp, pc, instr, cost):
    core, a, assert_id, npc = interp.core, instr.a, instr.b, pc + 1
    det = interp.detector

    def op_assert():
        if core.pred:
            core.pred = False
        cycles = cost
        if core.regs[a] == 0 and det is not None:
            cycles += det.on_assert_fail(assert_id, pc, interp)
        core.pc = npc
        core.cycles += cycles
        core.instret += 1
    return op_assert


def _dec_halt(interp, pc, instr, cost):
    core = interp.core

    def op_halt():
        if core.pred:
            core.pred = False
        raise ProgramExit(0)
    return op_halt


def _dec_nop(interp, pc, instr, cost):
    core, npc = interp.core, pc + 1

    def op_nop():
        if core.pred:
            core.pred = False
        core.pc = npc
        core.cycles += cost
        core.instret += 1
    return op_nop


def _dec_predicated(interp, pc, instr, cost):
    """Predicated instructions: a fast path for the overwhelmingly
    common skip (core.pred false outside NT-entries), deferring actual
    predicated *execution* to the fully general reference step."""
    core, npc = interp.core, pc + 1
    ref_step = Interpreter.step

    def op_predicated():
        if not core.pred:
            core.pc = npc
            core.cycles += PREDICATED_SKIP_COST
            core.instret += 1
            return None
        return ref_step(interp)
    return op_predicated


_DECODERS = {
    'li': _dec_li,
    'mov': _dec_mov,
    'addi': _dec_addi,
    'add': _make_alu(lambda x, y: x + y),
    'sub': _make_alu(lambda x, y: x - y),
    'mul': _make_alu(lambda x, y: x * y),
    'and': _make_alu(lambda x, y: x & y),
    'or': _make_alu(lambda x, y: x | y),
    'xor': _make_alu(lambda x, y: x ^ y),
    'shl': _make_alu(lambda x, y: x << (y & _SHIFT_MASK)),
    'shr': _make_alu(lambda x, y: x >> (y & _SHIFT_MASK)),
    'slt': _make_cmp(lambda x, y: x < y),
    'sle': _make_cmp(lambda x, y: x <= y),
    'seq': _make_cmp(lambda x, y: x == y),
    'sne': _make_cmp(lambda x, y: x != y),
    'sgt': _make_cmp(lambda x, y: x > y),
    'sge': _make_cmp(lambda x, y: x >= y),
    'div': _dec_div,
    'mod': _dec_mod,
    'ld': _dec_ld,
    'st': _dec_st,
    'br': _dec_br,
    'jmp': _dec_jmp,
    'call': _dec_call,
    'ret': _dec_ret,
    'push': _dec_push,
    'pop': _dec_pop,
    'syscall': _dec_syscall,
    'assert': _dec_assert,
    'halt': _dec_halt,
    'nop': _dec_nop,
    # 'malloc'/'free' intentionally absent: allocator-dominated and
    # rare, they run through the inherited reference step.
}


# ======================================================================
# basic-block source generation

_ALU_SYMBOL = {'add': '+', 'sub': '-', 'mul': '*',
               'and': '&', 'or': '|', 'xor': '^'}
_CMP_SYMBOL = {'slt': '<', 'sle': '<=', 'seq': '==',
               'sne': '!=', 'sgt': '>', 'sge': '>='}


def _emit_pure(instr):
    """Source lines for a register-only instruction that can neither
    fault nor reach a hook, or None when ``instr`` is not one."""
    op, a, b, c = instr.op, instr.a, instr.b, instr.c
    if op == 'nop':
        return []
    if op == 'li':
        if _is_reg(a) and _is_imm(b):
            return ['r[%d] = %d' % (a, b)]
        return None
    if op == 'mov':
        if _is_reg(a) and _is_reg(b):
            return ['r[%d] = r[%d]' % (a, b)]
        return None
    if op == 'addi':
        if a != _SP and _is_reg(a) and _is_reg(b) and _is_imm(c):
            return ['r[%d] = r[%d] + %d' % (a, b, c)]
        return None
    if not (_is_reg(a) and _is_reg(b) and _is_reg(c)):
        return None
    if op in _ALU_SYMBOL:
        return ['r[%d] = r[%d] %s r[%d]' % (a, b, _ALU_SYMBOL[op], c)]
    if op in _CMP_SYMBOL:
        return ['r[%d] = 1 if r[%d] %s r[%d] else 0'
                % (a, b, _CMP_SYMBOL[op], c)]
    if op == 'shl':
        return ['r[%d] = r[%d] << (r[%d] & 63)' % (a, b, c)]
    if op == 'shr':
        return ['r[%d] = r[%d] >> (r[%d] & 63)' % (a, b, c)]
    return None


class _Emitted:
    """One fused instruction's generated code and bookkeeping."""

    __slots__ = ('lines', 'static', 'risky', 'cy', 'cache')

    def __init__(self, lines, static, risky=False, cy=False,
                 cache=False):
        self.lines = lines
        self.static = static    # statically known cycle cost
        self.risky = risky      # may raise SimFault mid-block
        self.cy = cy            # accumulates dynamic cycles into _cy
        self.cache = cache      # touches the cache model


class _BlockCompiler:
    """Generates closure source for fused runs of one interpreter.

    The generated function reproduces the reference backend's per-step
    state machine exactly (see the module docstring): hooks fire in
    reference order with ``core.pc`` set to the hooked instruction, and
    a ``SimFault`` unwinds through a handler that retires the cycles
    and instret of the instructions already completed and parks
    ``core.pc`` on the faulting instruction.

    With ``sandboxed=True`` the compiler emits the NT-path variant of
    every block: stores check for L1 volatile overflow (flushing the
    completed prefix and returning ``'overflow'`` mid-block, exactly
    where the reference per-instruction loop would stop) and write
    through the active memory journal -- first store to a non-monitor
    address records the old value -- instead of plain memory.
    """

    def __init__(self, interp, sandboxed=False, runs_map=None):
        self.interp = interp
        self.sandboxed = sandboxed
        # leader -> (count, terminator) for every compiled run; lets
        # ``compile`` stitch traces across absorbed jmps.
        self.runs_map = runs_map if runs_map is not None else {}
        self.cost = interp._cost
        self.has_det = interp.detector is not None
        self.has_cache = interp.cache is not None
        self.l1_hit = interp.costs.l1_hit
        # Plain MainMemory accesses can be inlined (bounds guard + list
        # index); the detailed-CMP memory views cannot.
        self.inline_read = type(interp.memory) is MainMemory
        # The cache's last-line memo can be inlined too (one compare
        # chain instead of a method call) when the line size is a power
        # of two, so the line number is a shift.  Engines may swap
        # interp.cache mid-run (CMP borrowed caches), but always for
        # one built from the same config, so the geometry constants
        # bound here stay valid.
        self.line_shift = None
        if self.has_cache:
            line_words = interp.cache.line_words
            if line_words > 0 and line_words & (line_words - 1) == 0:
                self.line_shift = line_words.bit_length() - 1
                self.cache_hit = interp.cache.hit_latency

    # ------------------------------------------------------------------

    def compile(self, leader, count, terminator):
        """Returns ``(name, source, extra_namespace)`` or None.

        When the run ends in an absorbed ``jmp`` whose target leads
        another compiled run, the successor's instructions are stitched
        into the same closure (a superblock trace), repeating until a
        conditional branch, an unfusable run, a cycle, or the length
        cap.  The stitched tail is a *copy* -- the successor run still
        compiles to its own block for direct entry -- and every
        per-instruction emission carries its real pc, so faults,
        overflow exits and detector hooks are indistinguishable from
        the unstitched blocks.
        """
        segments = [(leader, count, terminator)]
        seen = {leader}
        total_count = count
        term = terminator
        while (term is not None and term.op == 'jmp'
               and _is_imm(term.a)):
            nxt = self.runs_map.get(term.a)
            if nxt is None or term.a in seen \
                    or total_count + nxt[0] > _TRACE_CAP:
                break
            segments.append((term.a, nxt[0], nxt[1]))
            seen.add(term.a)
            total_count += nxt[0]
            term = nxt[1]
        compiled = self._compile_trace(segments)
        if compiled is None and len(segments) > 1:
            # A stitched successor defeated emission; the plain
            # single-run block may still compile.
            compiled = self._compile_trace(segments[:1])
        return compiled

    def _compile_trace(self, segments):
        code = self.interp.code
        cost = self.cost
        leader = segments[0][0]
        last_leader, last_count, terminator = segments[-1]
        parts = []
        pcs = []
        for seg_index, (seg_leader, seg_count, seg_term) \
                in enumerate(segments):
            for offset in range(seg_count):
                pc = seg_leader + offset
                emitted = self._emit(code[pc], pc, len(parts), leader)
                if emitted is None:
                    return None
                parts.append(emitted)
                pcs.append(pc)
            if seg_index < len(segments) - 1:
                # Mid-trace absorbed jmp: no code, but it occupies a
                # retired-instruction position so the fault flush and
                # partial cycle sums stay index-exact.
                parts.append(_Emitted([], cost['jmp']))
                pcs.append(seg_leader + seg_count)
        retired = len(parts)
        total = sum(part.static for part in parts)
        risky = any(part.risky for part in parts)
        has_cy = any(part.cy for part in parts)
        uses_cache = any(part.cache for part in parts)
        if terminator is not None:
            if terminator.op == 'jmp':
                if not _is_imm(terminator.a):
                    return None
            elif not (_is_reg(terminator.a)
                      and _is_imm(terminator.b)):
                return None
            retired += 1
            total += cost[terminator.op]

        extra = {}
        name = '_b%d' % leader
        src = [
            'def %s():' % name,
            '    core = _core',
            '    if core.instret + %d > _interp.instret_limit:'
            % retired,
            '        return _fb(%d)' % leader,
        ]
        if code[leader].pred:
            # A predicated leader with the predicate set must *execute*
            # (and keep the predicate) -- dispatch it singly.  With the
            # predicate clear (the steady state), it is a skip like any
            # other predicated instruction in the block.
            src.append('    if core.pred:')
            src.append('        return _fb(%d)' % leader)
        else:
            src.append('    if core.pred:')
            src.append('        core.pred = False')
        src.append('    r = core.regs')
        if uses_cache:
            src.append('    _cache = _interp.cache')
            src.append('    _cv = _interp.cache_version')
        if has_cy:
            src.append('    _cy = 0')
        body_indent = '    '
        if risky:
            src.append('    _i = 0')
            src.append('    try:')
            body_indent = '        '
        body_empty = True
        for part in parts:
            for line in part.lines:
                src.append(body_indent + line)
                body_empty = False
        if risky:
            if body_empty:                       # pragma: no cover
                src.append(body_indent + 'pass')
            # Partial static-cycle sums, indexed by the faulting
            # instruction's block position.
            partials = []
            acc = 0
            for part in parts:
                partials.append(acc)
                acc += part.static
            sp_name = '_SP%d' % leader
            extra[sp_name] = tuple(partials)
            cy_flush = '_cy + %s[_i]' % sp_name if has_cy \
                else '%s[_i]' % sp_name
            if len(segments) > 1:
                # Stitched trace: block position != leader offset past
                # the first segment, so park pc via a position table.
                pc_name = '_PC%d' % leader
                extra[pc_name] = tuple(pcs)
                fault_pc = '%s[_i]' % pc_name
            else:
                fault_pc = '%d + _i' % leader
            src.append('    except _SimFault:')
            src.append('        core.pc = ' + fault_pc)
            src.append('        core.cycles += ' + cy_flush)
            src.append('        core.instret += _i')
            src.append('        raise')
        cy_commit = '_cy + %d' % total if has_cy else '%d' % total

        if terminator is not None and terminator.op == 'br':
            br_pc = last_leader + last_count
            br_name = '_br%d' % br_pc
            extra[br_name] = terminator
            src.append('    _tk = r[%d] != 0' % terminator.a)
            src.append('    core.pc = %d if _tk else %d'
                       % (terminator.b, br_pc + 1))
            src.append('    core.cycles += ' + cy_commit)
            src.append('    core.instret += %d' % retired)
            src.append('    _ob = _interp.on_branch')
            src.append('    if _ob is not None:')
            src.append('        _ob(%d, _tk, %s)' % (br_pc, br_name))
            src.append('    return None')
        else:
            if terminator is not None:           # absorbed jmp
                next_pc = terminator.a
            else:
                next_pc = last_leader + last_count
            src.append('    core.pc = %d' % next_pc)
            src.append('    core.cycles += ' + cy_commit)
            src.append('    core.instret += %d' % retired)
        return name, '\n'.join(src) + '\n', extra

    # ------------------------------------------------------------------

    def _read_lines(self):
        """Source reading memory at ``_a`` into ``_v``.

        With plain MainMemory the bounds guard is inlined and the
        read is a list index; the guarded fallback call raises the
        exact reference fault (NULL_ACCESS/MEM_OOB) for bad addresses.
        """
        if self.inline_read:
            return ['if _a < %d or _a >= _msize:' % NULL_GUARD,
                    '    _rd(_a)',
                    '_v = _cells[_a]']
        return ['_v = _rd(_a)']

    def _write_lines(self):
        """Source writing ``_v`` to memory at ``_a``.

        With plain MainMemory the bounds guard and the journal test are
        inlined; out-of-bounds addresses take the fallback call, which
        raises the exact reference fault.  The sandboxed variant
        assumes an active journal (the engine begins one before any
        sandboxed block can run) and inlines MainMemory.write's
        first-write-only journal capture with the monitor-area
        carve-out.
        """
        if not self.inline_read:
            return ['_wr(_a, _v)']
        guard = ['if _a < %d or _a >= _msize:' % NULL_GUARD,
                 '    _wr(_a, _v)']
        if self.sandboxed:
            return guard + [
                'elif _a in _jl or _mb <= _a < _ml:',
                '    _cells[_a] = _v',
                'else:',
                '    _jl[_a] = _cells[_a]',
                '    _cells[_a] = _v']
        return guard + [
            'elif _mem._journal is None:',
            '    _cells[_a] = _v',
            'else:',
            '    _wr(_a, _v)']

    def _emit(self, instr, pc, index, leader):
        op, a, b, c = instr.op, instr.a, instr.b, instr.c
        if instr.pred:
            # Inside a block the predicate register is provably false
            # (the prologue cleared it; no fused instruction sets it),
            # so any predicated instruction is statically a skip.
            return _Emitted([], PREDICATED_SKIP_COST)
        cost = self.cost[op]
        pure = _emit_pure(instr)
        if pure is not None:
            return _Emitted(pure, cost)
        if op == 'addi':                         # SP destination
            if not (_is_reg(b) and _is_imm(c)):
                return None
            return _Emitted([
                '_i = %d' % index,
                '_v = r[%d] + %d' % (b, c),
                'r[%d] = _v' % a,
                'if _v < _stk:',
                "    raise _SimFault(_FK.STACK_OVERFLOW,"
                " 'sp=%d' % _v)",
            ], cost, risky=True)
        if op in ('div', 'mod'):
            if not (_is_reg(a) and _is_reg(b) and _is_reg(c)):
                return None
            lines = [
                '_i = %d' % index,
                '_d = r[%d]' % c,
                'if _d == 0:',
                "    raise _SimFault(_FK.DIV_ZERO, 'pc=%d')" % pc,
                '_n = r[%d]' % b,
            ]
            if op == 'div':
                lines += ['_q = abs(_n) // abs(_d)',
                          'if (_n < 0) != (_d < 0):',
                          '    _q = -_q',
                          'r[%d] = _q' % a]
            else:
                lines += ['_m = abs(_n) % abs(_d)',
                          'r[%d] = -_m if _n < 0 else _m' % a]
            return _Emitted(lines, cost, risky=True)
        if op == 'ld':
            if not (_is_reg(a) and _is_reg(b) and _is_imm(c)):
                return None
            lines = ['_i = %d' % index,
                     '_a = r[%d] + %d' % (b, c)]
            lines.extend(self._read_lines())
            lines.append('r[%d] = _v' % a)
            static = cost
            cy = False
            if self.has_cache:
                if self.line_shift is not None:
                    # Inlined last-line memo: reproduces the memo-hit
                    # arm of Cache.access exactly (tick, lru, hits),
                    # delegating to the method on a memo miss with the
                    # tick restored so the method re-bumps it.
                    lines.extend([
                        '_t = _cache._tick + 1',
                        '_cache._tick = _t',
                        '_ln = _cache._last_line',
                        'if _ln is not None'
                        ' and _cache._last_tag == _a >> %d'
                        ' and _ln.version == _cv:' % self.line_shift,
                        '    _ln.lru = _t',
                        '    _cache.hits += 1',
                        '    _cy += %d' % self.cache_hit,
                        'else:',
                        '    _cache._tick = _t - 1',
                        '    _cy += _cache.access(_a, False, _cv)'
                        '.cycles',
                    ])
                else:
                    lines.append(
                        '_cy += _cache.access(_a, False, _cv).cycles')
                cy = True
            else:
                static += self.l1_hit
            if self.has_det:
                lines.append('core.pc = %d' % pc)
                lines.append('_cy += _dl(_a, _v, _interp)')
                cy = True
            return _Emitted(lines, static, risky=True, cy=cy,
                            cache=self.has_cache)
        if op == 'st':
            if not (_is_reg(a) and _is_reg(b) and _is_imm(c)):
                return None
            lines = ['_i = %d' % index,
                     '_a = r[%d] + %d' % (b, c),
                     '_v = r[%d]' % a,
                     '_interp.store_count += 1']
            static = cost
            cy = False
            if self.has_cache:
                if self.line_shift is not None:
                    # Inlined last-line memo (see the load arm).  A
                    # memo hit can never signal volatile overflow (the
                    # preallocated hit result never does), so the
                    # sandboxed overflow exit lives on the miss arm
                    # only.
                    lines.extend([
                        '_t = _cache._tick + 1',
                        '_cache._tick = _t',
                        '_ln = _cache._last_line',
                        'if _ln is not None'
                        ' and _cache._last_tag == _a >> %d'
                        ' and _ln.version == _cv:' % self.line_shift,
                        '    _ln.dirty = True',
                        '    _ln.lru = _t',
                        '    _cache.hits += 1',
                        '    _tc = %d' % self.cache_hit,
                        'else:',
                        '    _cache._tick = _t - 1',
                        '    _res = _cache.access(_a, True, _cv)',
                        '    _tc = _res.cycles',
                    ])
                    if self.sandboxed:
                        # NT-path store: L1 may refuse to buffer
                        # another volatile line.  The reference charges
                        # the store's full cycles, leaves pc/instret on
                        # the store and returns 'overflow'; flush the
                        # completed prefix exactly as the SimFault
                        # handler would.
                        lines.extend([
                            '    if _res.volatile_overflow:',
                            '        core.pc = %d' % pc,
                            '        core.cycles += _cy + _SP%d[%d]'
                            ' + %d + _tc' % (leader, index, cost),
                            '        core.instret += %d' % index,
                            "        return 'overflow'",
                        ])
                elif self.sandboxed:
                    lines.extend([
                        '_res = _cache.access(_a, True, _cv)',
                        '_tc = _res.cycles',
                        'if _res.volatile_overflow:',
                        '    core.pc = %d' % pc,
                        '    core.cycles += _cy + _SP%d[%d] + %d + _tc'
                        % (leader, index, cost),
                        '    core.instret += %d' % index,
                        "    return 'overflow'",
                    ])
                else:
                    lines.append(
                        '_tc = _cache.access(_a, True, _cv).cycles')
                # The store's own cache latency is committed only once
                # the write succeeds (the reference discards it when
                # memory.write faults), but the cache state mutation
                # and store_count survive -- exactly as in step().
                lines.extend(self._write_lines())
                lines.append('_cy += _tc')
                cy = True
            else:
                lines.extend(self._write_lines())
                static += self.l1_hit
            if self.has_det:
                lines.append('core.pc = %d' % pc)
                lines.append('_cy += _ds(_a, _v, _interp)')
                cy = True
            return _Emitted(lines, static, risky=True, cy=cy,
                            cache=self.has_cache)
        if op == 'push':
            if not _is_reg(a):
                return None
            lines = [
                '_i = %d' % index,
                '_s = r[%d] - 1' % _SP,
                'if _s < _stk:',
                "    raise _SimFault(_FK.STACK_OVERFLOW,"
                " 'sp=%d' % _s)",
                'r[%d] = _s' % _SP,
                '_a = _s',
                '_v = r[%d]' % a,
            ]
            lines.extend(self._write_lines())
            return _Emitted(lines, cost, risky=True)
        if op == 'pop':
            if not _is_reg(a):
                return None
            lines = ['_i = %d' % index,
                     '_a = r[%d]' % _SP]
            lines.extend(self._read_lines())
            lines.append('r[%d] = _v' % a)
            lines.append('r[%d] = _a + 1' % _SP)
            return _Emitted(lines, cost, risky=True)
        if op == 'assert' and not self.has_det:
            # Without a detector an assert is semantically a costed nop.
            return _Emitted([], cost)
        return None


# ======================================================================


class FastInterpreter(Interpreter):
    """Drop-in replacement for :class:`Interpreter` (same contract)."""

    __slots__ = ('_n', '_ops', '_fast', '_fast_nt', '_runs', '_ref_thunk',
                 'block_compile_failed', 'block_count', 'nt_block_count',
                 '_fault_hook')

    def __init__(self, program, memory, allocator, core, io, costs,
                 cache=None, detector=None, on_branch=None):
        super().__init__(program, memory, allocator, core, io, costs,
                         cache=cache, detector=detector,
                         on_branch=on_branch)
        self._n = len(self.code)
        # Lazily filled: decoding every address eagerly would penalise
        # short-lived interpreters (one is built per NT-path in the
        # detailed CMP engine).  The sandboxed block table is likewise
        # only compiled once the first NT-path actually runs.
        self._ops = [None] * self._n
        self._fast = None
        self._fast_nt = None
        self._runs = None
        self._ref_thunk = None
        self.block_compile_failed = False
        self.block_count = 0
        self.nt_block_count = 0
        # Chaos-harness hook ('fastinterp.block'): None unless a fault
        # plan arms the site, so steady-state dispatch never pays for it
        # (see repro.resilience.faults.site_hook).
        self._fault_hook = site_hook('fastinterp.block')

    # ------------------------------------------------------------------
    # dispatch

    def step(self):
        """Execute one instruction through the predecoded table."""
        pc = self.core.pc
        if 0 <= pc < self._n:
            fn = self._ops[pc]
            if fn is None:
                fn = self._decode(pc)
            return fn()
        # Out-of-range (including the reference backend's negative-PC
        # indexing quirk): defer to the fully general implementation.
        return Interpreter.step(self)

    def step_fast(self):
        """Execute one fused basic block (or one instruction).

        Dispatches through the taken-path block table, or -- inside an
        NT-path -- through the sandboxed variant, whose blocks honour
        the journal, the volatile-overflow exit and the NT instret
        budget (installed by ``enter_nt``).
        """
        if self._fault_hook is not None:
            self._fault_hook()
        if self.in_nt_path:
            table = self._fast_nt
            if table is None:
                table = self._build_fast_table(sandboxed=True)
        else:
            table = self._fast
            if table is None:
                table = self._build_fast_table()
        pc = self.core.pc
        if 0 <= pc < self._n:
            fn = table[pc]
            if fn is None:
                fn = self._decode_into(table, pc)
            return fn()
        return Interpreter.step(self)

    def drive_taken(self, limit):
        """Taken-path main loop over the block table.

        Inlines ``step_fast``'s dispatch (the per-call wrapper is a
        measurable share of monitored-run time).  NT-paths spawned by
        the branch callback run to completion inside the dispatched
        closure, so ``in_nt_path`` is always False at this level.
        """
        core = self.core
        table = self._fast
        if table is None:
            table = self._build_fast_table()
        n = self._n
        ref_step = Interpreter.step
        hook = self._fault_hook
        if hook is not None:
            # Chaos variant: identical dispatch, plus a per-iteration
            # injection poll.  Kept out of the steady-state loop below.
            while core.instret < limit:
                hook()
                pc = core.pc
                if 0 <= pc < n:
                    fn = table[pc]
                    if fn is None:
                        fn = self._decode_into(table, pc)
                    fn()
                else:
                    ref_step(self)
            return
        while core.instret < limit:
            pc = core.pc
            if 0 <= pc < n:
                fn = table[pc]
                if fn is None:
                    fn = self._decode_into(table, pc)
                fn()
            else:
                ref_step(self)

    # ------------------------------------------------------------------
    # predecode

    def _decode(self, pc):
        instr = self.code[pc]
        fn = None
        factory = _dec_predicated if instr.pred \
            else _DECODERS.get(instr.op)
        if factory is not None:
            try:
                fn = factory(self, pc, instr, self._cost[instr.op])
            except Exception:
                fn = None
        if fn is None:
            # Unspecialized / undecodable: the inherited reference
            # step handles it with full generality.
            fn = self._ref_thunk
            if fn is None:
                interp = self
                ref_step = Interpreter.step

                def fn():
                    return ref_step(interp)
                self._ref_thunk = fn
        self._ops[pc] = fn
        return fn

    def _decode_into(self, table, pc):
        fn = self._ops[pc]
        if fn is None:
            fn = self._decode(pc)
        table[pc] = fn
        return fn

    def _step_at(self, pc):
        """Budget fallback used by fused blocks: execute exactly one
        instruction at ``pc`` through the per-instruction table."""
        fn = self._ops[pc]
        if fn is None:
            fn = self._decode(pc)
        return fn()

    # ------------------------------------------------------------------
    # basic-block closure compilation

    def _block_ops(self):
        ops = BLOCK_OPS
        if self.detector is None:
            ops = ops | frozenset({'assert'})
        return ops

    def _build_fast_table(self, sandboxed=False):
        """Compile one block table -- taken-path or sandboxed NT-path.

        Both variants are compiled from the same CFG partitioning
        (computed once and cached on ``_runs``); only the store/budget
        emission differs (see :class:`_BlockCompiler`).
        """
        table = [None] * self._n
        if sandboxed:
            self._fast_nt = table
        else:
            self._fast = table
        runs = self._runs
        if runs is None:
            runs = self._runs = basic_runs(self.program,
                                           self._block_ops())
        compiler = _BlockCompiler(
            self, sandboxed=sandboxed,
            runs_map={l: (c, t) for l, c, t in runs})
        sources = []
        entries = []
        extras = {}
        for leader, count, terminator in runs:
            try:
                compiled = compiler.compile(leader, count, terminator)
            except Exception:
                compiled = None
            if compiled is None:
                continue
            name, src, extra = compiled
            sources.append(src)
            entries.append((leader, name))
            extras.update(extra)
        if not sources:
            return table
        namespace = {
            '_core': self.core,
            '_interp': self,
            '_fb': self._step_at,
            '_SimFault': SimFault,
            '_FK': FaultKind,
            '_stk': self.memory.stack_limit,
            '_rd': self.memory.read,
            '_wr': self.memory.write,
        }
        if compiler.inline_read:
            namespace['_cells'] = self.memory.cells
            namespace['_msize'] = self.memory.size
            if sandboxed:
                namespace['_jl'] = self.memory.nt_journal
                namespace['_mb'] = self.memory.monitor_base
                namespace['_ml'] = self.memory.monitor_limit
            else:
                namespace['_mem'] = self.memory
        if self.detector is not None:
            namespace['_dl'] = self.detector.on_load
            namespace['_ds'] = self.detector.on_store
        namespace.update(extras)
        filename = '<fastblocks%s:%s>' % ('-nt' if sandboxed else '',
                                          self.program.name)
        try:
            exec(compile('\n'.join(sources), filename, 'exec'),
                 namespace)
            for leader, name in entries:
                table[leader] = namespace[name]
            if sandboxed:
                self.nt_block_count = len(entries)
            else:
                self.block_count = len(entries)
        except Exception:
            # Automatic fallback: run on predecoded dispatch only.
            self.block_compile_failed = True
            table = [None] * self._n
            if sandboxed:
                self._fast_nt = table
            else:
                self._fast = table
        return table
