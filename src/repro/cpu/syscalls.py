"""I/O context backing the syscall instructions.

All syscalls are *unsafe events* for NT-paths: their side effects reach
outside the memory sandbox (Section 3.2), so the engines squash an
NT-path before performing one.  The I/O context is therefore only ever
mutated by the taken path.
"""

from __future__ import annotations


class IOContext:
    """Program input/output streams.

    Args:
        text_input: characters consumed by the GETC syscall.
        int_input: integers consumed by the READ_INT syscall.
    """

    __slots__ = ('text_input', 'int_input', '_text_pos', '_int_pos',
                 'output', 'int_output', 'syscall_count')

    def __init__(self, text_input='', int_input=None):
        self.text_input = text_input
        self.int_input = list(int_input or [])
        self._text_pos = 0
        self._int_pos = 0
        self.output = []
        self.int_output = []
        self.syscall_count = 0

    def getc(self):
        if self._text_pos >= len(self.text_input):
            return -1
        char = self.text_input[self._text_pos]
        self._text_pos += 1
        return ord(char)

    def read_int(self):
        if self._int_pos >= len(self.int_input):
            return -1
        value = self.int_input[self._int_pos]
        self._int_pos += 1
        return value

    def putc(self, code):
        self.output.append(chr(code & 0x10FFFF))

    def print_int(self, value):
        self.output.append(str(value))
        self.output.append('\n')
        self.int_output.append(value)

    @property
    def output_text(self):
        return ''.join(self.output)

    # ------------------------------------------------------------------
    # speculative-I/O support (the paper's future-work OS extension):
    # input cursors and output lengths are snapshotted at NT-path spawn
    # and restored at squash, so syscalls executed inside the sandbox
    # leave no trace.

    def snapshot(self):
        return (self._text_pos, self._int_pos, len(self.output),
                len(self.int_output), self.syscall_count)

    def restore(self, snap):
        text_pos, int_pos, out_len, int_out_len, count = snap
        self._text_pos = text_pos
        self._int_pos = int_pos
        del self.output[out_len:]
        del self.int_output[int_out_len:]
        self.syscall_count = count
