"""Architectural core state."""

from __future__ import annotations

from repro.isa.instructions import Reg

_MASK64 = (1 << 63) - 1


class Core:
    """One processor core's architectural state.

    ``pred`` is the special predicate register of Section 4.4: set by
    the spawn mechanism at NT-path entry, cleared when the first
    unpredicated instruction executes, so the compiler-inserted
    variable-fixing instructions run exactly once per NT-path entrance.
    """

    __slots__ = ('regs', 'pc', 'pred', 'call_depth', 'cycles', 'instret',
                 'lcg_state', 'core_id')

    MAX_CALL_DEPTH = 256

    def __init__(self, core_id=0, rand_seed=0x1234567):
        self.core_id = core_id
        self.regs = [0] * Reg.COUNT
        self.pc = 0
        self.pred = False
        self.call_depth = 0
        self.cycles = 0
        self.instret = 0
        self.lcg_state = rand_seed

    def reset(self, entry, sp):
        self.regs = [0] * Reg.COUNT
        self.regs[Reg.SP] = sp
        self.regs[Reg.FP] = sp
        self.pc = entry
        self.pred = False
        self.call_depth = 0
        self.cycles = 0
        self.instret = 0

    def next_rand(self):
        """Deterministic LCG; state is checkpointed with the core."""
        self.lcg_state = (self.lcg_state * 6364136223846793005
                          + 1442695040888963407) & _MASK64
        return (self.lcg_state >> 17) & 0x7FFFFFFF
