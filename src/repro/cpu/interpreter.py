"""The execution core: instruction semantics + cost accounting.

The interpreter executes one instruction per :meth:`Interpreter.step`.
PathExpander's engines own the fetch loop; they observe branches through
the ``on_branch`` callback (where NT-path spawning decisions are made)
and NT-path-terminating conditions through the step return value:

* ``None``      -- normal completion
* ``'unsafe'``  -- a syscall was reached in NT-path mode; it was *not*
  performed (side effects cannot be sandboxed) and the engine must
  squash the path.
* ``'overflow'`` -- an NT-path store could not be buffered in L1 (every
  way of the set already holds a volatile line); squash required.

Faults raise :class:`~repro.cpu.exceptions.SimFault`; program
termination raises :class:`~repro.cpu.exceptions.ProgramExit`.
"""

from __future__ import annotations

from repro.cpu.exceptions import FaultKind, ProgramExit, SimFault
from repro.cpu.timing import PREDICATED_SKIP_COST
from repro.isa.instructions import Reg, Syscall

_SHIFT_MASK = 63

# Effectively "no limit"; engines lower it to config.max_instructions.
NO_INSTRET_LIMIT = 1 << 62


class Interpreter:
    """Executes a :class:`~repro.isa.program.Program` on a core.

    This is the *reference* backend: one fully general dispatch per
    instruction.  :class:`~repro.cpu.fastinterp.FastInterpreter`
    subclasses it with a predecoded dispatch table and basic-block
    closures; the two must stay semantically identical (see DESIGN.md,
    "Dual-backend equivalence invariant").
    """

    __slots__ = ('program', 'code', 'memory', 'allocator', 'core', 'io',
                 'costs', 'cache', 'detector', 'on_branch', 'in_nt_path',
                 'cache_version', 'store_count', 'sandbox_unsafe',
                 '_cost', 'instret_limit', '_outer_limit')

    def __init__(self, program, memory, allocator, core, io, costs,
                 cache=None, detector=None, on_branch=None):
        self.program = program
        self.code = program.code
        self.memory = memory
        self.allocator = allocator
        self.core = core
        self.io = io
        self.costs = costs
        self.cache = cache
        self.detector = detector
        self.on_branch = on_branch
        self.in_nt_path = False
        self.cache_version = 0
        self.store_count = 0
        # With OS sandboxing of unsafe events (paper future work),
        # syscalls execute speculatively inside NT-paths; the engine
        # rolls the I/O context back at squash.
        self.sandbox_unsafe = False
        # Dense per-opcode cost table: a plain dict index on the hot
        # path instead of a CostModel.cost() call per instruction.
        self._cost = costs.table()
        # Instruction budget honoured by the fast backend's fused
        # blocks; the reference backend steps singly, so its engine
        # loop enforces the budget between steps instead.
        self.instret_limit = NO_INSTRET_LIMIT
        self._outer_limit = NO_INSTRET_LIMIT

    # ------------------------------------------------------------------
    # NT-path state transition
    #
    # Entering/leaving the sandbox changes three pieces of interpreter
    # state at once: the NT flag, the cache version under which lines
    # are tagged volatile, and the instret budget (inside an NT-path
    # the budget is the path length cap, not max_instructions -- the
    # reference engine loop never checks the global cap there either).
    # One call pair keeps every spawn site consistent and cheap.

    def enter_nt(self, cache_version, instret_limit):
        self.in_nt_path = True
        self.cache_version = cache_version
        self._outer_limit = self.instret_limit
        self.instret_limit = instret_limit

    def exit_nt(self):
        self.in_nt_path = False
        self.cache_version = 0
        self.instret_limit = self._outer_limit

    # ------------------------------------------------------------------

    def step(self):
        core = self.core
        pc = core.pc
        try:
            instr = self.code[pc]
        except IndexError:
            raise SimFault(FaultKind.BAD_JUMP, 'pc=%d' % pc)
        op = instr.op

        if instr.pred:
            if not core.pred:
                core.pc = pc + 1
                core.cycles += PREDICATED_SKIP_COST
                core.instret += 1
                return None
        elif core.pred:
            core.pred = False

        regs = core.regs
        cost = self._cost[op]
        event = None

        if op == 'ld':
            addr = regs[instr.b] + instr.c
            value = self.memory.read(addr)
            regs[instr.a] = value
            if self.cache is not None:
                result = self.cache.access(addr, False, self.cache_version)
                cost += result.cycles
            else:
                cost += self.costs.l1_hit
            if self.detector is not None:
                cost += self.detector.on_load(addr, value, self)
            core.pc = pc + 1
        elif op == 'st':
            addr = regs[instr.b] + instr.c
            value = regs[instr.a]
            self.store_count += 1
            if self.cache is not None:
                result = self.cache.access(addr, True, self.cache_version)
                cost += result.cycles
                if result.volatile_overflow and self.in_nt_path:
                    core.cycles += cost
                    return 'overflow'
            else:
                cost += self.costs.l1_hit
            self.memory.write(addr, value)
            if self.detector is not None:
                cost += self.detector.on_store(addr, value, self)
            core.pc = pc + 1
        elif op == 'br':
            taken = regs[instr.a] != 0
            core.pc = instr.b if taken else pc + 1
            core.cycles += cost
            core.instret += 1
            if self.on_branch is not None:
                self.on_branch(pc, taken, instr)
            return None
        elif op == 'li':
            regs[instr.a] = instr.b
            core.pc = pc + 1
        elif op == 'mov':
            regs[instr.a] = regs[instr.b]
            core.pc = pc + 1
        elif op == 'addi':
            value = regs[instr.b] + instr.c
            regs[instr.a] = value
            if instr.a == Reg.SP and value < self.memory.stack_limit:
                raise SimFault(FaultKind.STACK_OVERFLOW, 'sp=%d' % value)
            core.pc = pc + 1
        elif op == 'add':
            regs[instr.a] = regs[instr.b] + regs[instr.c]
            core.pc = pc + 1
        elif op == 'sub':
            regs[instr.a] = regs[instr.b] - regs[instr.c]
            core.pc = pc + 1
        elif op == 'mul':
            regs[instr.a] = regs[instr.b] * regs[instr.c]
            core.pc = pc + 1
        elif op == 'div':
            divisor = regs[instr.c]
            if divisor == 0:
                raise SimFault(FaultKind.DIV_ZERO, 'pc=%d' % pc)
            # C-style truncating division.
            quotient = abs(regs[instr.b]) // abs(divisor)
            if (regs[instr.b] < 0) != (divisor < 0):
                quotient = -quotient
            regs[instr.a] = quotient
            core.pc = pc + 1
        elif op == 'mod':
            divisor = regs[instr.c]
            if divisor == 0:
                raise SimFault(FaultKind.DIV_ZERO, 'pc=%d' % pc)
            value = regs[instr.b]
            remainder = abs(value) % abs(divisor)
            regs[instr.a] = -remainder if value < 0 else remainder
            core.pc = pc + 1
        elif op in ('slt', 'sle', 'seq', 'sne', 'sgt', 'sge'):
            lhs = regs[instr.b]
            rhs = regs[instr.c]
            if op == 'slt':
                regs[instr.a] = 1 if lhs < rhs else 0
            elif op == 'sle':
                regs[instr.a] = 1 if lhs <= rhs else 0
            elif op == 'seq':
                regs[instr.a] = 1 if lhs == rhs else 0
            elif op == 'sne':
                regs[instr.a] = 1 if lhs != rhs else 0
            elif op == 'sgt':
                regs[instr.a] = 1 if lhs > rhs else 0
            else:
                regs[instr.a] = 1 if lhs >= rhs else 0
            core.pc = pc + 1
        elif op == 'and':
            regs[instr.a] = regs[instr.b] & regs[instr.c]
            core.pc = pc + 1
        elif op == 'or':
            regs[instr.a] = regs[instr.b] | regs[instr.c]
            core.pc = pc + 1
        elif op == 'xor':
            regs[instr.a] = regs[instr.b] ^ regs[instr.c]
            core.pc = pc + 1
        elif op == 'shl':
            regs[instr.a] = regs[instr.b] << (regs[instr.c] & _SHIFT_MASK)
            core.pc = pc + 1
        elif op == 'shr':
            regs[instr.a] = regs[instr.b] >> (regs[instr.c] & _SHIFT_MASK)
            core.pc = pc + 1
        elif op == 'jmp':
            core.pc = instr.a
        elif op == 'call':
            if core.call_depth >= core.MAX_CALL_DEPTH:
                raise SimFault(FaultKind.CALL_DEPTH, 'pc=%d' % pc)
            sp = regs[Reg.SP] - 1
            if sp < self.memory.stack_limit:
                raise SimFault(FaultKind.STACK_OVERFLOW, 'sp=%d' % sp)
            regs[Reg.SP] = sp
            self.memory.write(sp, pc + 1)
            core.call_depth += 1
            core.pc = instr.a
        elif op == 'ret':
            sp = regs[Reg.SP]
            core.pc = self.memory.read(sp)
            regs[Reg.SP] = sp + 1
            core.call_depth -= 1
        elif op == 'push':
            sp = regs[Reg.SP] - 1
            if sp < self.memory.stack_limit:
                raise SimFault(FaultKind.STACK_OVERFLOW, 'sp=%d' % sp)
            regs[Reg.SP] = sp
            self.memory.write(sp, regs[instr.a])
            core.pc = pc + 1
        elif op == 'pop':
            sp = regs[Reg.SP]
            regs[instr.a] = self.memory.read(sp)
            regs[Reg.SP] = sp + 1
            core.pc = pc + 1
        elif op == 'syscall':
            if self.in_nt_path and not self.sandbox_unsafe:
                # Unsafe event: do not perform; the engine squashes.
                return 'unsafe'
            event = self._do_syscall(instr.a, regs)
        elif op == 'assert':
            if regs[instr.a] == 0 and self.detector is not None:
                cost += self.detector.on_assert_fail(instr.b, pc, self)
            core.pc = pc + 1
        elif op == 'malloc':
            base = self.allocator.malloc(regs[instr.b])
            regs[instr.a] = base
            if self.detector is not None:
                self.detector.on_alloc(base, regs[instr.b], self)
            core.pc = pc + 1
        elif op == 'free':
            addr = regs[instr.a]
            ok = self.allocator.free(addr)
            if self.detector is not None:
                cost += self.detector.on_free(addr, ok, self)
            core.pc = pc + 1
        elif op == 'halt':
            raise ProgramExit(0)
        elif op == 'nop':
            core.pc = pc + 1
        else:                                    # pragma: no cover
            raise SimFault(FaultKind.BAD_JUMP, 'bad op %r' % op)

        core.cycles += cost
        core.instret += 1
        return event

    # The engines' main loops call ``step_fast``; the fast backend
    # overrides it with basic-block dispatch, the reference backend
    # steps one instruction at a time.
    step_fast = step

    def drive_taken(self, limit):
        """Run the taken path until ``core.instret >= limit``.

        Returns only at the instruction budget (the engine marks the
        run truncated); program end and faults propagate as
        exceptions.  Step return values need no inspection here:
        ``'unsafe'``/``'overflow'`` can only occur inside NT-paths,
        which the branch callback runs to completion before
        returning.  The fast backend overrides this with a loop over
        its block tables.
        """
        core = self.core
        step = self.step
        while core.instret < limit:
            step()

    # ------------------------------------------------------------------

    def _do_syscall(self, code, regs):
        io = self.io
        io.syscall_count += 1
        if code == Syscall.PRINT_INT:
            io.print_int(regs[Reg.A1])
        elif code == Syscall.PUTC:
            io.putc(regs[Reg.A1])
        elif code == Syscall.GETC:
            regs[Reg.RV] = io.getc()
        elif code == Syscall.READ_INT:
            regs[Reg.RV] = io.read_int()
        elif code == Syscall.EXIT:
            self.core.pc += 1
            raise ProgramExit(regs[Reg.A1])
        elif code == Syscall.RAND:
            regs[Reg.RV] = self.core.next_rand()
        elif code == Syscall.TIME:
            regs[Reg.RV] = self.core.next_rand() & 0xFFFF
        else:
            raise SimFault(FaultKind.BAD_JUMP, 'bad syscall %r' % code)
        self.core.pc += 1
        return None
