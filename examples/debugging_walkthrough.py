"""Debugging walkthrough: why was my bug (not) found?

A test engineer's session with the library's introspection tools: run a
buggy application under PathExpander with tracing on, inspect which
NT-paths ran and why they stopped, disassemble the branch that guards
the bug, and use the configuration knobs to understand a miss.

The subject is bc's *undetected* bug (the paper's second miss
mechanism): the spill-flush branch saturates its exercise counter
before the bug-triggering state arises.  The trace shows the early
explorations; raising the counter threshold (or enabling the random
selection factor) surfaces the bug.

Run:  python examples/debugging_walkthrough.py
"""

from repro.apps.bugs import classify_reports
from repro.apps.registry import get_app
from repro.core.runner import make_detector
from repro.harness.trace import TracedRun
from repro.isa.disasm import function_listing


def main():
    app = get_app('bc_calc')
    program = app.compile(0)
    text, ints = app.default_input()
    bugs = app.bugs(0)

    print('=== 1. traced PathExpander run (paper defaults) ===')
    traced = TracedRun(program, detector=make_detector('ccured'),
                       config=app.make_config(collect_nt_details=True),
                       text_input=text, int_input=ints)
    result = traced.run()
    print(traced.format(limit=12))

    detected, _ = classify_reports(result.reports, bugs)
    print('\ndetected bugs:', sorted(detected))
    missed = [bug for bug in bugs if bug.bug_id not in detected]
    for bug in missed:
        print('missed: %s (%s)\n  %s'
              % (bug.bug_id, bug.miss_reason, bug.description))

    print('\n=== 2. the code guarding the missed bug ===')
    print(function_listing(program, 'note_op'))

    print('\n=== 3. how often was the flush edge explored? ===')
    flush_spawns = [record for record in result.nt_details
                    if 'note_op' in program.location(record.branch_addr)]
    print('%d NT-paths entered note_op, all early in the run '
          '(spawn instret: %s...)'
          % (len(flush_spawns),
             [record.spawn_instret for record in flush_spawns[:5]]))
    print('by the time the window base rises, the edge counter has '
          'saturated.')

    print('\n=== 4. relaxing the blocking mechanism ===')
    for label, overrides in (
            ('counter threshold 1000', {'nt_counter_threshold': 1000}),
            ('random selection, rate 0.3',
             {'selection_random_rate': 0.3})):
        traced = TracedRun(program, detector=make_detector('ccured'),
                           config=app.make_config(**overrides),
                           text_input=text, int_input=ints)
        result = traced.run()
        detected, _ = classify_reports(result.reports, bugs)
        print('%-28s -> detected %s' % (label, sorted(detected)))

    print('\nThe miss is mechanistic, exactly as the paper describes '
          'for the bc bug:\nthe entry edge was "intensively exercised '
          'before the bug triggered".')


if __name__ == '__main__':
    main()
