"""The paper's Figure 1 scenario, end to end.

print_tokens2 version 10 contains the motivating bug of the paper: the
quoted-token scan misses the terminator check and overruns the token
buffer -- but only when a token starts with a quotation mark and has no
closing quote.  With an everyday input (no quoted tokens at all) a
dynamic checker never sees the buggy path.

This example runs that exact scenario with both memory checkers and
both PathExpander implementations (standard and CMP), showing:

* the baseline misses the bug;
* PathExpander finds it through an NT-path with the same input;
* the CMP optimisation finds the same bug at a fraction of the
  standard configuration's overhead.

Run:  python examples/figure1_print_tokens2.py
"""

from repro.apps.bugs import classify_reports
from repro.apps.registry import get_app
from repro.core.config import Mode
from repro.core.runner import make_detector, run_program


def run_once(app, program, detector_name, mode, text):
    config = app.make_config(mode=mode)
    return run_program(program, detector=make_detector(detector_name),
                       config=config, text_input=text)


def main():
    app = get_app('print_tokens2')
    program = app.compile(10)            # version 10: the Figure 1 bug
    bugs = app.bugs(10)
    text, _ints = app.default_input()
    print('input: %r' % text.strip())
    print('(no token starts with a quotation mark -> the buggy path '
          'is never taken)\n')

    for detector_name in ('ccured', 'iwatcher'):
        baseline = run_once(app, program, detector_name,
                            Mode.BASELINE, text)
        standard = run_once(app, program, detector_name,
                            Mode.STANDARD, text)
        cmp_run = run_once(app, program, detector_name, Mode.CMP, text)

        found_base, _ = classify_reports(baseline.reports, bugs)
        found_std, _ = classify_reports(standard.reports, bugs)
        found_cmp, _ = classify_reports(cmp_run.reports, bugs)

        std_overhead = standard.overhead_vs(baseline)
        cmp_overhead = cmp_run.overhead_vs(baseline)

        print('%s:' % detector_name)
        print('  baseline  : %d bug(s) detected' % len(found_base))
        print('  standard  : %d bug(s) detected, overhead %5.1f%%, '
              '%d NT-paths'
              % (len(found_std), 100 * std_overhead,
                 standard.nt_spawned))
        print('  CMP       : %d bug(s) detected, overhead %5.1f%%'
              % (len(found_cmp), 100 * cmp_overhead))
        for report in standard.reports:
            if any(bug.matches(report) for bug in bugs):
                print('  -> %s at %s' % (report.kind, report.location))
        print()

        assert not found_base and found_std and found_cmp
        assert cmp_overhead <= std_overhead

    print('Both checkers detect the Figure 1 overrun only with '
          'PathExpander, and the CMP option hides the NT-path cost.')


if __name__ == '__main__':
    main()
