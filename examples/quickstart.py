"""Quickstart: find a bug on a path your input never takes.

Compiles a small MiniC program whose buffer overrun hides behind an
``if (n > 1000)`` branch, runs it with an everyday input under the
CCured-style checker -- once without and once with PathExpander -- and
shows that only PathExpander surfaces the bug, without perturbing the
program's observable behaviour.

Run:  python examples/quickstart.py
"""

from repro import (Mode, PathExpanderConfig, compile_minic,
                   run_program)

SOURCE = '''
int totals[8];

int main() {
  int n = read_int();
  int *scratch = malloc(4);

  for (int i = 0; i < n; i = i + 1) {
    totals[i & 7] = totals[i & 7] + i;
  }

  if (n > 1000) {
    /* bulk mode -- never taken for everyday inputs.
       BUG: writes scratch[4], one word past the allocation. */
    for (int i = 0; i <= 4; i = i + 1) {
      scratch[i] = totals[i & 7];
    }
  }

  free(scratch);
  print_int(totals[3]);
  return 0;
}
'''


def main():
    program = compile_minic(SOURCE, name='quickstart')
    everyday_input = [12]

    baseline = run_program(
        program, detector='ccured',
        config=PathExpanderConfig(mode=Mode.BASELINE),
        int_input=everyday_input)
    print('baseline run: output=%r, reports=%d, coverage=%.0f%%'
          % (baseline.output.strip(), len(baseline.reports),
             100 * baseline.baseline_coverage))

    expanded = run_program(
        program, detector='ccured',
        config=PathExpanderConfig(mode=Mode.STANDARD),
        int_input=everyday_input)
    print('PathExpander: output=%r, NT-paths=%d, coverage=%.0f%% -> %.0f%%'
          % (expanded.output.strip(), expanded.nt_spawned,
             100 * expanded.baseline_coverage,
             100 * expanded.total_coverage))

    assert expanded.output == baseline.output, \
        'NT-paths are sandboxed: observable behaviour is unchanged'

    print()
    if expanded.reports:
        for report in expanded.reports:
            where = 'NT-path' if report.in_nt_path else 'taken path'
            print('FOUND: %s at %s (on a %s)'
                  % (report.kind, report.location, where))
    else:
        print('no bugs found')

    assert baseline.reports == [], 'the input never takes the buggy path'
    assert any(r.kind == 'buffer_overrun' for r in expanded.reports)
    print('\nThe overrun was detected on a path the input never took.')


if __name__ == '__main__':
    main()
