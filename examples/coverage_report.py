"""Coverage deep-dive: what PathExpander adds to a single test run.

Runs every benchmark application with its everyday input and prints a
per-application coverage report -- which fraction of branch edges the
input exercised, what the NT-paths added, and where NT-paths were
terminated.  This is the Figure-7-style view a test engineer would use
to decide whether a test suite needs more inputs.

Run:  python examples/coverage_report.py
"""

from repro.apps.registry import WORKLOAD_APP_NAMES, get_app
from repro.core.config import Mode
from repro.core.runner import run_program


def bar(fraction, width=32):
    filled = int(round(fraction * width))
    return '[' + '#' * filled + '.' * (width - filled) + ']'


def main():
    print('%-14s %-38s %-38s %s' % ('application', 'baseline',
                                    'with PathExpander', 'NT-paths'))
    total_base = 0.0
    total_expanded = 0.0
    termination_totals = {}
    for name in WORKLOAD_APP_NAMES:
        app = get_app(name)
        program = app.compile(0)
        text, ints = app.default_input()
        result = run_program(program, detector=None,
                             config=app.make_config(mode=Mode.STANDARD),
                             text_input=text, int_input=ints)
        total_base += result.baseline_coverage
        total_expanded += result.total_coverage
        for reason, count in result.nt_terminations.items():
            termination_totals[reason] = \
                termination_totals.get(reason, 0) + count
        print('%-14s %s %4.0f%%  %s %4.0f%%  %5d'
              % (name, bar(result.baseline_coverage),
                 100 * result.baseline_coverage,
                 bar(result.total_coverage),
                 100 * result.total_coverage, result.nt_spawned))
    count = len(WORKLOAD_APP_NAMES)
    print('%-14s %s %4.0f%%  %s %4.0f%%'
          % ('AVERAGE', bar(total_base / count), 100 * total_base / count,
             bar(total_expanded / count), 100 * total_expanded / count))

    print('\nNT-path terminations across all runs:')
    total = sum(termination_totals.values()) or 1
    for reason, count in sorted(termination_totals.items(),
                                key=lambda item: -item[1]):
        print('  %-12s %6d  (%.1f%%)' % (reason, count,
                                         100 * count / total))
    print('\n(paper: single-run branch coverage rises from 40% to 65% '
          'on average)')


if __name__ == '__main__':
    main()
