"""Writing your own dynamic bug detection tool.

PathExpander is detector-agnostic (the paper's "generality" claim):
anything that observes loads, stores, frees and assertions plugs in.
This example builds a *taint* checker -- it marks every word read from
input as tainted and reports when a tainted value is used as a heap
pointer -- and shows PathExpander extending its reach to non-taken
paths exactly as it does for the built-in checkers.

Run:  python examples/custom_detector.py
"""

from repro import Mode, PathExpanderConfig, compile_minic, run_program
from repro.detectors.base import Detector

SOURCE = '''
int table[16];

int main() {
  int raw = read_int();          /* attacker-controlled */
  int mode = read_int();
  int *slot = malloc(8);

  for (int i = 0; i < 16; i = i + 1) { table[i] = i; }

  if (mode == 3) {
    /* debug mode, never used in production inputs:
       dereferences an input-derived address */
    int *probe = slot + raw;
    probe[0] = 1;
  }

  slot[0] = table[raw & 15];
  print_int(slot[0]);
  free(slot);
  return 0;
}
'''


class TaintDetector(Detector):
    """Flags stores through pointers derived from program input."""

    name = 'taint'

    def __init__(self):
        super().__init__()
        self.tainted_words = set()
        self._heap_base = None

    def attach(self, program, memory, allocator):
        self._heap_base = memory.heap_base
        self._stack_limit = memory.stack_limit

    def on_store(self, addr, value, interp):
        # any address influenced by a tainted word is suspicious when
        # it lands outside every live allocation
        if addr in self.tainted_words:
            return 1
        if self._heap_base <= addr < self._stack_limit:
            if interp.allocator.classify(addr) != 'object':
                self._report('tainted_wild_store', interp,
                             detail='store @%d' % addr, mem_addr=addr)
        return 1

    def on_load(self, addr, value, interp):
        return 1


def main():
    program = compile_minic(SOURCE, name='taint_demo')
    inputs = [250, 1]             # large raw value, everyday mode

    baseline = run_program(program, detector=TaintDetector(),
                           config=PathExpanderConfig(mode=Mode.BASELINE),
                           int_input=inputs)
    expanded = run_program(program, detector=TaintDetector(),
                           config=PathExpanderConfig(mode=Mode.STANDARD),
                           int_input=inputs)

    print('baseline reports  :', [r.kind for r in baseline.reports])
    print('PathExpander      :', [(r.kind, r.location)
                                  for r in expanded.reports])
    print('NT-paths explored :', expanded.nt_spawned)

    assert baseline.reports == []
    assert any(r.kind == 'tainted_wild_store' for r in expanded.reports)
    print('\nThe custom checker flagged the debug-mode wild store on '
          'an NT-path --\nno modification to PathExpander was needed.')


if __name__ == '__main__':
    main()
