"""Table 4: bugs detected, baseline vs PathExpander (0 -> 21 of 38)."""

from conftest import emit
from repro.harness.experiments import run_table4


def test_table4_bug_detection(benchmark):
    result = benchmark.pedantic(run_table4, rounds=1, iterations=1)
    emit(result)
    total = [row for row in result.rows if row[0] == 'TOTAL'][0]
    assert total[2] == 38
    assert total[3] == 0, 'baseline must detect nothing'
    assert total[4] == 21, 'PathExpander detects 21 of 38 (paper)'
    rows = {(row[0], row[1]): row for row in result.rows[:-1]}
    # the paper's stated per-app constraints
    assert rows[('assertions', 'print_tokens')][3:] == [0, 5]
    assert rows[('ccured', 'bc_calc')][4] == 1
    assert rows[('ccured', 'go_app')][4] == 0
    assert rows[('ccured', 'man_fmt')][4] == 1
