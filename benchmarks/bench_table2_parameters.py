"""Table 2: simulated machine and PathExpander parameters."""

from conftest import emit
from repro.harness.experiments import run_table2


def test_table2_parameters(benchmark):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    emit(result)
    values = dict(result.rows)
    assert values['spawn overhead'] == '20 cycles'
    assert values['squash overhead'] == '10 cycles'
    assert values['NTPathCounterThreshold'] == '5'
    assert values['MaxNumNTPaths'] == '32'
