"""Ablation: why NT-paths only follow taken edges (Section 4.2(3))."""

from conftest import emit
from repro.harness.experiments import run_ablation_nt_from_nt


def test_ablation_nt_from_nt(benchmark):
    result = benchmark.pedantic(run_ablation_nt_from_nt, rounds=1,
                                iterations=1)
    emit(result)
    follow, explore = result.rows
    cov_follow = float(follow[1].rstrip('%'))
    cov_explore = float(explore[1].rstrip('%'))
    crash_follow = float(follow[2].rstrip('%'))
    crash_explore = float(explore[2].rstrip('%'))
    # the paper's trade-off: a bit more coverage, notably more crashes
    assert cov_explore >= cov_follow
    assert crash_explore > crash_follow
