"""Validation: CMP scheduling model vs the detailed Fig. 6 engine."""

from conftest import emit
from repro.harness.experiments import run_val_cmp_model


def test_val_cmp_model(benchmark):
    result = benchmark.pedantic(run_val_cmp_model, rounds=1,
                                iterations=1)
    emit(result)
    for app, model, detailed, same, _nm, _nd in result.rows:
        assert same == 'yes', '%s: detections must agree' % app
        assert float(model.rstrip('%')) < 9.9
        assert float(detailed.rstrip('%')) < 9.9
