"""Parameter sensitivity (Section 7.6)."""

from conftest import emit
from repro.harness.experiments import run_fig10


def test_fig10_parameters(benchmark):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    emit(result)
    rows = result.row_dict()
    # longer NT-paths: more coverage, more overhead
    cov_short = float(rows['MaxNTPathLength=10'][1].rstrip('%'))
    cov_long = float(rows['MaxNTPathLength=1000'][1].rstrip('%'))
    assert cov_long >= cov_short
    ovh_short = float(rows['MaxNTPathLength=10'][2].rstrip('%'))
    ovh_long = float(rows['MaxNTPathLength=1000'][2].rstrip('%'))
    assert ovh_long > ovh_short
    # higher threshold: more NT-paths
    assert rows['NTPathCounterThreshold=15'][3] > \
        rows['NTPathCounterThreshold=1'][3]
