"""Extension: OS sandboxing of unsafe events (paper future work).

The paper predicts that with OS support for sandboxing unsafe events,
"more than 90% of NT-Paths may potentially execute up to 1000
instructions" (Section 3.2).
"""

from conftest import emit
from repro.harness.experiments import run_ext_os_sandbox


def test_ext_os_sandbox(benchmark):
    result = benchmark.pedantic(run_ext_os_sandbox, rounds=1,
                                iterations=1)
    emit(result)
    for app, plain, sandboxed in result.rows:
        plain_pct = float(plain.rstrip('%'))
        sandboxed_pct = float(sandboxed.rstrip('%'))
        assert sandboxed_pct >= plain_pct
        assert sandboxed_pct > 90.0, \
            'paper prediction: >90%% survival with OS sandboxing (%s)' \
            % app
