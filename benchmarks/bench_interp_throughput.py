"""Interpreter throughput: reference vs. fast execution backend.

Two synthetic kernels bound the backends' throughput (MIPS):

* ``alu_baseline`` -- a detector-free, cache-light ALU loop in baseline
  mode.  Its body is one straight-line run, so the fast backend fuses
  it into a single closure: this measures the best-case dispatch win.
* ``mem_monitored`` -- a load/store loop with data-dependent branches,
  run in standard mode under CCured with NT-path spawning enabled.
  NT-paths step per instruction in both backends, so this measures the
  realistic monitored-run win.

Both kernels are also differential tests: the run must produce a
byte-identical :class:`RunResult` on both backends before a timing is
accepted.

Run standalone (CI perf-smoke does) to write ``BENCH_interp.json``::

    PYTHONPATH=src python benchmarks/bench_interp_throughput.py \
        --json BENCH_interp.json --check-ratio 2.0

``--check-ratio R`` exits non-zero if the fast backend is below R x
reference on the ``alu_baseline`` kernel.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

if __package__ is None and __name__ == '__main__':
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        'src'))

from repro.core.config import PathExpanderConfig
from repro.core.runner import make_detector, run_program
from repro.isa.instructions import Instr
from repro.isa.program import Program


def build_alu_kernel(iters=200_000):
    """A fuse-friendly ALU loop: ~30 straight-line register ops per
    iteration, one backward branch."""
    code = []
    emit = code.append
    emit(Instr('li', 1, 0))            # induction variable
    emit(Instr('li', 2, iters))        # trip count
    for reg in range(3, 11):
        emit(Instr('li', reg, reg * 7 + 1))
    loop = len(code)
    for _ in range(4):
        emit(Instr('add', 3, 3, 4))
        emit(Instr('xor', 4, 4, 5))
        emit(Instr('sub', 5, 5, 6))
        emit(Instr('and', 6, 6, 7))
        emit(Instr('or', 7, 7, 8))
        emit(Instr('shl', 8, 8, 9))
        emit(Instr('shr', 9, 9, 10))
    emit(Instr('addi', 1, 1, 1))
    emit(Instr('slt', 11, 1, 2))
    emit(Instr('br', 11, loop))
    emit(Instr('halt'))
    return Program(code, {'main': 0}, 0, 64, name='alu_kernel')


def build_mem_kernel(iters=40_000):
    """A memory/branch loop: a read-modify-write on a global word plus
    a data-dependent branch that the selector turns into NT-paths."""
    code = []
    emit = code.append
    emit(Instr('li', 1, 0))            # induction variable
    emit(Instr('li', 2, iters))        # trip count
    emit(Instr('li', 3, 16))           # global array base
    emit(Instr('li', 6, 0))            # accumulator
    loop = len(code)
    emit(Instr('li', 4, 0))
    emit(Instr('addi', 4, 3, 3))
    emit(Instr('ld', 5, 4, 0))
    emit(Instr('addi', 5, 5, 1))
    emit(Instr('st', 5, 4, 0))
    emit(Instr('add', 6, 6, 5))
    emit(Instr('and', 7, 1, 5))
    emit(Instr('sgt', 8, 7, 6))
    emit(Instr('br', 8, len(code) + 3))    # rarely taken
    emit(Instr('addi', 6, 6, 1))
    emit(Instr('jmp', len(code) + 1))
    emit(Instr('addi', 6, 6, 2))           # branch target
    emit(Instr('addi', 1, 1, 1))
    emit(Instr('slt', 9, 1, 2))
    emit(Instr('br', 9, loop))
    emit(Instr('halt'))
    return Program(code, {'main': 0}, 0, 64, name='mem_kernel')


SCENARIOS = {
    'alu_baseline': {
        'build': build_alu_kernel,
        'mode': 'baseline',
        'detector': 'none',
        'overrides': {},
    },
    'mem_monitored': {
        'build': build_mem_kernel,
        'mode': 'standard',
        'detector': 'ccured',
        # Shorter counter-reset interval so the selector keeps
        # spawning NT-paths across the whole run.
        'overrides': {'max_nt_path_length': 100,
                      'counter_reset_interval': 100_000},
    },
}


def _run_once(program, scenario, backend):
    config = PathExpanderConfig(mode=scenario['mode'], backend=backend,
                                **scenario['overrides'])
    start = time.perf_counter()
    result = run_program(program, detector=make_detector(
        scenario['detector']), config=config)
    return time.perf_counter() - start, result.to_dict()


def measure_scenario(name, scale=1.0, repeats=3):
    scenario = SCENARIOS[name]
    build = scenario['build']
    default_iters = build.__defaults__[0]
    program = build(max(1000, int(default_iters * scale)))
    row = {'mode': scenario['mode'], 'detector': scenario['detector']}
    reference_dict = None
    for backend in ('reference', 'fast'):
        best = None
        for _ in range(repeats):
            seconds, data = _run_once(program, scenario, backend)
            best = seconds if best is None else min(best, seconds)
        if backend == 'reference':
            reference_dict = data
        elif data != reference_dict:
            raise AssertionError(
                'backend mismatch on %s: fast RunResult differs from '
                'reference' % name)
        instret = data['instret_taken'] + data['instret_nt']
        row[backend] = {'seconds': round(best, 4),
                        'mips': round(instret / best / 1e6, 3)}
    row['instret'] = (reference_dict['instret_taken']
                      + reference_dict['instret_nt'])
    row['nt_spawned'] = reference_dict['nt_spawned']
    row['speedup'] = round(row['reference']['seconds']
                           / row['fast']['seconds'], 3)
    return row


def measure(scale=1.0, repeats=3):
    payload = {'benchmark': 'interp_throughput', 'scale': scale,
               'repeats': repeats, 'scenarios': {}}
    for name in SCENARIOS:
        payload['scenarios'][name] = measure_scenario(
            name, scale=scale, repeats=repeats)
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split('\n')[0])
    parser.add_argument('--json', default=None, metavar='PATH',
                        help='write the measurements to PATH')
    parser.add_argument('--scale', type=float, default=1.0,
                        help='kernel iteration multiplier')
    parser.add_argument('--repeats', type=int, default=3,
                        help='timing repetitions (best-of)')
    parser.add_argument('--check-ratio', type=float, default=None,
                        metavar='R',
                        help='fail unless fast >= R x reference on the '
                             'alu_baseline kernel')
    args = parser.parse_args(argv)

    payload = measure(scale=args.scale, repeats=args.repeats)
    for name, row in payload['scenarios'].items():
        print('%-14s ref=%6.2f MIPS  fast=%6.2f MIPS  speedup=%.2fx  '
              'nt_spawned=%d'
              % (name, row['reference']['mips'], row['fast']['mips'],
                 row['speedup'], row['nt_spawned']))
    if args.json:
        with open(args.json, 'w') as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write('\n')
        print('wrote', args.json)
    if args.check_ratio is not None:
        speedup = payload['scenarios']['alu_baseline']['speedup']
        if speedup < args.check_ratio:
            print('FAIL: alu_baseline speedup %.2fx < required %.2fx'
                  % (speedup, args.check_ratio), file=sys.stderr)
            return 1
        print('ratio gate OK: %.2fx >= %.2fx'
              % (speedup, args.check_ratio))
    return 0


def test_interp_throughput(benchmark):
    """Pytest wrapper: a scaled-down run of both scenarios, asserting
    the fast backend wins on the fuse-friendly kernel."""
    payload = benchmark.pedantic(
        lambda: measure(scale=0.1, repeats=1), rounds=1, iterations=1)
    for name, row in payload['scenarios'].items():
        print('%s: speedup=%.2fx' % (name, row['speedup']))
    assert payload['scenarios']['alu_baseline']['speedup'] > 1.0


if __name__ == '__main__':
    sys.exit(main())
