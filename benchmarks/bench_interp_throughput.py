"""Interpreter throughput: reference vs. fast execution backend.

Three synthetic kernels bound the backends' throughput (MIPS):

* ``alu_baseline`` -- a detector-free, cache-light ALU loop in baseline
  mode.  Its body is one straight-line run, so the fast backend fuses
  it into a single closure: this measures the best-case dispatch win.
* ``mem_monitored`` -- a load/store loop with data-dependent branches,
  run in standard mode under CCured with NT-path spawning enabled:
  the realistic monitored-run win.
* ``nt_heavy`` -- a never-taken branch whose non-taken side exhausts
  the whole NT-path length budget, spawned at nearly every encounter.
  Wall time is dominated by sandboxed NT-path execution, so this
  measures the sandboxed block tables in isolation.

Each scenario row records a taken-vs-NT split (instructions and, per
backend, wall seconds spent inside NT-paths).

All kernels are also differential tests: the run must produce a
byte-identical :class:`RunResult` on both backends before a timing is
accepted.

Run standalone (CI perf-smoke does) to write ``BENCH_interp.json``::

    PYTHONPATH=src python benchmarks/bench_interp_throughput.py \
        --json BENCH_interp.json --check-ratio 2.0 \
        --check-scenario mem_monitored=2.0 --check-scenario nt_heavy=2.0

``--check-ratio R`` exits non-zero if the fast backend is below R x
reference on the ``alu_baseline`` kernel; ``--check-scenario NAME=R``
(repeatable) applies the same gate to any scenario.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

if __package__ is None and __name__ == '__main__':
    sys.path.insert(0, os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        'src'))

from repro.core.config import PathExpanderConfig
from repro.core.engine import PathExpanderEngine
from repro.core.runner import make_detector
from repro.isa.instructions import Instr
from repro.isa.program import Program


def build_alu_kernel(iters=200_000):
    """A fuse-friendly ALU loop: ~30 straight-line register ops per
    iteration, one backward branch."""
    code = []
    emit = code.append
    emit(Instr('li', 1, 0))            # induction variable
    emit(Instr('li', 2, iters))        # trip count
    for reg in range(3, 11):
        emit(Instr('li', reg, reg * 7 + 1))
    loop = len(code)
    for _ in range(4):
        emit(Instr('add', 3, 3, 4))
        emit(Instr('xor', 4, 4, 5))
        emit(Instr('sub', 5, 5, 6))
        emit(Instr('and', 6, 6, 7))
        emit(Instr('or', 7, 7, 8))
        emit(Instr('shl', 8, 8, 9))
        emit(Instr('shr', 9, 9, 10))
    emit(Instr('addi', 1, 1, 1))
    emit(Instr('slt', 11, 1, 2))
    emit(Instr('br', 11, loop))
    emit(Instr('halt'))
    return Program(code, {'main': 0}, 0, 64, name='alu_kernel')


def build_mem_kernel(iters=40_000):
    """A memory/branch loop: a read-modify-write on a global word plus
    a data-dependent branch that the selector turns into NT-paths."""
    code = []
    emit = code.append
    emit(Instr('li', 1, 0))            # induction variable
    emit(Instr('li', 2, iters))        # trip count
    emit(Instr('li', 3, 16))           # global array base
    emit(Instr('li', 6, 0))            # accumulator
    loop = len(code)
    emit(Instr('li', 4, 0))
    emit(Instr('addi', 4, 3, 3))
    emit(Instr('ld', 5, 4, 0))
    emit(Instr('addi', 5, 5, 1))
    emit(Instr('st', 5, 4, 0))
    emit(Instr('add', 6, 6, 5))
    emit(Instr('and', 7, 1, 5))
    emit(Instr('sgt', 8, 7, 6))
    emit(Instr('br', 8, len(code) + 3))    # rarely taken
    emit(Instr('addi', 6, 6, 1))
    emit(Instr('jmp', len(code) + 1))
    emit(Instr('addi', 6, 6, 2))           # branch target
    emit(Instr('addi', 1, 1, 1))
    emit(Instr('slt', 9, 1, 2))
    emit(Instr('br', 9, loop))
    emit(Instr('halt'))
    return Program(code, {'main': 0}, 0, 64, name='mem_kernel')


def build_nt_heavy_kernel(iters=1500):
    """An NT-path-bound kernel: a cheap taken-path loop around a
    never-taken branch whose non-taken side is a load/store loop long
    enough to exhaust the whole NT-path length budget.  With a short
    counter-reset interval nearly every encounter spawns, so wall time
    is dominated by sandboxed NT-path execution."""
    code = []
    emit = code.append
    emit(Instr('li', 1, 0))            # induction variable
    emit(Instr('li', 2, iters))        # trip count
    emit(Instr('li', 3, 16))           # global word address
    emit(Instr('li', 9, 0))            # always-false branch condition
    loop = len(code)
    emit(Instr('addi', 1, 1, 1))
    emit(Instr('br', 9, len(code) + 4))    # never taken: NT side below
    emit(Instr('slt', 8, 1, 2))
    emit(Instr('br', 8, loop))
    emit(Instr('halt'))
    # Only ever executed inside the sandbox: a read-modify-write loop
    # whose trip count exceeds the NT budget, so every path terminates
    # at the length cap.
    emit(Instr('li', 4, 0))
    emit(Instr('li', 5, 200))
    inner = len(code)
    emit(Instr('ld', 7, 3, 0))
    emit(Instr('addi', 7, 7, 1))
    emit(Instr('st', 7, 3, 0))
    emit(Instr('addi', 4, 4, 1))
    emit(Instr('slt', 8, 4, 5))
    emit(Instr('br', 8, inner))
    emit(Instr('jmp', loop))
    return Program(code, {'main': 0}, 0, 64, name='nt_heavy_kernel')


SCENARIOS = {
    'alu_baseline': {
        'build': build_alu_kernel,
        'mode': 'baseline',
        'detector': 'none',
        'overrides': {},
    },
    'mem_monitored': {
        'build': build_mem_kernel,
        'mode': 'standard',
        'detector': 'ccured',
        # Shorter counter-reset interval so the selector keeps
        # spawning NT-paths across the whole run.
        'overrides': {'max_nt_path_length': 100,
                      'counter_reset_interval': 100_000},
    },
    'nt_heavy': {
        'build': build_nt_heavy_kernel,
        'mode': 'standard',
        'detector': 'none',
        # Full-budget NT-paths at nearly every branch encounter: the
        # reset interval is shorter than one spawned path, so the
        # selector's counters never stay saturated.
        'overrides': {'max_nt_path_length': 1000,
                      'counter_reset_interval': 1500},
    },
}


def _run_once(program, scenario, backend):
    """One timed engine run.

    Builds the engine outside the timed region (so block compilation
    setup costs land inside it, as they do in production runs, but
    memory-image construction does not) and returns the wall seconds,
    the serialized result, and the engine's NT-path wall seconds.
    """
    config = PathExpanderConfig(mode=scenario['mode'], backend=backend,
                                **scenario['overrides'])
    engine = PathExpanderEngine(program,
                                detector=make_detector(
                                    scenario['detector']),
                                config=config)
    start = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - start
    return elapsed, result.to_dict(), engine.nt_wall_seconds


def measure_scenario(name, scale=1.0, repeats=3):
    scenario = SCENARIOS[name]
    build = scenario['build']
    default_iters = build.__defaults__[0]
    program = build(max(100, int(default_iters * scale)))
    row = {'mode': scenario['mode'], 'detector': scenario['detector']}
    reference_dict = None
    nt_seconds = {}
    for backend in ('reference', 'fast'):
        best = best_nt = None
        for _ in range(repeats):
            seconds, data, path_seconds = _run_once(
                program, scenario, backend)
            if best is None or seconds < best:
                best, best_nt = seconds, path_seconds
        if backend == 'reference':
            reference_dict = data
        elif data != reference_dict:
            raise AssertionError(
                'backend mismatch on %s: fast RunResult differs from '
                'reference' % name)
        instret = data['instret_taken'] + data['instret_nt']
        row[backend] = {'seconds': round(best, 4),
                        'mips': round(instret / best / 1e6, 3)}
        nt_seconds[backend] = best_nt
    instret_taken = reference_dict['instret_taken']
    instret_nt = reference_dict['instret_nt']
    total = instret_taken + instret_nt
    row['instret'] = total
    row['nt_spawned'] = reference_dict['nt_spawned']
    # Taken-vs-NT split: how much of the run (instructions and wall
    # time) each backend spent inside sandboxed NT-paths.
    row['split'] = {
        'instret_taken': instret_taken,
        'instret_nt': instret_nt,
        'nt_instret_share': round(instret_nt / total, 4) if total
        else 0.0,
        'reference_nt_seconds': round(nt_seconds['reference'], 4),
        'fast_nt_seconds': round(nt_seconds['fast'], 4),
    }
    row['speedup'] = round(row['reference']['seconds']
                           / row['fast']['seconds'], 3)
    return row


def measure(scale=1.0, repeats=3):
    payload = {'benchmark': 'interp_throughput', 'scale': scale,
               'repeats': repeats, 'scenarios': {}}
    for name in SCENARIOS:
        payload['scenarios'][name] = measure_scenario(
            name, scale=scale, repeats=repeats)
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.split('\n')[0])
    parser.add_argument('--json', default=None, metavar='PATH',
                        help='write the measurements to PATH')
    parser.add_argument('--scale', type=float, default=1.0,
                        help='kernel iteration multiplier')
    parser.add_argument('--repeats', type=int, default=3,
                        help='timing repetitions (best-of)')
    parser.add_argument('--check-ratio', type=float, default=None,
                        metavar='R',
                        help='fail unless fast >= R x reference on the '
                             'alu_baseline kernel')
    parser.add_argument('--check-scenario', action='append', default=[],
                        metavar='NAME=R',
                        help='fail unless fast >= R x reference on '
                             'scenario NAME (repeatable)')
    args = parser.parse_args(argv)

    gates = []
    if args.check_ratio is not None:
        gates.append(('alu_baseline', args.check_ratio))
    for spec in args.check_scenario:
        name, sep, ratio = spec.partition('=')
        if not sep or name not in SCENARIOS:
            parser.error('bad --check-scenario %r (want NAME=R with '
                         'NAME in %s)' % (spec, sorted(SCENARIOS)))
        gates.append((name, float(ratio)))

    payload = measure(scale=args.scale, repeats=args.repeats)
    for name, row in payload['scenarios'].items():
        print('%-14s ref=%6.2f MIPS  fast=%6.2f MIPS  speedup=%.2fx  '
              'nt_spawned=%d  nt_share=%.1f%%'
              % (name, row['reference']['mips'], row['fast']['mips'],
                 row['speedup'], row['nt_spawned'],
                 100.0 * row['split']['nt_instret_share']))
    if args.json:
        with open(args.json, 'w') as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write('\n')
        print('wrote', args.json)
    failed = False
    for name, required in gates:
        speedup = payload['scenarios'][name]['speedup']
        if speedup < required:
            print('FAIL: %s speedup %.2fx < required %.2fx'
                  % (name, speedup, required), file=sys.stderr)
            failed = True
        else:
            print('ratio gate OK: %s %.2fx >= %.2fx'
                  % (name, speedup, required))
    return 1 if failed else 0


def test_interp_throughput(benchmark):
    """Pytest wrapper: a scaled-down run of both scenarios, asserting
    the fast backend wins on the fuse-friendly kernel."""
    payload = benchmark.pedantic(
        lambda: measure(scale=0.1, repeats=1), rounds=1, iterations=1)
    for name, row in payload['scenarios'].items():
        print('%s: speedup=%.2fx' % (name, row['speedup']))
    assert payload['scenarios']['alu_baseline']['speedup'] > 1.0


if __name__ == '__main__':
    sys.exit(main())
