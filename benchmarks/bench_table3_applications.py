"""Table 3: applications and tested bugs (38 in total)."""

from conftest import emit
from repro.harness.experiments import run_table3


def test_table3_applications(benchmark):
    result = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    emit(result)
    total = [row for row in result.rows if row[0] == 'TOTAL'][0]
    assert total[2] == 38, 'paper tests 38 bugs'
    assert len(result.rows) == 8          # seven apps + total
