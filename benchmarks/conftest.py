"""Benchmark harness helpers.

Each ``bench_*`` module regenerates one table or figure of the paper:
it prints the measured rows (the same rows/series the paper reports)
and times a representative kernel with pytest-benchmark.  Heavy
experiments run exactly once via ``benchmark.pedantic``.

``--jobs N`` (or the ``REPRO_JOBS`` environment variable) routes the
pooled experiment drivers (fig7, fig8, fig9, table6) through a
:class:`~repro.jobs.pool.JobPool` with N worker processes.  The
measured kernels are unchanged — the same ``run_*`` driver is timed —
so the benchmarks exercise both the serial and pooled execution paths,
which are required to produce identical tables.
"""

from __future__ import annotations

import os

import pytest


def jobs_requested(config=None):
    """Worker count from --jobs, falling back to $REPRO_JOBS, then 1."""
    if config is not None:
        return config.getoption('--jobs')
    return int(os.environ.get('REPRO_JOBS', '1') or '1')


def pytest_addoption(parser):
    parser.addoption(
        '--jobs', type=int, default=jobs_requested(),
        help='worker processes for pooled experiment drivers '
             '(default: $REPRO_JOBS or 1 = serial in-process)')


@pytest.fixture
def experiment_pool(request):
    """A JobPool honouring --jobs/$REPRO_JOBS, or None for serial."""
    jobs = jobs_requested(request.config)
    if jobs <= 1:
        return None
    from repro.jobs import JobPool
    return JobPool(jobs=jobs)


def emit(result):
    """Print an ExperimentResult table under the benchmark output."""
    print()
    print(result.format())
    return result
