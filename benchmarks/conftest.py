"""Benchmark harness helpers.

Each ``bench_*`` module regenerates one table or figure of the paper:
it prints the measured rows (the same rows/series the paper reports)
and times a representative kernel with pytest-benchmark.  Heavy
experiments run exactly once via ``benchmark.pedantic``.
"""

from __future__ import annotations


def emit(result):
    """Print an ExperimentResult table under the benchmark output."""
    print()
    print(result.format())
    return result
