"""Benchmark harness helpers.

Each ``bench_*`` module regenerates one table or figure of the paper:
it prints the measured rows (the same rows/series the paper reports)
and times a representative kernel with pytest-benchmark.  Heavy
experiments run exactly once via ``benchmark.pedantic``.

``--jobs N`` (or the ``REPRO_JOBS`` environment variable) routes the
pooled experiment drivers (fig7, fig8, fig9, table6) through a
:class:`~repro.jobs.pool.JobPool` with N worker processes.  The
measured kernels are unchanged — the same ``run_*`` driver is timed —
so the benchmarks exercise both the serial and pooled execution paths,
which are required to produce identical tables.

``--backend NAME`` (or ``$REPRO_BACKEND``) selects the execution
backend every simulation uses ('reference' or 'fast').  The two are
result-equivalent, so every table is identical either way — only the
wall-clock changes.
"""

from __future__ import annotations

import os

import pytest


def jobs_requested(config=None):
    """Worker count from --jobs, falling back to $REPRO_JOBS, then 1."""
    if config is not None:
        return config.getoption('--jobs')
    return int(os.environ.get('REPRO_JOBS', '1') or '1')


def pytest_addoption(parser):
    parser.addoption(
        '--jobs', type=int, default=jobs_requested(),
        help='worker processes for pooled experiment drivers '
             '(default: $REPRO_JOBS or 1 = serial in-process)')
    parser.addoption(
        '--backend', default=None,
        choices=['reference', 'fast'],
        help='execution backend for every simulation '
             '(default: $REPRO_BACKEND or fast)')


def pytest_configure(config):
    backend = config.getoption('--backend', default=None)
    if backend:
        from repro.core.config import set_default_backend
        set_default_backend(backend)
        # Pool workers are separate processes; they inherit the
        # choice through the environment.
        os.environ['REPRO_BACKEND'] = backend


@pytest.fixture
def experiment_pool(request):
    """A JobPool honouring --jobs/$REPRO_JOBS, or None for serial."""
    jobs = jobs_requested(request.config)
    if jobs <= 1:
        return None
    from repro.jobs import JobPool
    return JobPool(jobs=jobs)


def emit(result):
    """Print an ExperimentResult table under the benchmark output."""
    print()
    print(result.format())
    return result
