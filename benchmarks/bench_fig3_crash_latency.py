"""Figure 3: crash-latency / unsafe-latency CDFs for go, gzip, vpr."""

from conftest import emit
from repro.harness.experiments import run_fig3


def test_fig3_crash_latency(benchmark):
    result, details = benchmark.pedantic(run_fig3, rounds=1,
                                         iterations=1)
    emit(result)
    rows = result.row_dict()

    def survival(app):
        return float(rows[app][-2].rstrip('%'))

    # paper: most NT-paths run a long time; go stops earliest least
    assert survival('go_app') >= 85.0
    assert survival('gzip_app') >= 40.0
    assert survival('vpr_app') >= 65.0
    # gzip/vpr stop mostly on unsafe events, not crashes
    for app in ('gzip_app', 'vpr_app'):
        stopped = 100.0 - survival(app)
        crash = float(rows[app][-1].rstrip('%'))
        assert crash <= stopped / 2 + 1e-9
