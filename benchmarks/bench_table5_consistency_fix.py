"""Table 5: variable fixing prunes false positives and exposes the
man bug."""

from conftest import emit
from repro.harness.experiments import run_table5


def test_table5_consistency_fix(benchmark):
    result = benchmark.pedantic(run_table5, rounds=1, iterations=1)
    emit(result)
    average = [row for row in result.rows if row[0] == 'AVERAGE'][0]
    fp_before, fp_after = average[2], average[3]
    assert fp_after < fp_before, \
        'fixing must reduce false positives (paper: 13 -> 4)'
    man_rows = [row for row in result.rows if row[1] == 'man_fmt']
    for row in man_rows:
        assert row[4] == 0 and row[5] == 1, \
            'man bug detected only after fixing (paper)'
