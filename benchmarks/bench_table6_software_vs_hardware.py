"""Hardware vs software PathExpander (paper: 3-4 orders of magnitude)."""

from functools import partial

from conftest import emit
from repro.harness.experiments import run_table6


def test_table6_software_vs_hardware(benchmark, experiment_pool):
    result = benchmark.pedantic(
        partial(run_table6, pool=experiment_pool), rounds=1,
        iterations=1)
    emit(result)
    geomean = [row for row in result.rows if row[0] == 'GEOMEAN'][0]
    orders = float(geomean[4])
    assert 2.0 <= orders <= 5.0, \
        'hardware should be orders of magnitude cheaper (paper: 3-4)'
