"""Single-input branch coverage (paper: 40% -> 65% on average)."""

from functools import partial

from conftest import emit
from repro.harness.experiments import run_fig7


def test_fig7_coverage_single(benchmark, experiment_pool):
    result = benchmark.pedantic(partial(run_fig7, pool=experiment_pool),
                                rounds=1, iterations=1)
    emit(result)
    average = [row for row in result.rows if row[0] == 'AVERAGE'][0]
    base = float(average[2].rstrip('%'))
    expanded = float(average[3].rstrip('%'))
    assert expanded - base >= 15.0, \
        'PathExpander should add >= 15 coverage points on average'
    for row in result.rows[:-1]:
        assert float(row[3].rstrip('%')) >= float(row[2].rstrip('%'))
