"""Execution overhead (paper: below 9.9% with the CMP optimisation)."""

from functools import partial

from conftest import emit
from repro.harness.experiments import run_fig9


def test_fig9_overhead(benchmark, experiment_pool):
    result = benchmark.pedantic(partial(run_fig9, pool=experiment_pool),
                                rounds=1, iterations=1)
    emit(result)
    worst = [row for row in result.rows if row[0] == 'WORST CMP'][0]
    assert float(worst[3].rstrip('%')) < 9.9, \
        'CMP overhead must stay below the paper bound of 9.9%'
    for row in result.rows[:-1]:
        standard = float(row[2].rstrip('%'))
        cmp_ = float(row[3].rstrip('%'))
        assert cmp_ <= standard
