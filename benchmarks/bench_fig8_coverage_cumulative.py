"""Cumulative multi-input coverage (paper: ~19% improvement)."""

from functools import partial

from conftest import emit
from repro.harness.experiments import run_fig8


def test_fig8_coverage_cumulative(benchmark, experiment_pool):
    result = benchmark.pedantic(
        partial(run_fig8, runs=50, pool=experiment_pool), rounds=1,
        iterations=1)
    emit(result)
    average = [row for row in result.rows if row[0] == 'AVERAGE'][0]
    improvement = float(average[4].rstrip('%'))
    assert improvement >= 10.0, \
        'cumulative coverage should still improve substantially'
