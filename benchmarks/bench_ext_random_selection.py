"""Extension: random factor in NT-path selection (paper Section 7.1).

Recovers the two bugs missed because their entry edge saturated its
exercise counter before the bug-triggering state arose (the undetected
bc bug's mechanism).
"""

from conftest import emit
from repro.harness.experiments import run_ext_random_selection


def test_ext_random_selection(benchmark):
    result = benchmark.pedantic(run_ext_random_selection, rounds=1,
                                iterations=1)
    emit(result)
    for bug, app, plain, randomized, extra in result.rows:
        assert plain == 'no', \
            '%s must stay hidden under counter-only selection' % bug
        assert randomized == 'yes', \
            '%s must surface with the random factor' % bug
        assert extra > 0
